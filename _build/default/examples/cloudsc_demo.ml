(** The CLOUDSC erosion kernel (paper §5.1, Fig. 10): scalar expansion +
    maximal fission turn one huge inlined loop body into atomic nests;
    producer-consumer fusion then re-groups them into short-lived chains.

    {v dune exec examples/cloudsc_demo.exe v} *)

module Ir = Daisy.Loopir.Ir
module C = Daisy.Benchmarks.Cloudsc
module Cost = Daisy.Machine.Cost

let () =
  let iters = C.klev in
  let orig, sizes = C.erosion_original ~iters in
  let opt, _ = C.erosion_optimized ~iters in
  Fmt.pr "=== original erosion kernel (Fig. 10a) ===@.%a@.@."
    Ir.pp_program orig;
  Fmt.pr "=== after normalization + producer-consumer fusion (Fig. 10b) ===@.%a@.@."
    Ir.pp_program opt;
  Fmt.pr "equivalent by execution: %b@.@."
    (Daisy.Interp.Interp.equivalent orig opt
       ~sizes:[ ("klev", 4); ("nproma", 16) ] ());
  let show label p =
    let r = Cost.evaluate C.config p ~sizes () in
    Fmt.pr "%-10s %8.3f ms   %10.0f L1 loads   %8.0f L1 evicts@." label
      (Cost.milliseconds r) r.Cost.l1_loads r.Cost.l1_evicts
  in
  show "original" orig;
  show "optimized" opt
