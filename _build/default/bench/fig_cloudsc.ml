(** Reproductions of the CLOUDSC case study (paper §5): Table 1 (erosion
    kernel), Figure 11 (sequential full model) and Figure 12 (strong/weak
    scaling). *)

open Harness
module C = Daisy_benchmarks.Cloudsc
module Cost = Daisy_machine.Cost
module Config = Daisy_machine.Config

let evaluate ?(threads = 1) p sizes =
  Cost.evaluate C.config p ~sizes ~threads ~sample_outer:0 ()

(* ------------------------------------------------------------------ *)
(* Table 1 *)

let table1 () =
  let single_orig, s1 = C.erosion_original ~iters:1 in
  let single_opt, _ = C.erosion_optimized ~iters:1 in
  let klev_orig, sk = C.erosion_original ~iters:C.klev in
  let klev_opt, _ = C.erosion_optimized ~iters:C.klev in
  let r1o = evaluate single_orig s1 in
  let r1p = evaluate single_opt s1 in
  let rko = evaluate klev_orig sk in
  let rkp = evaluate klev_opt sk in
  let klev = float_of_int C.klev in
  print_table
    ~title:
      "Table 1: the erosion-of-clouds kernel, original vs optimized\n\
       (paper: 0.040/0.006 ms single, 5.468/0.882 ms KLEV, L1 loads \
       2632/1281, L1 evicts 963/178)"
    ~header:[ ""; "Original"; "Optimized"; "ratio" ]
    [
      [ "Single iteration [ms]"; fms (Cost.milliseconds r1o);
        fms (Cost.milliseconds r1p);
        fx (Cost.milliseconds r1o /. Cost.milliseconds r1p) ];
      [ "KLEV iterations [ms]"; fms (Cost.milliseconds rko);
        fms (Cost.milliseconds rkp);
        fx (Cost.milliseconds rko /. Cost.milliseconds rkp) ];
      [ "L1 loads / iteration"; Printf.sprintf "%.0f" (rko.Cost.l1_loads /. klev);
        Printf.sprintf "%.0f" (rkp.Cost.l1_loads /. klev);
        fx (rko.Cost.l1_loads /. rkp.Cost.l1_loads) ];
      [ "L1 evicts / iteration"; Printf.sprintf "%.0f" (rko.Cost.l1_evicts /. klev);
        Printf.sprintf "%.0f" (rkp.Cost.l1_evicts /. klev);
        fx (rko.Cost.l1_evicts /. Float.max 1.0 rkp.Cost.l1_evicts) ];
    ]

(* ------------------------------------------------------------------ *)
(* Figure 11: sequential runtime of the full model, normalized to Fortran *)

let fig11 () =
  let blocks = C.default_nblocks in
  let results =
    List.map
      (fun v ->
        let p, sizes = C.full_model v ~blocks in
        (v, evaluate ~threads:1 p sizes))
      C.all_versions
  in
  let fortran = List.assoc C.Fortran results in
  let fortran_ms = Cost.milliseconds fortran in
  print_table
    ~title:
      (Printf.sprintf
         "Figure 11: CLOUDSC sequential runtime, NBLOCKS=%d (normalized to \
          Fortran; lower is better)\n\
          paper: daisy is 1.08x faster than the second-best (Fortran)"
         blocks)
    ~header:[ "version"; "ms"; "vs Fortran" ]
    (List.map
       (fun (v, r) ->
         [ C.string_of_version v; fms (Cost.milliseconds r);
           fx (Cost.milliseconds r /. fortran_ms) ])
       results);
  let daisy = List.assoc C.DaisyV results in
  Format.printf "  daisy speedup over Fortran: %.2fx (paper 1.08x)@."
    (fortran_ms /. Cost.milliseconds daisy);
  (* FLOP/s comparison, paper §5.2; sequential run, so single-core peak.
     Our flop counts are scalar-equivalent (intrinsics expanded), so the
     percentages overshoot the paper's hardware-counter numbers. *)
  let peak = Config.peak_mflops C.config /. float_of_int C.config.Config.cores in
  let mf (r : Cost.report) = r.Cost.mflops in
  Format.printf
    "  FLOP rate: Fortran %.0f MFLOP/s (%.1f%% of 1-core peak %.0f), daisy \
     %.0f MFLOP/s (%.1f%%)@.  (paper: 13634 = 25.96%% and 14793 = 28.16%% of \
     52523)@."
    (mf fortran)
    (mf fortran /. peak *. 100.0)
    peak (mf daisy)
    (mf daisy /. peak *. 100.0)

(* ------------------------------------------------------------------ *)
(* Figure 12: strong and weak scaling *)

let fig12a () =
  let blocks = C.default_nblocks in
  let thread_counts = [ 1; 2; 4; 8; 16 ] in
  let rows =
    List.map
      (fun v ->
        let p, sizes = C.full_model v ~blocks in
        C.string_of_version v
        :: List.map
             (fun t -> fms (Cost.milliseconds (evaluate ~threads:t p sizes)))
             thread_counts)
      C.all_versions
  in
  print_table
    ~title:
      "Figure 12a: CLOUDSC strong scaling (ms; fixed total columns)\n\
       paper shape: near-linear at low thread counts, bandwidth-limited \
       saturation beyond"
    ~header:
      ("version" :: List.map (fun t -> Printf.sprintf "%d thr" t) thread_counts)
    rows

let fig12b () =
  let thread_counts = [ 1; 2; 4; 8; 16 ] in
  let rows =
    List.map
      (fun v ->
        C.string_of_version v
        :: List.map
             (fun t ->
               (* one block per thread: problem grows with the machine *)
               let p, sizes = C.full_model v ~blocks:t in
               fms (Cost.milliseconds (evaluate ~threads:t p sizes)))
             thread_counts)
      C.all_versions
  in
  print_table
    ~title:
      "Figure 12b: CLOUDSC weak scaling (ms; one block of work per thread)\n\
       paper shape: flat runtime with a slight rise from shared bandwidth \
       and fork/join overhead"
    ~header:
      ("version" :: List.map (fun t -> Printf.sprintf "%d thr" t) thread_counts)
    rows
