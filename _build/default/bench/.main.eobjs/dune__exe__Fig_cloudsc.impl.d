bench/fig_cloudsc.ml: Daisy_benchmarks Daisy_machine Float Format Harness List Printf
