bench/fig_python.ml: Daisy_benchmarks Daisy_scheduler Format Harness List
