bench/main.mli:
