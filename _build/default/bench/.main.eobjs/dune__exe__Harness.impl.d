bench/harness.ml: Array Daisy_benchmarks Daisy_loopir Daisy_machine Daisy_scheduler Daisy_support Format List Printf String
