bench/main.ml: Ablation Array Fig_cloudsc Fig_polybench Fig_python Format List Micro String Sys
