bench/fig_polybench.ml: Daisy_benchmarks Daisy_lang Daisy_support Float Format Harness List
