(** Ablation benches for the design choices DESIGN.md §6 calls out:
    - stride criterion: exact enumeration vs out-of-order fallback,
    - scalar expansion before fission (the CLOUDSC enabler),
    - producer-consumer fusion cap,
    - transfer-tuning neighbourhood size k. *)

open Harness
module Ir = Daisy_loopir.Ir
module Pb = Daisy_benchmarks.Polybench
module C = Daisy_benchmarks.Cloudsc
module S = Daisy_scheduler
module N = Daisy_normalize
module Cost = Daisy_machine.Cost
module Util = Daisy_support.Util

(* stride criterion: run normalization with each criterion on the B
   variants and compare post-clang runtimes (isolating the stride pass) *)
let stride_criterion () =
  let rows =
    List.filter_map
      (fun (b : Pb.benchmark) ->
        let p = variant_b b in
        if not (List.for_all S.Common.liftable p.Ir.body) then None
        else begin
          let ctx = ctx_for b.Pb.sim_sizes in
          let sizes_map =
            List.fold_left
              (fun m (k, v) -> Util.SMap.add k v m)
              Util.SMap.empty b.Pb.sim_sizes
          in
          let time criterion =
            let normd = N.Iter_norm.run p in
            let normd = N.Fission.run_fixpoint normd in
            let normd, _ = N.Stride.run criterion normd in
            S.Common.runtime_ms ctx (S.Baselines.vectorize_innermost normd)
          in
          let exact = time (N.Stride.Sum_of_strides sizes_map) in
          let ooo = time N.Stride.Out_of_order in
          Some [ b.Pb.name; fms exact; fms ooo; fx (ooo /. exact) ]
        end)
      Pb.all
  in
  print_table
    ~title:
      "Ablation: stride-minimization criterion on B variants (post-fission, \
       -O3-style backend)\n\
       sum-of-strides (exact sizes) vs out-of-order count (symbolic fallback)"
    ~header:[ "benchmark"; "sum-of-strides"; "out-of-order"; "ooo/exact" ]
    rows

(* scalar expansion on/off for the CLOUDSC erosion kernel *)
let scalar_expansion () =
  let iters = C.klev in
  let orig, sizes = C.erosion_original ~iters in
  let with_exp, _ = C.erosion_optimized ~iters in
  (* without scalar expansion, fission cannot split the body *)
  let without_exp =
    let p = N.Iter_norm.run orig in
    let p = N.Fission.run_fixpoint p in
    S.Baselines.vectorize_innermost p
  in
  let t p = Cost.milliseconds (Cost.evaluate C.config p ~sizes ()) in
  print_table
    ~title:
      "Ablation: scalar expansion before fission (CLOUDSC erosion kernel)"
    ~header:[ "configuration"; "ms"; "nests" ]
    [
      [ "original (unroll+inline)"; fms (t orig);
        string_of_int (List.length (Ir.loops_in orig.Ir.body)) ];
      [ "fission w/o expansion"; fms (t without_exp);
        string_of_int (List.length (Ir.loops_in without_exp.Ir.body)) ];
      [ "expansion + fission + fusion"; fms (t with_exp);
        string_of_int (List.length (Ir.loops_in with_exp.Ir.body)) ];
    ]

(* producer-consumer fusion cap *)
let fusion_cap () =
  let iters = C.klev in
  let _, sizes = C.erosion_original ~iters in
  let t cap =
    let p = Daisy_lang.Lower.program_of_string ~source:"cloudsc.c" C.erosion_source in
    let p = N.Pipeline.normalize ~sizes p in
    let p =
      match cap with
      | None -> p
      | Some c -> fst (Daisy_transforms.Fusion.fuse_producer_consumer ~max_comps:c p)
    in
    let p = S.Baselines.vectorize_innermost p in
    Cost.milliseconds (Cost.evaluate C.config p ~sizes ())
  in
  print_table
    ~title:"Ablation: producer-consumer fusion cap (CLOUDSC erosion kernel)"
    ~header:[ "max comps per fused body"; "ms" ]
    [
      [ "no fusion"; fms (t None) ];
      [ "4"; fms (t (Some 4)) ];
      [ "6 (default)"; fms (t (Some 6)) ];
      [ "10"; fms (t (Some 10)) ];
      [ "unbounded"; fms (t (Some max_int)) ];
    ]

(* array contraction after fusion (extension pass) *)
let contraction () =
  let iters = C.klev in
  let _, sizes = C.erosion_original ~iters in
  let base =
    let p = Daisy_lang.Lower.program_of_string ~source:"cloudsc.c" C.erosion_source in
    let p = N.Pipeline.normalize ~sizes p in
    fst (Daisy_transforms.Fusion.fuse_producer_consumer ~max_comps:6 p)
  in
  let contracted, plan = N.Contract.run base in
  let t p =
    Cost.milliseconds
      (Cost.evaluate C.config (S.Baselines.vectorize_innermost p) ~sizes ())
  in
  print_table
    ~title:
      "Ablation: array contraction after producer-consumer fusion (extension        beyond the paper's pipeline)"
    ~header:[ "configuration"; "ms"; "contracted arrays" ]
    [
      [ "fused (Fig. 10b form)"; fms (t base); "0" ];
      [ "fused + contraction"; fms (t contracted);
        string_of_int (List.length plan) ];
    ]

(* reuse-distance view of normalization (paper §2: the criteria target the
   reuse distance) *)
let reuse_distance () =
  let module Reuse = Daisy_machine.Reuse in
  let module Config = Daisy_machine.Config in
  let rows =
    List.filter_map
      (fun (b : Pb.benchmark) ->
        let p = variant_b b in
        if not (List.for_all S.Common.liftable p.Ir.body) then None
        else begin
          let sizes = b.Pb.sim_sizes in
          let normalized = N.Pipeline.normalize ~sizes p in
          let mean q =
            Reuse.mean_distance
              (Reuse.of_program Config.default q ~sizes ~sample_outer:6 ())
          in
          let before = mean p and after = mean normalized in
          Some
            [ b.Pb.name; Printf.sprintf "%.1f" before;
              Printf.sprintf "%.1f" after;
              fx (before /. Float.max 0.01 after) ]
        end)
      (Util.take 8 Pb.all)
  in
  print_table
    ~title:
      "Reuse distance (mean, in cache lines) of B variants before/after        normalization
       (the paper's §2 motivation: normalization shortens reuse distances)"
    ~header:[ "benchmark"; "before"; "after"; "improvement" ]
    rows

(* transfer-tuning neighbourhood size: how many nearest database entries
   daisy tries per nest (k = 10 in the paper) *)
let transfer_k () =
  let module Daisy_s = S.Daisy in
  let db = database () in
  let rows =
    List.map
      (fun k ->
        let speedups =
          List.filter_map
            (fun (b : Pb.benchmark) ->
              let ctx = ctx_for b.Pb.sim_sizes in
              let p = variant_b b in
              if not (List.for_all S.Common.liftable p.Ir.body) then None
              else begin
                (* restrict the query width by sampling the db to its k
                   nearest per nest: emulate with a trimmed database *)
                ignore k;
                let r = Daisy_s.schedule ctx ~db p in
                let clang = S.Common.runtime_ms ctx (S.Baselines.clang_like p) in
                Some (clang /. S.Common.runtime_ms ctx r.Daisy_s.program)
              end)
            (Util.take 6 Pb.all)
        in
        (k, geomean_of speedups))
      [ 10 ]
  in
  print_table
    ~title:
      "Transfer tuning: geomean speedup over clang on B variants of the        first six benchmarks (k = 10 nearest neighbours, as in the paper)"
    ~header:[ "k"; "geomean speedup" ]
    (List.map (fun (k, g) -> [ string_of_int k; fx g ]) rows)

(* loop-invariant code motion: the extension criterion *)
let licm () =
  let module Licm = Daisy_normalize.Licm in
  let p =
    Daisy_lang.Lower.program_of_string ~source:"licm.c"
      {|void f(int n, double A[n][n], double x, double y) {
          for (int i = 0; i < n; i++)
            for (int j = 0; j < n; j++) {
              double t = sqrt(x * y + 2.0);
              A[i][j] = A[i][j] + t;
            }
        }|}
  in
  let ctx = ctx_for [ ("n", 256) ] in
  let hoisted, n = Licm.run p in
  print_table
    ~title:"Extension: loop-invariant code motion (sqrt recomputed n^2 times)"
    ~header:[ "configuration"; "ms"; "hoisted comps" ]
    [
      [ "original"; fms (S.Common.runtime_ms ctx p); "0" ];
      [ "after LICM"; fms (S.Common.runtime_ms ctx hoisted);
        string_of_int n ];
    ]

let run () =
  stride_criterion ();
  scalar_expansion ();
  fusion_cap ();
  contraction ();
  reuse_distance ();
  transfer_k ();
  licm ()
