(** Reproduction of Figure 9: the NPBench implementations under NumPy,
    Numba, DaCe, and daisy with/without normalization — runtime relative to
    daisy (lower is better). *)

open Harness
module Np = Daisy_benchmarks.Npbench
module Fw = Daisy_benchmarks.Frameworks
module S = Daisy_scheduler

let run_framework (fw : Fw.framework) (ctx : S.Common.ctx)
    (b : Np.benchmark) : float =
  let ir = Fw.lower fw b.Np.program in
  match fw with
  | Fw.Numpy ->
      (* NumPy is single-threaded outside BLAS *)
      S.Common.runtime_ms { ctx with S.Common.threads = 1 } ir
  | Fw.Numba | Fw.DaceF -> S.Common.runtime_ms ctx ir
  | Fw.DaisyPy ->
      let r = S.Daisy.schedule ctx ~db:(database ()) ir in
      S.Common.runtime_ms ctx r.S.Daisy.program
  | Fw.DaisyPyNoNorm ->
      let r =
        S.Daisy.schedule
          ~options:{ S.Daisy.normalize = false; transfer = true }
          ctx ~db:(database ()) ir
      in
      S.Common.runtime_ms ctx r.S.Daisy.program

let fig9 () =
  let results =
    List.map
      (fun (b : Np.benchmark) ->
        let ctx = ctx_for b.Np.sim_sizes in
        (b.Np.name, List.map (fun fw -> (fw, run_framework fw ctx b)) Fw.all))
      Np.all
  in
  let rows =
    List.map
      (fun (name, per) ->
        let daisy = List.assoc Fw.DaisyPy per in
        name
        :: List.map (fun fw -> fx (List.assoc fw per /. daisy)) Fw.all)
      results
  in
  print_table
    ~title:
      "Figure 9: NPBench implementations, runtime relative to daisy\n\
       (lower is better; the daisy database was seeded from the C variants)"
    ~header:("benchmark" :: List.map Fw.name Fw.all)
    rows;
  let geo fw =
    geomean_of
      (List.map
         (fun (_, per) -> List.assoc fw per /. List.assoc Fw.DaisyPy per)
         results)
  in
  Format.printf
    "@.geomean speedup of daisy: NumPy %.2f (paper 9.04), Numba %.2f \
     (paper 3.92), DaCe %.2f (paper 1.47)@."
    (geo Fw.Numpy) (geo Fw.Numba) (geo Fw.DaceF)
