(** Reproductions of the PolyBench experiments: Figure 1 (GEMM variants),
    Figure 6 (A/B robustness vs auto-schedulers) and Figure 7 (ablation). *)

open Harness
module Pb = Daisy_benchmarks.Polybench
module Variants = Daisy_benchmarks.Variants

(* ------------------------------------------------------------------ *)
(* Figure 1: two GEMM loop structures across all schedulers *)

let fig1 () =
  let a = Pb.program Pb.gemm in
  let b =
    Daisy_lang.Lower.program_of_string ~source:"gemm2.c"
      Variants.gemm_variant_2_source
  in
  let ctx = ctx_for Pb.gemm.Pb.sim_sizes in
  let schedulers = [ "clang"; "polly"; "tiramisu"; "icc"; "daisy" ] in
  let rows =
    List.map
      (fun s ->
        let ta = run_scheduler s ctx a and tb = run_scheduler s ctx b in
        [ s; cell ta; cell tb;
          (match (ta, tb) with
          | Time x, Time y -> fx (Float.max (x /. y) (y /. x))
          | _ -> "X") ])
      schedulers
  in
  print_table
    ~title:
      "Figure 1: structurally different GEMM kernels (simulated ms)\n\
       paper: clang 460 ms vs 9090 ms (19.8x apart); daisy 20 ms vs 20 ms"
    ~header:[ "scheduler"; "gemm_1 (A)"; "gemm_2 (B)"; "max ratio" ]
    rows;
  (match (run_scheduler "clang" ctx a, run_scheduler "clang" ctx b) with
  | Time ca, Time cb ->
      Format.printf "  clang B/A variation: %.2fx (paper: 19.8x apart)@."
        (Float.max (ca /. cb) (cb /. ca))
  | _ -> ());
  match (run_scheduler "daisy" ctx a, run_scheduler "daisy" ctx b) with
  | Time da, Time db ->
      Format.printf "  daisy B/A variation: %.2fx (paper: ~1x)@."
        (Float.max (da /. db) (db /. da))
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Figure 6: A/B robustness of every scheduler on all 15 benchmarks *)

let fig6 () =
  let schedulers = [ "polly"; "tiramisu"; "icc"; "daisy" ] in
  let results =
    List.map
      (fun (b : Pb.benchmark) ->
        let ctx = ctx_for b.Pb.sim_sizes in
        let pa = variant_a b and pb_ = variant_b b in
        let per_sched =
          List.map
            (fun s -> (s, run_scheduler s ctx pa, run_scheduler s ctx pb_))
            schedulers
        in
        (b.Pb.name, per_sched))
      Pb.all
  in
  (* runtime relative to daisy on the A variant, as in the paper *)
  let rows =
    List.map
      (fun (name, per_sched) ->
        let daisy_a =
          match List.assoc "daisy" (List.map (fun (s, a, _) -> (s, a)) per_sched) with
          | Time t -> t
          | X -> nan
        in
        name
        :: List.concat_map
             (fun (_, a, b) -> [ rel daisy_a a; rel daisy_a b ])
             per_sched)
      results
  in
  print_table
    ~title:
      "Figure 6: runtime relative to daisy on the A variant (lower is better)\n\
       X = scheduler not applicable (as in the paper)"
    ~header:
      ("benchmark"
      :: List.concat_map (fun s -> [ s ^ "/A"; s ^ "/B" ]) schedulers)
    rows;
  (* summary statistics, paper §4.1 *)
  let daisy_ratios =
    List.filter_map
      (fun (_, per) ->
        match List.find_opt (fun (s, _, _) -> s = "daisy") per with
        | Some (_, Time a, Time b) -> Some (Float.max (a /. b) (b /. a))
        | _ -> None)
      results
  in
  let mean_diff = (Daisy_support.Util.mean daisy_ratios -. 1.0) *. 100.0 in
  let max_diff =
    (List.fold_left Float.max 1.0 daisy_ratios -. 1.0) *. 100.0
  in
  Format.printf
    "@.daisy A/B difference: mean %.1f%% (paper 5%%), max %.1f%% (paper 14%%)@."
    mean_diff max_diff;
  let geo sched which =
    geomean_of
      (List.filter_map
         (fun (_, per) ->
           let find s = List.find_opt (fun (x, _, _) -> x = s) per in
           match (find sched, find "daisy") with
           | Some (_, sa, sb), Some (_, da, db) -> (
               let other = if which = `A then sa else sb in
               let daisy = if which = `A then da else db in
               match (other, daisy) with
               | Time o, Time d -> Some (o /. d)
               | _ -> None)
           | _ -> None)
         results)
  in
  Format.printf
    "geomean speedup of daisy on A variants: polly %.2f (paper 2.31), \
     tiramisu %.2f (paper 2.89), icc %.2f (paper 1.58)@."
    (geo "polly" `A) (geo "tiramisu" `A) (geo "icc" `A);
  Format.printf
    "geomean speedup of daisy on B variants: polly %.2f (paper 2.97), \
     tiramisu %.2f (paper 7.03), icc %.2f (paper 2.51)@."
    (geo "polly" `B) (geo "tiramisu" `B) (geo "icc" `B)

(* ------------------------------------------------------------------ *)
(* Figure 7: ablation — clang / transfer-only / normalization-only / full *)

let fig7 () =
  let configs =
    [ ("clang", "clang"); ("transfer w/o norm", "daisy-nonorm");
      ("norm w/o transfer", "daisy-notransfer"); ("daisy", "daisy") ]
  in
  let results =
    List.map
      (fun (b : Pb.benchmark) ->
        let ctx = ctx_for b.Pb.sim_sizes in
        let pa = variant_a b and pb_ = variant_b b in
        let clang_a =
          match run_scheduler "clang" ctx pa with Time t -> t | X -> nan
        in
        let row =
          b.Pb.name
          :: List.concat_map
               (fun (_, s) ->
                 [ rel clang_a (run_scheduler s ctx pa);
                   rel clang_a (run_scheduler s ctx pb_) ])
               configs
        in
        (b.Pb.name, clang_a, row))
      Pb.all
  in
  print_table
    ~title:
      "Figure 7: ablation, runtime relative to clang on the A variant\n\
       (lower is better; both normalization and transfer tuning are needed)"
    ~header:
      ("benchmark"
      :: List.concat_map (fun (l, _) -> [ l ^ "/A"; l ^ "/B" ]) configs)
    (List.map (fun (_, _, r) -> r) results);
  (* abstract: daisy outperforms the baseline C compiler by 21.13x *)
  let speedups =
    List.concat_map
      (fun (b : Pb.benchmark) ->
        let ctx = ctx_for b.Pb.sim_sizes in
        List.filter_map
          (fun p ->
            match (run_scheduler "clang" ctx p, run_scheduler "daisy" ctx p) with
            | Time c, Time d -> Some (c /. d)
            | _ -> None)
          [ variant_a b; variant_b b ])
      Pb.all
  in
  Format.printf "@.geomean speedup over clang across A+B: %.2f (paper mean 21.13)@."
    (geomean_of speedups)
