(** Bechamel micro-benchmarks of the toolchain itself: how fast the
    compiler machinery (parsing, dependence testing, normalization, cache
    simulation, scheduling) runs. One [Test.make] per component. *)

module Pb = Daisy_benchmarks.Polybench
module Pipeline = Daisy_normalize.Pipeline
module Cost = Daisy_machine.Cost
module Config = Daisy_machine.Config
open Bechamel
open Toolkit

let gemm_src = Pb.gemm.Pb.source

let test_parse =
  Test.make ~name:"frontend: parse+sema+lower gemm"
    (Staged.stage (fun () ->
         ignore (Daisy_lang.Lower.program_of_string gemm_src)))

let test_lift =
  Test.make ~name:"lift: gemm through lir"
    (Staged.stage (fun () ->
         ignore
           (Daisy_lift.Lift.lift (Daisy_lir.From_ast.func_of_string gemm_src))))

let program = Daisy_lang.Lower.program_of_string gemm_src

let test_dependence =
  let nest =
    match (Daisy_normalize.Iter_norm.run program).Daisy_loopir.Ir.body with
    | Daisy_loopir.Ir.Nloop l :: _ -> l
    | _ -> assert false
  in
  Test.make ~name:"dependence: band vectors of gemm nest"
    (Staged.stage (fun () ->
         let band, body = Daisy_dependence.Legality.perfect_band nest in
         ignore (Daisy_dependence.Legality.band_dep_vectors ~outer:[] band body)))

let test_normalize =
  Test.make ~name:"normalize: full pipeline on gemm"
    (Staged.stage (fun () ->
         ignore (Pipeline.normalize ~sizes:Pb.gemm.Pb.sim_sizes program)))

let test_simulate =
  Test.make ~name:"machine: simulate gemm (sampled)"
    (Staged.stage (fun () ->
         ignore
           (Cost.evaluate Config.default program ~sizes:Pb.gemm.Pb.sim_sizes
              ~sample_outer:8 ())))

let test_interp =
  Test.make ~name:"interp: execute gemm (tiny)"
    (Staged.stage (fun () ->
         ignore
           (Daisy_interp.Interp.run_fresh program ~sizes:Pb.gemm.Pb.test_sizes
              ())))

let benchmarks =
  [ test_parse; test_lift; test_dependence; test_normalize; test_simulate;
    test_interp ]

let run () =
  Format.printf "@.Toolchain micro-benchmarks (bechamel)@.";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let results =
        Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false
                       ~predictors:[| Measure.run |])
          Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] ->
              Format.printf "  %-45s %10.1f ns/run@." name est
          | _ -> Format.printf "  %-45s (no estimate)@." name)
        results)
    benchmarks
