test/test_extensions.ml: Alcotest Array Daisy_interp Daisy_lang Daisy_loopir Daisy_machine Daisy_normalize Daisy_transforms List Printf
