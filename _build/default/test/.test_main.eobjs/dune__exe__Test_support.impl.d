test/test_support.ml: Alcotest Daisy_support Diag Fun List Loc Rng Union_find Util
