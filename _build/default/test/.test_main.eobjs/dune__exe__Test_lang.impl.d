test/test_lang.ml: Alcotest Array Ast Daisy_interp Daisy_lang Daisy_loopir Daisy_poly Daisy_support Float Hashtbl List Lower Parser Sema
