test/test_arraylang.ml: Alcotest Daisy_arraylang Daisy_benchmarks Daisy_interp Daisy_loopir Daisy_poly Daisy_scheduler List Printf Str
