test/test_loopir.ml: Alcotest Daisy_lang Daisy_loopir Daisy_poly Daisy_scheduler Daisy_support List String
