test/test_lift.ml: Alcotest Daisy_benchmarks Daisy_interp Daisy_lang Daisy_lift Daisy_lir Daisy_loopir Daisy_normalize List Str String
