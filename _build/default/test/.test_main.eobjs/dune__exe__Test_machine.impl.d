test/test_machine.ml: Alcotest Daisy_lang Daisy_loopir Daisy_machine Daisy_poly Daisy_transforms Float List Printf String
