test/test_poly.ml: Affine Alcotest Daisy_dependence Daisy_poly Daisy_support Expr List QCheck QCheck_alcotest System
