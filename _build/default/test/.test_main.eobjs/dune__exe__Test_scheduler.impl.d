test/test_scheduler.ml: Alcotest Daisy Daisy_interp Daisy_lang Daisy_loopir Daisy_scheduler Daisy_support Daisy_transforms Float List Printf String
