test/test_dependence.ml: Alcotest Array Daisy_benchmarks Daisy_dependence Daisy_lang Daisy_loopir Daisy_normalize Daisy_poly Fastpath Legality List Refs Test
