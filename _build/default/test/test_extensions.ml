(** Tests for the extension passes: array contraction (the inverse of
    scalar expansion) and reuse-distance analysis. *)

module Ir = Daisy_loopir.Ir
module Contract = Daisy_normalize.Contract
module Reuse = Daisy_machine.Reuse
module Config = Daisy_machine.Config
module Interp = Daisy_interp.Interp
module Fusion = Daisy_transforms.Fusion
module Pipeline = Daisy_normalize.Pipeline

let lower = Daisy_lang.Lower.program_of_string ~source:"test.c"

let check_equiv ~sizes p1 p2 =
  Alcotest.(check bool) "equivalent" true (Interp.equivalent p1 p2 ~sizes ())

(* ------------------------------------------------------------------ *)
(* Array contraction *)

let expanded_then_fused src ~sizes =
  let p = lower src in
  let p = Pipeline.normalize ~sizes p in
  let p, _ = Fusion.fuse_producer_consumer ~max_comps:20 p in
  p

let test_contract_roundtrip () =
  (* expansion creates arrays; unbounded producer-consumer fusion re-fuses
     everything; contraction then removes the arrays again *)
  let src =
    {|void f(int n, double A[n], double B[n], double C[n]) {
        for (int i = 0; i < n; i++) {
          double t = A[i] * 2.0;
          double u = t + 1.0;
          B[i] = u * u;
          C[i] = u - t;
        }
      }|}
  in
  let sizes = [ ("n", 16) ] in
  let p = lower src in
  let fused = expanded_then_fused src ~sizes in
  let locals_before =
    List.length
      (List.filter (fun (a : Ir.array_decl) -> a.Ir.storage = Ir.Slocal)
         fused.Ir.arrays)
  in
  Alcotest.(check bool) "expansion created arrays" true (locals_before >= 2);
  let contracted, plan = Contract.run fused in
  Alcotest.(check int) "all arrays contracted" locals_before
    (List.length plan);
  Alcotest.(check int) "no local arrays left" 0
    (List.length
       (List.filter (fun (a : Ir.array_decl) -> a.Ir.storage = Ir.Slocal)
          contracted.Ir.arrays));
  check_equiv ~sizes p contracted

let test_contract_skips_cross_loop () =
  (* the temporary is produced in one loop and consumed in another: its
     lifetime spans the whole loop, contraction must refuse *)
  let src =
    {|void f(int n, double A[n], double B[n]) {
        double tmp[n];
        for (int i = 0; i < n; i++)
          tmp[i] = A[i] * 2.0;
        for (int i = 0; i < n; i++)
          B[i] = tmp[i] + 1.0;
      }|}
  in
  let p = lower src in
  let _, plan = Contract.run p in
  Alcotest.(check int) "no contraction" 0 (List.length plan)

let test_contract_skips_shifted_subscript () =
  (* tmp[i] written, tmp[i - 1]-style reads would cross iterations; here
     the subscripts don't all equal the iterator, so refuse *)
  let src =
    {|void f(int n, double A[n], double B[n]) {
        double tmp[n];
        for (int i = 1; i < n; i++) {
          tmp[i] = A[i] * 2.0;
          B[i] = tmp[i - 1] + tmp[i];
        }
      }|}
  in
  let p = Daisy_normalize.Iter_norm.run (lower src) in
  let _, plan = Contract.run p in
  Alcotest.(check int) "no contraction" 0 (List.length plan)

let test_contract_reduces_traffic () =
  let src =
    {|void f(int n, double A[n], double B[n], double C[n]) {
        for (int i = 0; i < n; i++) {
          double t = A[i] * 2.0;
          double u = t + 1.0;
          B[i] = u * u;
          C[i] = u - t;
        }
      }|}
  in
  let sizes = [ ("n", 512) ] in
  let fused = expanded_then_fused src ~sizes in
  let contracted, _ = Contract.run fused in
  let loads p =
    (Daisy_machine.Cost.evaluate Config.default p ~sizes ()).Daisy_machine.Cost.l1_loads
  in
  Alcotest.(check bool) "fewer L1 accesses after contraction" true
    (loads contracted < loads fused)

(* ------------------------------------------------------------------ *)
(* Reuse distance *)

let test_reuse_streaming_vs_repeat () =
  (* streaming over a large array: no short reuse; repeating over a small
     one: all short reuse *)
  let streaming =
    lower
      {|void f(int n, double A[n]) {
          for (int i = 0; i < n; i++) A[i] = A[i] + 1.0;
        }|}
  in
  let repeat =
    lower
      {|void f(int n, double A[8], double B[n]) {
          for (int i = 0; i < n; i++) A[0] = A[0] + B[0];
        }|}
  in
  let h1 = Reuse.of_program Config.default streaming ~sizes:[ ("n", 4096) ] () in
  let h2 = Reuse.of_program Config.default repeat ~sizes:[ ("n", 4096) ] () in
  Alcotest.(check bool) "repeat has near-total short reuse" true
    (Reuse.hit_fraction h2 ~lines:4 > 0.95);
  Alcotest.(check bool) "streaming reuses within the line only" true
    (Reuse.mean_distance h1 < 2.0);
  Alcotest.(check bool) "streaming is mostly cold at line granularity" true
    (h1.Reuse.cold > h2.Reuse.cold)

let test_reuse_normalization_improves_locality () =
  (* the Fig. 3 column-major traversal has long reuse distances; stride
     minimization shortens them *)
  let bad =
    lower
      {|void f(int n, double Q[n][n], double P[n][n]) {
          for (int i = 0; i < n; i++)
            for (int j = 0; j < n; j++)
              Q[j][i] = Q[j][i] + P[j][i];
        }|}
  in
  let sizes = [ ("n", 64) ] in
  let good = Pipeline.normalize ~sizes bad in
  let mean p = Reuse.mean_distance (Reuse.of_program Config.default p ~sizes ()) in
  Alcotest.(check bool)
    (Printf.sprintf "normalized mean distance (%.1f) < original (%.1f)"
       (mean good) (mean bad))
    true
    (mean good < mean bad)

let test_reuse_histogram_accounting () =
  let p =
    lower
      {|void f(int n, double A[n]) {
          for (int i = 0; i < n; i++) A[i] = 1.0;
        }|}
  in
  let h = Reuse.of_program Config.default p ~sizes:[ ("n", 128) ] () in
  let bucket_sum = Array.fold_left ( +. ) 0.0 h.Reuse.buckets in
  Alcotest.(check (float 1e-9)) "cold + reuses = total" h.Reuse.total
    (bucket_sum +. h.Reuse.cold)

(* ------------------------------------------------------------------ *)
(* Loop-invariant code motion *)

module Licm = Daisy_normalize.Licm

let test_licm_hoists () =
  let p =
    lower
      {|void f(int n, double A[n], double x, double y) {
          for (int i = 0; i < n; i++) {
            double t = x * y + 2.0;
            A[i] = A[i] + t;
          }
        }|}
  in
  let p', n = Licm.run p in
  Alcotest.(check int) "one hoist" 1 n;
  Alcotest.(check int) "comp moved out" 1
    (List.length
       (List.filter (function Ir.Ncomp _ -> true | _ -> false) p'.Ir.body));
  check_equiv ~sizes:[ ("n", 9) ] p p'

let test_licm_respects_variance () =
  let p =
    lower
      {|void f(int n, double A[n]) {
          for (int i = 0; i < n; i++) {
            double t = A[i] * 2.0;
            A[i] = t + 1.0;
          }
        }|}
  in
  let _, n = Licm.run p in
  Alcotest.(check int) "nothing hoisted" 0 n

let test_licm_respects_earlier_reader () =
  (* B reads t before t is assigned: iteration 0 must see the OLD value *)
  let p =
    lower
      {|void f(int n, double A[n], double B[n], double x) {
          double t = 0.0;
          for (int i = 0; i < n; i++) {
            B[i] = t;
            t = x * 3.0;
            A[i] = t;
          }
        }|}
  in
  let p', _ = Licm.run p in
  check_equiv ~sizes:[ ("n", 7) ] p p'

let test_licm_nested () =
  (* x*y is invariant in both loops; hoisting happens at the innermost
     level per pass *)
  let p =
    lower
      {|void f(int n, double A[n][n], double x, double y) {
          for (int i = 0; i < n; i++)
            for (int j = 0; j < n; j++) {
              double t = x * y;
              A[i][j] = A[i][j] + t;
            }
        }|}
  in
  (* one bottom-up run cascades: out of j, then out of i *)
  let p1, n1 = Licm.run p in
  Alcotest.(check int) "hoisted out of both loops" 2 n1;
  let _, n2 = Licm.run p1 in
  Alcotest.(check int) "fixpoint" 0 n2;
  check_equiv ~sizes:[ ("n", 6) ] p p1

let suite =
  [
    ("licm hoists invariant", `Quick, test_licm_hoists);
    ("licm respects variance", `Quick, test_licm_respects_variance);
    ("licm respects earlier reader", `Quick, test_licm_respects_earlier_reader);
    ("licm nested", `Quick, test_licm_nested);
    ("contract roundtrip", `Quick, test_contract_roundtrip);
    ("contract skips cross-loop", `Quick, test_contract_skips_cross_loop);
    ("contract skips shifted", `Quick, test_contract_skips_shifted_subscript);
    ("contract reduces traffic", `Quick, test_contract_reduces_traffic);
    ("reuse streaming vs repeat", `Quick, test_reuse_streaming_vs_repeat);
    ("reuse improves with normalization", `Quick, test_reuse_normalization_improves_locality);
    ("reuse histogram accounting", `Quick, test_reuse_histogram_accounting);
  ]
