(** Tests for the support library: deterministic RNG, union-find, utility
    functions, locations and diagnostics. *)

open Daisy_support

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Rng.of_string "stream" and b = Rng.of_string "stream" in
  for _ = 1 to 100 do
    Alcotest.(check int) "same sequence" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_streams_differ () =
  let a = Rng.of_string "one" and b = Rng.of_string "two" in
  let va = List.init 20 (fun _ -> Rng.int a 1_000_000) in
  let vb = List.init 20 (fun _ -> Rng.int b 1_000_000) in
  Alcotest.(check bool) "different streams" false (va = vb)

let test_rng_bounds () =
  let r = Rng.of_string "bounds" in
  for _ = 1 to 10_000 do
    let v = Rng.int r 7 in
    if v < 0 || v >= 7 then Alcotest.failf "out of range: %d" v
  done;
  for _ = 1 to 10_000 do
    let f = Rng.float r in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "float out of range: %f" f
  done

let test_rng_shuffle_permutes () =
  let r = Rng.of_string "shuffle" in
  let xs = List.init 30 Fun.id in
  let ys = Rng.shuffle r xs in
  Alcotest.(check (list int)) "same elements" xs (List.sort compare ys)

(* ------------------------------------------------------------------ *)
(* Union-find *)

let test_union_find () =
  let uf = Union_find.create 10 in
  Alcotest.(check int) "initial classes" 10 (Union_find.n_classes uf);
  Union_find.union uf 0 1;
  Union_find.union uf 1 2;
  Union_find.union uf 5 6;
  Alcotest.(check bool) "0 ~ 2" true (Union_find.same uf 0 2);
  Alcotest.(check bool) "0 !~ 5" false (Union_find.same uf 0 5);
  Alcotest.(check int) "classes" 7 (Union_find.n_classes uf);
  let groups = Union_find.groups uf in
  Alcotest.(check int) "group count" 7 (List.length groups);
  Alcotest.(check (list int)) "first group" [ 0; 1; 2 ] (List.hd groups)

(* ------------------------------------------------------------------ *)
(* Util *)

let test_gcd_lcm () =
  Alcotest.(check int) "gcd" 6 (Util.gcd 54 24);
  Alcotest.(check int) "gcd neg" 6 (Util.gcd (-54) 24);
  Alcotest.(check int) "gcd zero" 7 (Util.gcd 0 7);
  Alcotest.(check int) "lcm" 216 (Util.lcm 54 24)

let test_permutations () =
  Alcotest.(check int) "3! = 6" 6 (List.length (Util.permutations [ 1; 2; 3 ]));
  Alcotest.(check int) "4! = 24" 24 (List.length (Util.permutations [ 1; 2; 3; 4 ]));
  let perms = Util.permutations [ 1; 2; 3 ] in
  Alcotest.(check int) "all distinct" 6
    (List.length (Util.dedup ~eq:( = ) perms))

let test_take_drop_span () =
  Alcotest.(check (list int)) "take" [ 1; 2 ] (Util.take 2 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "take over" [ 1 ] (Util.take 5 [ 1 ]);
  Alcotest.(check (list int)) "drop" [ 3 ] (Util.drop 2 [ 1; 2; 3 ]);
  let pre, post = Util.span (fun x -> x < 3) [ 1; 2; 3; 1 ] in
  Alcotest.(check (list int)) "span pre" [ 1; 2 ] pre;
  Alcotest.(check (list int)) "span post" [ 3; 1 ] post

let test_geomean () =
  Alcotest.(check (float 1e-9)) "geomean" 2.0 (Util.geomean [ 1.0; 4.0 ]);
  Alcotest.(check (float 1e-9)) "geomean single" 3.0 (Util.geomean [ 3.0 ])

let test_fresh_name () =
  let taken = Util.SSet.of_list [ "x"; "x_0"; "x_1" ] in
  Alcotest.(check string) "skips taken" "x_2" (Util.fresh_name "x" taken);
  Alcotest.(check string) "free base" "y" (Util.fresh_name "y" taken)

(* ------------------------------------------------------------------ *)
(* Loc / Diag *)

let test_loc_advance () =
  let p = Loc.start_pos in
  let p = Loc.advance p 'a' in
  Alcotest.(check int) "col" 2 p.Loc.col;
  let p = Loc.advance p '\n' in
  Alcotest.(check int) "line" 2 p.Loc.line;
  Alcotest.(check int) "col reset" 1 p.Loc.col

let test_diag_message () =
  match Diag.errorf ~loc:Loc.dummy "bad %s %d" "thing" 42 with
  | exception Diag.Error d ->
      Alcotest.(check string) "message" "bad thing 42" d.Diag.message
  | _ -> Alcotest.fail "expected Diag.Error"

let suite =
  [
    ("rng deterministic", `Quick, test_rng_deterministic);
    ("rng streams differ", `Quick, test_rng_streams_differ);
    ("rng bounds", `Quick, test_rng_bounds);
    ("rng shuffle permutes", `Quick, test_rng_shuffle_permutes);
    ("union-find", `Quick, test_union_find);
    ("gcd/lcm", `Quick, test_gcd_lcm);
    ("permutations", `Quick, test_permutations);
    ("take/drop/span", `Quick, test_take_drop_span);
    ("geomean", `Quick, test_geomean);
    ("fresh names", `Quick, test_fresh_name);
    ("loc advance", `Quick, test_loc_advance);
    ("diag formatting", `Quick, test_diag_message);
  ]
