(** Tests for the normalization passes: iterator normalization, scalar
    expansion, maximal fission, stride minimization, and the full pipeline
    (paper §2, §3.2). *)

open Daisy_normalize
module Ir = Daisy_loopir.Ir
module Interp = Daisy_interp.Interp

let lower = Daisy_lang.Lower.program_of_string ~source:"test.c"

let check_equiv ?(sizes = []) p1 p2 =
  Alcotest.(check bool) "semantically equivalent" true
    (Interp.equivalent p1 p2 ~sizes ())

(* ------------------------------------------------------------------ *)
(* Iterator normalization *)

let test_iter_norm_offset () =
  let p =
    lower
      "void f(int n, double A[n]) { for (int i = 2; i < n; i++) A[i] = A[i] + 1.0; }"
  in
  let p' = Iter_norm.run p in
  Alcotest.(check bool) "normalized" true (Iter_norm.is_normalized p');
  check_equiv ~sizes:[ ("n", 17) ] p p'

let test_iter_norm_step () =
  let p =
    lower
      "void f(int n, double A[n]) { for (int i = 0; i < n; i += 3) A[i] = 2.0; }"
  in
  let p' = Iter_norm.run p in
  Alcotest.(check bool) "normalized" true (Iter_norm.is_normalized p');
  check_equiv ~sizes:[ ("n", 20) ] p p'

let test_iter_norm_downward () =
  let p =
    lower
      "void f(int n, double A[n]) { for (int i = n - 1; i >= 0; i--) A[i] = A[i] * 2.0; }"
  in
  let p' = Iter_norm.run p in
  Alcotest.(check bool) "normalized" true (Iter_norm.is_normalized p');
  check_equiv ~sizes:[ ("n", 11) ] p p'

let test_iter_norm_nested_dependent () =
  (* inner bound references outer iterator; normalization must substitute *)
  let p =
    lower
      {|void f(int n, double A[n][n]) {
          for (int i = 1; i < n; i++)
            for (int j = 0; j < i; j++)
              A[i][j] = A[i][j] + 1.0;
        }|}
  in
  let p' = Iter_norm.run p in
  Alcotest.(check bool) "normalized" true (Iter_norm.is_normalized p');
  check_equiv ~sizes:[ ("n", 9) ] p p'

(* ------------------------------------------------------------------ *)
(* Maximal fission: paper Figure 3a -> 3b *)

let fig3a =
  {|void foo(double A[1024][1024], double B[1024][1024],
             double Q[1024][1024], double P[1024][1024]) {
      for (int i = 0; i < 1024; i++)
        for (int j = 0; j < 1024; j++) {
          A[i][j] = A[i][j] + B[i][j];
          Q[j][i] = Q[j][i] + P[j][i];
        }
    }|}

let test_fission_fig3 () =
  let p = Iter_norm.run (lower fig3a) in
  let p' = Fission.run_fixpoint p in
  (* two independent computations -> two separate loop nests *)
  Alcotest.(check int) "two top-level nests" 2 (List.length p'.Ir.body);
  Alcotest.(check bool) "maximal" true (Fission.is_maximal p')

let test_fission_fig3_semantics () =
  let p = Iter_norm.run (lower fig3a) in
  let p' = Fission.run_fixpoint p in
  check_equiv p p'

let test_fission_respects_dependence () =
  (* S2 reads what S1 wrote at i-1: loop-carried, but distribution is legal
     (S1's loop runs entirely first). The reverse order would be illegal. *)
  let p =
    lower
      {|void f(int n, double A[n], double B[n]) {
          for (int i = 1; i < n; i++) {
            A[i] = B[i] + 1.0;
            B[i] = A[i - 1] * 2.0;
          }
        }|}
  in
  let p = Iter_norm.run p in
  let p' = Fission.run_fixpoint p in
  check_equiv ~sizes:[ ("n", 33) ] p p'

let test_fission_keeps_cycles_fused () =
  (* A[i] depends on B[i-1] and B[i] depends on A[i-1]: a dependence cycle
     across iterations -> the two computations are atomic *)
  let p =
    lower
      {|void f(int n, double A[n], double B[n]) {
          for (int i = 1; i < n; i++) {
            A[i] = B[i - 1] + 1.0;
            B[i] = A[i] * 2.0;
          }
        }|}
  in
  let p = Iter_norm.run p in
  let p' = Fission.run_fixpoint p in
  Alcotest.(check int) "still one nest" 1 (List.length p'.Ir.body);
  check_equiv ~sizes:[ ("n", 17) ] p p'

let test_fission_gemm () =
  let p =
    lower
      {|void gemm(int ni, int nj, int nk, double alpha, double beta,
                  double C[ni][nj], double A[ni][nk], double B[nk][nj]) {
          for (int i = 0; i < ni; i++) {
            for (int j = 0; j < nj; j++)
              C[i][j] *= beta;
            for (int k = 0; k < nk; k++)
              for (int j = 0; j < nj; j++)
                C[i][j] += alpha * A[i][k] * B[k][j];
          }
        }|}
  in
  let p = Iter_norm.run p in
  let p' = Fission.run_fixpoint p in
  Alcotest.(check int) "scale and update nests" 2 (List.length p'.Ir.body);
  check_equiv ~sizes:[ ("ni", 7); ("nj", 8); ("nk", 9) ] p p'

let test_fission_reordering_legal () =
  (* B-variant style: consumer textually before producer across iterations
     is impossible in our DSL, but independent statements in "wrong" order
     must stay reorderable *)
  let p =
    lower
      {|void f(int n, double A[n], double B[n], double C[n]) {
          for (int i = 0; i < n; i++) {
            C[i] = A[i] + 1.0;
            B[i] = C[i] * 2.0;
            A[i] = 3.0;
          }
        }|}
  in
  let p = Iter_norm.run p in
  let p' = Fission.run_fixpoint p in
  Alcotest.(check int) "three nests" 3 (List.length p'.Ir.body);
  check_equiv ~sizes:[ ("n", 13) ] p p'

(* ------------------------------------------------------------------ *)
(* Scalar expansion: the CLOUDSC pattern (paper Fig. 10) *)

let test_scalar_expansion_cloudsc_pattern () =
  let p =
    lower
      {|void erosion(int nproma, double ZTP1[nproma], double ZQSMIX[nproma],
                     double PAP[nproma]) {
          for (int jl = 0; jl < nproma; jl++) {
            double zqp = 1.0 / PAP[jl];
            double zcond = ZQSMIX[jl] * zqp;
            ZTP1[jl] = ZTP1[jl] + zcond;
            ZQSMIX[jl] = ZQSMIX[jl] - zcond;
          }
        }|}
  in
  let p = Iter_norm.run p in
  let p', expansions = Scalar_expand.run p in
  Alcotest.(check int) "two scalars expanded" 2 (List.length expansions);
  Alcotest.(check int) "no local scalars left" 0
    (List.length p'.Ir.local_scalars);
  check_equiv ~sizes:[ ("nproma", 16) ] p p';
  (* expansion unlocks fission into atomic nests *)
  let p'' = Fission.run_fixpoint p' in
  Alcotest.(check int) "fissioned into 4 nests" 4 (List.length p''.Ir.body);
  check_equiv ~sizes:[ ("nproma", 16) ] p p''

let test_scalar_expansion_skips_live_in () =
  (* s carries a value across iterations (read before write): not expandable *)
  let p =
    lower
      {|void f(int n, double A[n]) {
          double s = 0.0;
          for (int i = 0; i < n; i++) {
            A[i] = s;
            s = A[i] + 1.0;
          }
        }|}
  in
  let p = Iter_norm.run p in
  let p', expansions = Scalar_expand.run p in
  Alcotest.(check int) "no expansion" 0 (List.length expansions);
  check_equiv ~sizes:[ ("n", 9) ] p p'

let test_scalar_expansion_skips_guarded_write () =
  let p =
    lower
      {|void f(int n, double A[n], double B[n], double x) {
          for (int i = 0; i < n; i++) {
            double s;
            if (x > 0.5) s = A[i];
            B[i] = s;
            A[i] = s * 2.0;
          }
        }|}
  in
  let p = Iter_norm.run p in
  let _, expansions = Scalar_expand.run p in
  Alcotest.(check int) "guarded first write blocks expansion" 0
    (List.length expansions)

(* ------------------------------------------------------------------ *)
(* Stride minimization: paper Figure 3b -> 3c *)

let test_stride_min_fig3 () =
  let p =
    lower
      {|void foo(int n, double Q[n][n], double P[n][n]) {
          for (int i = 0; i < n; i++)
            for (int j = 0; j < n; j++)
              Q[j][i] = Q[j][i] + P[j][i];
        }|}
  in
  let p = Iter_norm.run p in
  let sizes = Daisy_support.Util.SMap.singleton "n" 128 in
  let p', permuted = Stride.run (Stride.Sum_of_strides sizes) p in
  Alcotest.(check int) "one nest permuted" 1 permuted;
  (* outer loop is now j (the slow dimension of Q and P) *)
  (match p'.Ir.body with
  | [ Ir.Nloop l ] -> Alcotest.(check string) "outer iterator" "j" l.Ir.iter
  | _ -> Alcotest.fail "expected single nest");
  check_equiv ~sizes:[ ("n", 16) ] p p'

let test_stride_min_already_optimal () =
  let p =
    lower
      {|void foo(int n, double A[n][n], double B[n][n]) {
          for (int i = 0; i < n; i++)
            for (int j = 0; j < n; j++)
              A[i][j] = A[i][j] + B[i][j];
        }|}
  in
  let p = Iter_norm.run p in
  let sizes = Daisy_support.Util.SMap.singleton "n" 128 in
  let _, permuted = Stride.run (Stride.Sum_of_strides sizes) p in
  Alcotest.(check int) "no permutation needed" 0 permuted

let test_stride_min_respects_legality () =
  (* permuting would reverse the (1,-1) dependence: illegal, must stay *)
  let p =
    lower
      {|void f(int n, double A[n][n]) {
          for (int i = 1; i < n; i++)
            for (int j = 0; j < n - 1; j++)
              A[j][i] = A[j + 1][i - 1] + 1.0;
        }|}
  in
  let p = Iter_norm.run p in
  let sizes = Daisy_support.Util.SMap.singleton "n" 64 in
  let p', _ = Stride.run (Stride.Sum_of_strides sizes) p in
  check_equiv ~sizes:[ ("n", 12) ] p p'

let test_stride_min_triangular_not_expressible () =
  (* triangular bounds: permutation not expressible, nest unchanged *)
  let p =
    lower
      {|void f(int n, double A[n][n]) {
          for (int i = 0; i < n; i++)
            for (int j = 0; j <= i; j++)
              A[j][i] = A[j][i] * 2.0;
        }|}
  in
  let p = Iter_norm.run p in
  let sizes = Daisy_support.Util.SMap.singleton "n" 64 in
  let p', permuted = Stride.run (Stride.Sum_of_strides sizes) p in
  Alcotest.(check int) "not permuted" 0 permuted;
  check_equiv ~sizes:[ ("n", 10) ] p p'

let test_stride_min_3d () =
  (* worst-possible order (k, j, i) for row-major C[i][j] += A[i][k]*B[k][j]
     should become (i, k, j) or (k, i, j)-like with j innermost *)
  let p =
    lower
      {|void f(int n, double C[n][n], double A[n][n], double B[n][n]) {
          for (int j = 0; j < n; j++)
            for (int k = 0; k < n; k++)
              for (int i = 0; i < n; i++)
                C[i][j] += A[i][k] * B[k][j];
        }|}
  in
  let p = Iter_norm.run p in
  let sizes = Daisy_support.Util.SMap.singleton "n" 128 in
  let p', permuted = Stride.run (Stride.Sum_of_strides sizes) p in
  Alcotest.(check int) "permuted" 1 permuted;
  (match p'.Ir.body with
  | [ Ir.Nloop l ] ->
      let band, _ = Daisy_dependence.Legality.perfect_band l in
      let inner = List.nth band 2 in
      Alcotest.(check string) "j innermost" "j" inner.Ir.iter
  | _ -> Alcotest.fail "expected single nest");
  check_equiv ~sizes:[ ("n", 9) ] p p'

(* ------------------------------------------------------------------ *)
(* Full pipeline: the paper's headline property — structurally different
   semantically-equivalent variants normalize to the same canonical form *)

let gemm_variant_1 =
  {|void gemm(int ni, int nj, int nk, double alpha, double beta,
              double C[ni][nj], double A[ni][nk], double B[nk][nj]) {
      for (int i = 0; i < ni; i++) {
        for (int j = 0; j < nj; j++)
          C[i][j] *= beta;
        for (int k = 0; k < nk; k++)
          for (int j = 0; j < nj; j++)
            C[i][j] += alpha * A[i][k] * B[k][j];
      }
    }|}

let gemm_variant_2 =
  {|void gemm(int ni, int nj, int nk, double alpha, double beta,
              double C[ni][nj], double A[ni][nk], double B[nk][nj]) {
      for (int i = 0; i < ni; i++) {
        for (int j = 0; j < nj; j++)
          C[i][j] *= beta;
        for (int j = 0; j < nj; j++)
          for (int k = 0; k < nk; k++)
            C[i][j] += alpha * A[i][k] * B[k][j];
      }
    }|}

let test_pipeline_gemm_variants_converge () =
  let sizes = [ ("ni", 64); ("nj", 80); ("nk", 96) ] in
  let n1 = Pipeline.normalize ~sizes (lower gemm_variant_1) in
  let n2 = Pipeline.normalize ~sizes (lower gemm_variant_2) in
  Alcotest.(check bool) "same canonical form" true
    (Ir.equal_structure n1.Ir.body n2.Ir.body)

let test_pipeline_gemm_semantics () =
  let sizes_l = [ ("ni", 64); ("nj", 80); ("nk", 96) ] in
  let run_sizes = [ ("ni", 7); ("nj", 8); ("nk", 9) ] in
  let p = lower gemm_variant_2 in
  let n = Pipeline.normalize ~sizes:sizes_l p in
  check_equiv ~sizes:run_sizes p n

let test_pipeline_report () =
  let p = lower gemm_variant_2 in
  let _, report =
    Pipeline.run
      ~options:
        (Pipeline.default_options
           ~sizes:[ ("ni", 64); ("nj", 80); ("nk", 96) ]
           ())
      p
  in
  Alcotest.(check int) "nests after fission" 2 report.Pipeline.fission_nests_after;
  Alcotest.(check bool) "some permutation happened" true
    (report.Pipeline.permuted_nests >= 1)

(* property: pipeline preserves semantics on random loop programs is covered
   in test_property.ml with a program generator *)

let suite =
  [
    ("iter-norm offset", `Quick, test_iter_norm_offset);
    ("iter-norm step", `Quick, test_iter_norm_step);
    ("iter-norm downward", `Quick, test_iter_norm_downward);
    ("iter-norm triangular", `Quick, test_iter_norm_nested_dependent);
    ("fission fig3 structure", `Quick, test_fission_fig3);
    ("fission fig3 semantics", `Quick, test_fission_fig3_semantics);
    ("fission with forward dep", `Quick, test_fission_respects_dependence);
    ("fission keeps cycles fused", `Quick, test_fission_keeps_cycles_fused);
    ("fission gemm", `Quick, test_fission_gemm);
    ("fission three statements", `Quick, test_fission_reordering_legal);
    ("scalar expansion cloudsc", `Quick, test_scalar_expansion_cloudsc_pattern);
    ("scalar expansion live-in blocked", `Quick, test_scalar_expansion_skips_live_in);
    ("scalar expansion guarded blocked", `Quick, test_scalar_expansion_skips_guarded_write);
    ("stride-min fig3c", `Quick, test_stride_min_fig3);
    ("stride-min already optimal", `Quick, test_stride_min_already_optimal);
    ("stride-min legality", `Quick, test_stride_min_respects_legality);
    ("stride-min triangular", `Quick, test_stride_min_triangular_not_expressible);
    ("stride-min 3d", `Quick, test_stride_min_3d);
    ("pipeline gemm variants converge", `Quick, test_pipeline_gemm_variants_converge);
    ("pipeline gemm semantics", `Quick, test_pipeline_gemm_semantics);
    ("pipeline report", `Quick, test_pipeline_report);
  ]
