(** Tests for the loopir utilities: traversals, substitution, canonical
    forms, dataflow summaries, and the scheduler's structural helpers. *)

module Ir = Daisy_loopir.Ir
module Expr = Daisy_poly.Expr
module Common = Daisy_scheduler.Common

let lower = Daisy_lang.Lower.program_of_string ~source:"test.c"

let gemm =
  lower
    {|void f(int n, double C[n][n], double A[n][n], double B[n][n]) {
        for (int i = 0; i < n; i++)
          for (int k = 0; k < n; k++)
            for (int j = 0; j < n; j++)
              C[i][j] += A[i][k] * B[k][j];
      }|}

(* ------------------------------------------------------------------ *)

let test_traversals () =
  Alcotest.(check int) "loops" 3 (List.length (Ir.loops_in gemm.Ir.body));
  Alcotest.(check int) "comps" 1 (List.length (Ir.comps_in gemm.Ir.body));
  Alcotest.(check int) "depth" 3 (Ir.depth gemm.Ir.body);
  match Ir.comps_with_context gemm.Ir.body with
  | [ (ctx, _) ] ->
      Alcotest.(check (list string)) "context order" [ "i"; "k"; "j" ]
        (List.map (fun (l : Ir.loop) -> l.Ir.iter) ctx)
  | _ -> Alcotest.fail "one comp"

let test_reads_writes () =
  match Ir.comps_in gemm.Ir.body with
  | [ c ] ->
      let reads =
        List.map (fun (a : Ir.access) -> a.Ir.array) (Ir.comp_array_reads c)
      in
      Alcotest.(check (list string)) "reads" [ "C"; "A"; "B" ] reads;
      let writes =
        List.map (fun (a : Ir.access) -> a.Ir.array) (Ir.comp_array_writes c)
      in
      Alcotest.(check (list string)) "writes" [ "C" ] writes
  | _ -> Alcotest.fail "one comp"

let test_subst_idx_nodes () =
  let env = Daisy_support.Util.SMap.singleton "i" (Expr.add (Expr.var "i") Expr.one) in
  let shifted = Ir.subst_idx_nodes env gemm.Ir.body in
  match Ir.comps_in shifted with
  | [ c ] -> (
      match c.Ir.dest with
      | Ir.Darray a ->
          Alcotest.(check string) "subscript shifted" "i + 1"
            (Expr.to_string (List.hd a.Ir.indices))
      | _ -> Alcotest.fail "array dest")
  | _ -> Alcotest.fail "one comp"

let test_canon_rename_invariance () =
  let other =
    lower
      {|void g(int n, double C[n][n], double A[n][n], double B[n][n]) {
          for (int p = 0; p < n; p++)
            for (int q = 0; q < n; q++)
              for (int r = 0; r < n; r++)
                C[p][r] += A[p][q] * B[q][r];
        }|}
  in
  Alcotest.(check bool) "renamed programs equal in canon" true
    (Ir.equal_structure gemm.Ir.body other.Ir.body);
  Alcotest.(check int) "hash agrees" (Ir.hash_structure gemm.Ir.body)
    (Ir.hash_structure other.Ir.body)

let test_canon_distinguishes () =
  let transposed =
    lower
      {|void g(int n, double C[n][n], double A[n][n], double B[n][n]) {
          for (int i = 0; i < n; i++)
            for (int k = 0; k < n; k++)
              for (int j = 0; j < n; j++)
                C[j][i] += A[i][k] * B[k][j];
        }|}
  in
  Alcotest.(check bool) "different access pattern differs" false
    (Ir.equal_structure gemm.Ir.body transposed.Ir.body)

let test_flops () =
  match Ir.comps_in gemm.Ir.body with
  | [ c ] ->
      (* C + A*B: one add, one mul *)
      Alcotest.(check int) "flops" 2 (Ir.flops_of_vexpr c.Ir.rhs)
  | _ -> Alcotest.fail "one comp"

let test_printer_roundtrip_stability () =
  let s1 = Ir.program_to_string gemm in
  Alcotest.(check bool) "mentions attrs-free loops" true
    (String.length s1 > 50);
  (* printing is deterministic *)
  Alcotest.(check string) "stable" s1 (Ir.program_to_string gemm)

(* ------------------------------------------------------------------ *)
(* Scheduler structural helpers *)

let test_schedulable_units_leaf () =
  let units = Common.program_units gemm in
  Alcotest.(check int) "gemm is one unit" 1 (List.length units);
  match units with
  | [ (outer, nest) ] ->
      Alcotest.(check int) "no outer" 0 (List.length outer);
      Alcotest.(check string) "nest head" "i" nest.Ir.iter
  | _ -> Alcotest.fail "unit"

let test_schedulable_units_time_loop () =
  let p =
    lower
      {|void f(int n, int t, double A[n], double B[n]) {
          for (int s = 0; s < t; s++) {
            for (int i = 0; i < n; i++) B[i] = A[i] * 2.0;
            for (int i = 0; i < n; i++) A[i] = B[i] + 1.0;
          }
        }|}
  in
  let units = Common.program_units p in
  Alcotest.(check int) "two units under the time loop" 2 (List.length units);
  List.iter
    (fun (outer, _) ->
      Alcotest.(check (list string)) "outer is s" [ "s" ]
        (List.map (fun (l : Ir.loop) -> l.Ir.iter) outer))
    units

let test_wrap_outer () =
  let units = Common.program_units gemm in
  match units with
  | [ (outer, nest) ] ->
      let wrapped = Common.wrap_outer outer (Ir.Nloop nest) in
      Alcotest.(check bool) "no outer: unchanged structure" true
        (Ir.equal_structure [ wrapped ] [ Ir.Nloop nest ])
  | _ -> Alcotest.fail "unit"

let test_liftable_gates () =
  Alcotest.(check bool) "gemm liftable" true
    (List.for_all Common.liftable gemm.Ir.body);
  let guarded =
    lower
      {|void f(int n, double A[n], double x) {
          for (int i = 0; i < n; i++)
            if (x > 0.5) A[i] = 1.0;
        }|}
  in
  Alcotest.(check bool) "guarded not liftable" false
    (List.for_all Common.liftable guarded.Ir.body);
  let transposed =
    lower
      {|void f(int n, double A[n][n]) {
          for (int i = 0; i < n; i++)
            for (int j = 0; j < n; j++) {
              A[i][j] = 1.0;
              A[j][i] = A[i][j];
            }
        }|}
  in
  Alcotest.(check bool) "transposed self-alias not liftable" false
    (List.for_all Common.liftable transposed.Ir.body)

let suite =
  [
    ("traversals", `Quick, test_traversals);
    ("reads/writes", `Quick, test_reads_writes);
    ("subtree substitution", `Quick, test_subst_idx_nodes);
    ("canon rename-invariant", `Quick, test_canon_rename_invariance);
    ("canon distinguishes patterns", `Quick, test_canon_distinguishes);
    ("flop counting", `Quick, test_flops);
    ("printer stability", `Quick, test_printer_roundtrip_stability);
    ("schedulable units: leaf", `Quick, test_schedulable_units_leaf);
    ("schedulable units: time loop", `Quick, test_schedulable_units_time_loop);
    ("wrap_outer", `Quick, test_wrap_outer);
    ("liftability gates", `Quick, test_liftable_gates);
  ]
