(** Tests for BLAS idiom detection and the embedding library. *)

module Ir = Daisy_loopir.Ir
module Patterns = Daisy_blas.Patterns
module Embedding = Daisy_embedding.Embedding
module Pipeline = Daisy_normalize.Pipeline
module Interp = Daisy_interp.Interp

let lower = Daisy_lang.Lower.program_of_string ~source:"test.c"

let check_equiv ?(sizes = []) p1 p2 =
  Alcotest.(check bool) "equivalent" true (Interp.equivalent p1 p2 ~sizes ())

(* ------------------------------------------------------------------ *)

let test_detect_gemm () =
  let p =
    lower
      {|void f(int m, int n, int k, double alpha, double C[m][n],
              double A[m][k], double B[k][n]) {
          for (int i = 0; i < m; i++)
            for (int kk = 0; kk < k; kk++)
              for (int j = 0; j < n; j++)
                C[i][j] += alpha * A[i][kk] * B[kk][j];
        }|}
  in
  let p', count = Patterns.replace_all p in
  Alcotest.(check int) "one call" 1 count;
  (match p'.Ir.body with
  | [ Ir.Ncall c ] -> Alcotest.(check string) "gemm" "gemm" c.Ir.kernel
  | _ -> Alcotest.fail "expected a call");
  check_equiv ~sizes:[ ("m", 5); ("n", 6); ("k", 7) ] p p'

let test_detect_gemm_after_normalization () =
  (* the paper's point: the full PolyBench gemm matches only after
     normalization splits off the beta-scaling loop *)
  let b = Daisy_benchmarks.Polybench.gemm in
  let p = Daisy_benchmarks.Polybench.program b in
  let _, before = Patterns.replace_all p in
  Alcotest.(check int) "no match before normalization" 0 before;
  let normalized = Pipeline.normalize ~sizes:b.Daisy_benchmarks.Polybench.sim_sizes p in
  let p', after = Patterns.replace_all normalized in
  Alcotest.(check int) "match after normalization" 1 after;
  check_equiv ~sizes:b.Daisy_benchmarks.Polybench.test_sizes p p'

let test_detect_gemv () =
  let p =
    lower
      {|void f(int m, int n, double A[m][n], double x[n], double y[m]) {
          for (int i = 0; i < m; i++)
            for (int j = 0; j < n; j++)
              y[i] += A[i][j] * x[j];
        }|}
  in
  let p', count = Patterns.replace_all p in
  Alcotest.(check int) "one call" 1 count;
  (match p'.Ir.body with
  | [ Ir.Ncall c ] -> Alcotest.(check string) "gemv" "gemv" c.Ir.kernel
  | _ -> Alcotest.fail "call");
  check_equiv ~sizes:[ ("m", 7); ("n", 9) ] p p'

let test_detect_gemvt () =
  let p =
    lower
      {|void f(int m, int n, double A[m][n], double x[m], double y[n]) {
          for (int i = 0; i < m; i++)
            for (int j = 0; j < n; j++)
              y[j] += A[i][j] * x[i];
        }|}
  in
  let p', count = Patterns.replace_all p in
  Alcotest.(check int) "one call" 1 count;
  (match p'.Ir.body with
  | [ Ir.Ncall c ] -> Alcotest.(check string) "gemvt" "gemvt" c.Ir.kernel
  | _ -> Alcotest.fail "call");
  check_equiv ~sizes:[ ("m", 7); ("n", 9) ] p p'

let test_detect_syrk () =
  let p =
    lower
      {|void f(int n, int m, double alpha, double C[n][n], double A[n][m]) {
          for (int i = 0; i < n; i++)
            for (int k = 0; k < m; k++)
              for (int j = 0; j <= i; j++)
                C[i][j] += alpha * A[i][k] * A[j][k];
        }|}
  in
  let p', count = Patterns.replace_all p in
  Alcotest.(check int) "one call" 1 count;
  (match p'.Ir.body with
  | [ Ir.Ncall c ] -> Alcotest.(check string) "syrk" "syrk" c.Ir.kernel
  | _ -> Alcotest.fail "call");
  check_equiv ~sizes:[ ("n", 8); ("m", 6) ] p p'

let test_no_false_positive_stencil () =
  let p =
    lower
      {|void f(int n, double A[n][n], double B[n][n]) {
          for (int i = 1; i < n - 1; i++)
            for (int j = 1; j < n - 1; j++)
              B[i][j] = 0.25 * (A[i - 1][j] + A[i + 1][j] + A[i][j - 1] + A[i][j + 1]);
        }|}
  in
  let _, count = Patterns.replace_all p in
  Alcotest.(check int) "no match" 0 count

let test_no_false_positive_guard () =
  let p =
    lower
      {|void f(int m, int n, int k, double C[m][n], double A[m][k], double B[k][n], double x) {
          for (int i = 0; i < m; i++)
            for (int kk = 0; kk < k; kk++)
              for (int j = 0; j < n; j++)
                if (x > 0.0)
                  C[i][j] += A[i][kk] * B[kk][j];
        }|}
  in
  let _, count = Patterns.replace_all p in
  Alcotest.(check int) "guarded nest not matched" 0 count

(* ------------------------------------------------------------------ *)
(* Embeddings *)

let nest_of src =
  match (lower src).Ir.body with
  | [ Ir.Nloop l ] -> Ir.Nloop l
  | _ -> Alcotest.fail "single nest"

let test_embedding_identical_nests () =
  let a =
    nest_of
      {|void f(int n, double A[n][n], double B[n][n]) {
          for (int i = 0; i < n; i++)
            for (int j = 0; j < n; j++)
              A[i][j] = B[i][j] * 2.0;
        }|}
  in
  let b =
    nest_of
      {|void g(int m, double X[m][m], double Y[m][m]) {
          for (int p = 0; p < m; p++)
            for (int q = 0; q < m; q++)
              X[p][q] = Y[p][q] * 2.0;
        }|}
  in
  let d = Embedding.distance (Embedding.of_node a) (Embedding.of_node b) in
  Alcotest.(check bool) (Printf.sprintf "renamed nests identical (d=%.3f)" d)
    true (d < 1e-9)

let test_embedding_discriminates () =
  let copy =
    nest_of
      {|void f(int n, double A[n][n], double B[n][n]) {
          for (int i = 0; i < n; i++)
            for (int j = 0; j < n; j++)
              A[i][j] = B[i][j];
        }|}
  in
  let gemm =
    nest_of
      {|void f(int n, double C[n][n], double A[n][n], double B[n][n]) {
          for (int i = 0; i < n; i++)
            for (int k = 0; k < n; k++)
              for (int j = 0; j < n; j++)
                C[i][j] += A[i][k] * B[k][j];
        }|}
  in
  let transpose_copy =
    nest_of
      {|void f(int n, double A[n][n], double B[n][n]) {
          for (int i = 0; i < n; i++)
            for (int j = 0; j < n; j++)
              A[i][j] = B[j][i];
        }|}
  in
  let e = Embedding.of_node in
  let d_copy_gemm = Embedding.distance (e copy) (e gemm) in
  let d_copy_tcopy = Embedding.distance (e copy) (e transpose_copy) in
  Alcotest.(check bool) "copy closer to transposed copy than to gemm" true
    (d_copy_tcopy < d_copy_gemm);
  Alcotest.(check bool) "stride features differ" true (d_copy_tcopy > 0.0)

let test_embedding_knn () =
  let mk label src = (Embedding.of_node (nest_of src), label) in
  let db =
    [
      mk "copy"
        {|void f(int n, double A[n], double B[n]) {
            for (int i = 0; i < n; i++) A[i] = B[i];
          }|};
      mk "axpy"
        {|void f(int n, double a, double A[n], double B[n]) {
            for (int i = 0; i < n; i++) A[i] = A[i] + a * B[i];
          }|};
      mk "mm"
        {|void f(int n, double C[n][n], double A[n][n], double B[n][n]) {
            for (int i = 0; i < n; i++)
              for (int k = 0; k < n; k++)
                for (int j = 0; j < n; j++)
                  C[i][j] += A[i][k] * B[k][j];
          }|};
    ]
  in
  let q =
    Embedding.of_node
      (nest_of
         {|void f(int m, double X[m], double Y[m], double b) {
             for (int p = 0; p < m; p++) X[p] = X[p] + b * Y[p];
           }|})
  in
  match Embedding.nearest 1 db q with
  | [ (_, label) ] -> Alcotest.(check string) "axpy closest" "axpy" label
  | _ -> Alcotest.fail "knn"

let test_detect_syr2k_polybench () =
  (* the full PolyBench syr2k matches only after normalization separates
     the beta scaling from the rank-2 update *)
  let b = Daisy_benchmarks.Polybench.find "syr2k" in
  let p = Daisy_benchmarks.Polybench.program b in
  let _, before = Patterns.replace_all p in
  Alcotest.(check int) "no match before" 0 before;
  let n = Pipeline.normalize ~sizes:b.Daisy_benchmarks.Polybench.sim_sizes p in
  let p', after = Patterns.replace_all n in
  Alcotest.(check int) "syr2k matched after" 1 after;
  (match
     List.find_opt (function Ir.Ncall _ -> true | _ -> false) p'.Ir.body
   with
  | Some (Ir.Ncall c) -> Alcotest.(check string) "kernel" "syr2k" c.Ir.kernel
  | _ -> Alcotest.fail "expected a call");
  check_equiv ~sizes:b.Daisy_benchmarks.Polybench.test_sizes p p'

let test_detect_atax_gemv_pair () =
  (* normalized atax contains a gemv (tmp = A x) and a gemvt (y += A^T tmp) *)
  let b = Daisy_benchmarks.Polybench.find "atax" in
  let p = Daisy_benchmarks.Polybench.program b in
  let n = Pipeline.normalize ~sizes:b.Daisy_benchmarks.Polybench.sim_sizes p in
  let p', count = Patterns.replace_all n in
  Alcotest.(check bool) "at least one mat-vec idiom" true (count >= 1);
  check_equiv ~sizes:b.Daisy_benchmarks.Polybench.test_sizes p p'

let suite =
  [
    ("syr2k from polybench", `Quick, test_detect_syr2k_polybench);
    ("atax gemv idioms", `Quick, test_detect_atax_gemv_pair);
    ("detect gemm", `Quick, test_detect_gemm);
    ("detect gemm needs normalization", `Quick, test_detect_gemm_after_normalization);
    ("detect gemv", `Quick, test_detect_gemv);
    ("detect gemv transposed", `Quick, test_detect_gemvt);
    ("detect syrk", `Quick, test_detect_syrk);
    ("stencil not matched", `Quick, test_no_false_positive_stencil);
    ("guarded nest not matched", `Quick, test_no_false_positive_guard);
    ("embedding rename-invariant", `Quick, test_embedding_identical_nests);
    ("embedding discriminates", `Quick, test_embedding_discriminates);
    ("embedding k-nn", `Quick, test_embedding_knn);
  ]
