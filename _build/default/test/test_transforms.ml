(** Tests for the scheduling transformations: interchange, tiling, fusion,
    recipes — all checked semantics-preserving by the interpreter. *)

module Ir = Daisy_loopir.Ir
module Lt = Daisy_transforms.Loop_transforms
module Fusion = Daisy_transforms.Fusion
module Recipe = Daisy_transforms.Recipe
module Interp = Daisy_interp.Interp
module Rng = Daisy_support.Rng
module Util = Daisy_support.Util

let lower = Daisy_lang.Lower.program_of_string ~source:"test.c"
let norm p = Daisy_normalize.Iter_norm.run (lower p)

let only_nest (p : Ir.program) =
  match p.Ir.body with
  | [ Ir.Nloop l ] -> l
  | _ -> Alcotest.fail "expected single nest"

let with_nest p l = { p with Ir.body = [ Ir.Nloop l ] }

let check_equiv ?(sizes = []) p1 p2 =
  Alcotest.(check bool) "equivalent" true (Interp.equivalent p1 p2 ~sizes ())

let gemm_src =
  {|void f(int n, double C[n][n], double A[n][n], double B[n][n]) {
      for (int i = 0; i < n; i++)
        for (int k = 0; k < n; k++)
          for (int j = 0; j < n; j++)
            C[i][j] += A[i][k] * B[k][j];
    }|}

(* ------------------------------------------------------------------ *)

let test_interchange_gemm () =
  let p = norm gemm_src in
  let l = only_nest p in
  match Lt.interchange ~outer:[] l [| 1; 0; 2 |] with
  | Error e -> Alcotest.fail e
  | Ok l' ->
      let band, _ = Daisy_dependence.Legality.perfect_band l' in
      Alcotest.(check (list string)) "order k i j" [ "k"; "i"; "j" ]
        (List.map (fun (x : Ir.loop) -> x.Ir.iter) band);
      check_equiv ~sizes:[ ("n", 8) ] p (with_nest p l')

let test_interchange_illegal () =
  let p =
    norm
      {|void f(int n, double A[n][n]) {
          for (int i = 1; i < n; i++)
            for (int j = 0; j < n - 1; j++)
              A[i][j] = A[i - 1][j + 1] + 1.0;
        }|}
  in
  let l = only_nest p in
  (match Lt.interchange ~outer:[] l [| 1; 0 |] with
  | Ok _ -> Alcotest.fail "should be rejected"
  | Error _ -> ())

let test_interchange_bad_perm () =
  let p = norm gemm_src in
  let l = only_nest p in
  (match Lt.interchange ~outer:[] l [| 0; 0; 1 |] with
  | Ok _ -> Alcotest.fail "not a permutation"
  | Error _ -> ())

let test_tile_gemm () =
  let p = norm gemm_src in
  let l = only_nest p in
  match Lt.tile ~outer:[] l [ (0, 4); (1, 4); (2, 4) ] with
  | Error e -> Alcotest.fail e
  | Ok l' ->
      let band, _ = Daisy_dependence.Legality.perfect_band l' in
      Alcotest.(check int) "6 loops" 6 (List.length band);
      (* non-divisible size exercises the min() bounds *)
      check_equiv ~sizes:[ ("n", 10) ] p (with_nest p l')

let test_tile_partial () =
  let p = norm gemm_src in
  let l = only_nest p in
  match Lt.tile ~outer:[] l [ (2, 4) ] with
  | Error e -> Alcotest.fail e
  | Ok l' ->
      check_equiv ~sizes:[ ("n", 9) ] p (with_nest p l')

let test_tile_illegal_band () =
  (* (1,-1) dependence: band not fully permutable -> tiling rejected *)
  let p =
    norm
      {|void f(int n, double A[n][n]) {
          for (int i = 1; i < n; i++)
            for (int j = 0; j < n - 1; j++)
              A[i][j] = A[i - 1][j + 1] + 1.0;
        }|}
  in
  let l = only_nest p in
  (match Lt.tile ~outer:[] l [ (0, 4); (1, 4) ] with
  | Ok _ -> Alcotest.fail "tiling must be rejected"
  | Error _ -> ())

let test_parallelize () =
  let p = norm gemm_src in
  let l = only_nest p in
  (match Lt.parallelize ~outer:[] l 0 with
  | Error e -> Alcotest.fail e
  | Ok l' -> Alcotest.(check bool) "parallel" true l'.Ir.attrs.Ir.parallel);
  (* k (position 1) carries the reduction: atomic fallback applies *)
  match Lt.parallelize ~outer:[] l 1 with
  | Error e -> Alcotest.fail e
  | Ok l' ->
      let band, _ = Daisy_dependence.Legality.perfect_band l' in
      let k = List.nth band 1 in
      Alcotest.(check bool) "atomic" true k.Ir.attrs.Ir.atomic

let test_vectorize_legal () =
  let p = norm gemm_src in
  let l = only_nest p in
  match Lt.vectorize ~outer:[] l with
  | Error e -> Alcotest.fail e
  | Ok l' ->
      let band, _ = Daisy_dependence.Legality.perfect_band l' in
      let j = List.nth band 2 in
      Alcotest.(check bool) "vectorized" true j.Ir.attrs.Ir.vectorized

let test_vectorize_illegal () =
  let p =
    norm
      {|void f(int n, double A[n]) {
          for (int i = 1; i < n; i++)
            A[i] = A[i - 1] * 2.0;
        }|}
  in
  let l = only_nest p in
  (match Lt.vectorize ~outer:[] l with
  | Ok _ -> Alcotest.fail "recurrence cannot vectorize"
  | Error _ -> ())

(* ------------------------------------------------------------------ *)
(* Fusion *)

let test_fuse_legal () =
  let p =
    norm
      {|void f(int n, double A[n], double B[n]) {
          for (int i = 0; i < n; i++)
            A[i] = 1.0;
          for (int j = 0; j < n; j++)
            B[j] = A[j] * 2.0;
        }|}
  in
  match p.Ir.body with
  | [ Ir.Nloop l1; Ir.Nloop l2 ] -> (
      match Fusion.fuse ~outer:[] l1 l2 with
      | Error e -> Alcotest.fail e
      | Ok fused ->
          Alcotest.(check int) "2 comps" 2 (List.length (Ir.comps_in fused.Ir.body));
          check_equiv ~sizes:[ ("n", 9) ] p { p with Ir.body = [ Ir.Nloop fused ] })
  | _ -> Alcotest.fail "two nests"

let test_fuse_illegal_backward () =
  (* second loop reads A[i+1], which the first loop writes later: fusing
     would read the new value too early *)
  let p =
    norm
      {|void f(int n, double A[n + 1], double B[n]) {
          for (int i = 0; i < n; i++)
            A[i + 1] = 1.0 * i;
          for (int j = 0; j < n; j++)
            B[j] = A[j + 1] * 2.0;
        }|}
  in
  (* B[j] needs A[j+1] written at iteration j of loop 1; after fusion
     B[j] reads it in the same iteration, after the write: legal.
     The illegal case is reading ahead: *)
  let q =
    norm
      {|void f(int n, double A[2 * n], double B[n]) {
          for (int i = 0; i < n; i++)
            A[i] = 1.0 * i;
          for (int j = 0; j < n - 1; j++)
            B[j] = A[j + 1] * 2.0;
        }|}
  in
  (match p.Ir.body with
  | [ Ir.Nloop l1; Ir.Nloop l2 ] ->
      (match Fusion.fuse ~outer:[] l1 l2 with
      | Ok fused -> check_equiv ~sizes:[ ("n", 9) ] p { p with Ir.body = [ Ir.Nloop fused ] }
      | Error _ -> ())
  | _ -> Alcotest.fail "two nests");
  match q.Ir.body with
  | [ Ir.Nloop l1; Ir.Nloop l2 ] -> (
      match Fusion.fuse ~outer:[] l1 l2 with
      | Ok _ -> Alcotest.fail "read-ahead fusion must be rejected"
      | Error _ -> ())
  | _ -> Alcotest.fail "two nests (q)"

let test_fuse_range_mismatch () =
  let p =
    norm
      {|void f(int n, double A[n], double B[n]) {
          for (int i = 0; i < n; i++)
            A[i] = 1.0;
          for (int j = 0; j < n - 1; j++)
            B[j] = 2.0;
        }|}
  in
  match p.Ir.body with
  | [ Ir.Nloop l1; Ir.Nloop l2 ] -> (
      match Fusion.fuse ~outer:[] l1 l2 with
      | Ok _ -> Alcotest.fail "range mismatch must be rejected"
      | Error _ -> ())
  | _ -> Alcotest.fail "two nests"

let test_producer_consumer_fusion_cloudsc () =
  (* the CLOUDSC pattern: expansion + fission, then pc-fusion re-fuses *)
  let p =
    lower
      {|void f(int n, double A[n], double B[n], double C[n]) {
          for (int i = 0; i < n; i++) {
            double t = A[i] * 2.0;
            double u = t + 1.0;
            B[i] = u * u;
            C[i] = u - t;
          }
        }|}
  in
  let sizes = [ ("n", 16) ] in
  let normd = Daisy_normalize.Pipeline.normalize ~sizes p in
  let fused, nfusions = Fusion.fuse_producer_consumer ~max_comps:3 normd in
  Alcotest.(check bool) "some fusion happened" true (nfusions > 0);
  check_equiv ~sizes p fused

(* ------------------------------------------------------------------ *)
(* Recipes *)

let test_recipe_apply () =
  let p = norm gemm_src in
  let l = only_nest p in
  let recipe =
    [ Recipe.Tile [ (0, 4); (1, 4); (2, 4) ]; Recipe.Parallelize 0;
      Recipe.Vectorize ]
  in
  match Recipe.apply ~outer:[] l recipe with
  | Error e -> Alcotest.fail e
  | Ok l' ->
      check_equiv ~sizes:[ ("n", 9) ] p (with_nest p l');
      let band, _ = Daisy_dependence.Legality.perfect_band l' in
      Alcotest.(check bool) "outer parallel" true
        (List.hd band).Ir.attrs.Ir.parallel

let test_recipe_strict_failure () =
  let p =
    norm
      {|void f(int n, double A[n]) {
          for (int i = 1; i < n; i++)
            A[i] = A[i - 1] + 1.0;
        }|}
  in
  let l = only_nest p in
  (match Recipe.apply ~outer:[] l [ Recipe.Parallelize 0 ] with
  | Ok _ -> Alcotest.fail "must fail"
  | Error _ -> ());
  let _, applied = Recipe.apply_lenient ~outer:[] l [ Recipe.Parallelize 0 ] in
  Alcotest.(check int) "lenient skips" 0 applied

let test_recipe_mutation_preserves_semantics () =
  (* any recipe the mutator produces either fails to apply or preserves
     semantics *)
  let p = norm gemm_src in
  let l = only_nest p in
  let rng = Rng.of_string "mutation-test" in
  let recipe = ref [ Recipe.Vectorize ] in
  for _ = 1 to 25 do
    recipe := Recipe.mutate rng 3 !recipe;
    match Recipe.apply ~outer:[] l !recipe with
    | Error _ -> ()
    | Ok l' -> check_equiv ~sizes:[ ("n", 6) ] p (with_nest p l')
  done

let test_unroll_materialize () =
  let p = norm gemm_src in
  let l = only_nest p in
  (* materialize an unroll of the whole (perfectly nested) innermost loop:
     apply to the innermost loop of the band *)
  let band, body = Daisy_dependence.Legality.perfect_band l in
  let innermost = List.nth band 2 in
  let inner_unrolled =
    match Daisy_transforms.Unroll.materialize { innermost with Ir.body } ~factor:4 with
    | Ok nodes -> nodes
    | Error e -> Alcotest.fail e
  in
  (* trip 10 with factor 4: main + remainder *)
  Alcotest.(check int) "main + remainder" 2 (List.length inner_unrolled);
  let rebuilt =
    Daisy_normalize.Stride.rebuild_band (Util.take 2 band) inner_unrolled
  in
  check_equiv ~sizes:[ ("n", 10) ] p (with_nest p rebuilt);
  (* even trip: no remainder *)
  (match Daisy_transforms.Unroll.materialize { innermost with Ir.body } ~factor:4 with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let p8 =
    lower
      {|void f(double A[8]) {
          for (int i = 0; i < 8; i++) A[i] = A[i] + 1.0;
        }|}
  in
  (match p8.Ir.body with
  | [ Ir.Nloop l8 ] -> (
      match Daisy_transforms.Unroll.materialize l8 ~factor:4 with
      | Ok nodes ->
          Alcotest.(check int) "no remainder for even trip" 1 (List.length nodes);
          check_equiv ~sizes:[] p8 { p8 with Ir.body = nodes }
      | Error e -> Alcotest.fail e)
  | _ -> Alcotest.fail "one nest")

let test_unroll_materialize_marked () =
  let p =
    norm
      {|void f(int n, double A[n]) {
          for (int i = 0; i < n; i++) A[i] = A[i] * 2.0 + 1.0;
        }|}
  in
  let marked =
    match p.Ir.body with
    | [ Ir.Nloop l ] ->
        { p with Ir.body = [ Ir.Nloop { l with Ir.attrs = { l.Ir.attrs with Ir.unroll = 3 } } ] }
    | _ -> Alcotest.fail "one nest"
  in
  let materialized = Daisy_transforms.Unroll.materialize_marked marked in
  Alcotest.(check bool) "more comps after replication" true
    (List.length (Ir.comps_in materialized.Ir.body)
    > List.length (Ir.comps_in p.Ir.body));
  check_equiv ~sizes:[ ("n", 11) ] p materialized

let suite =
  [
    ("interchange gemm", `Quick, test_interchange_gemm);
    ("unroll materialization", `Quick, test_unroll_materialize);
    ("unroll marked loops", `Quick, test_unroll_materialize_marked);
    ("interchange illegal", `Quick, test_interchange_illegal);
    ("interchange non-permutation", `Quick, test_interchange_bad_perm);
    ("tile gemm 3d", `Quick, test_tile_gemm);
    ("tile partial", `Quick, test_tile_partial);
    ("tile illegal band", `Quick, test_tile_illegal_band);
    ("parallelize + atomic fallback", `Quick, test_parallelize);
    ("vectorize legal", `Quick, test_vectorize_legal);
    ("vectorize recurrence illegal", `Quick, test_vectorize_illegal);
    ("fuse legal pair", `Quick, test_fuse_legal);
    ("fuse read-ahead illegal", `Quick, test_fuse_illegal_backward);
    ("fuse range mismatch", `Quick, test_fuse_range_mismatch);
    ("producer-consumer fusion", `Quick, test_producer_consumer_fusion_cloudsc);
    ("recipe apply", `Quick, test_recipe_apply);
    ("recipe strict failure", `Quick, test_recipe_strict_failure);
    ("recipe mutation semantics", `Slow, test_recipe_mutation_preserves_semantics);
  ]
