(** Tests for the lir lowering and the lifting pass (paper §3): the
    low-level path (AST -> lir -> lift) must reproduce the semantics and
    structure of the direct path (AST -> loopir) on every benchmark. *)

module L = Daisy_lir.Ir
module From_ast = Daisy_lir.From_ast
module Cfg = Daisy_lir.Cfg
module Lift = Daisy_lift.Lift
module Ir = Daisy_loopir.Ir
module Interp = Daisy_interp.Interp
module Pb = Daisy_benchmarks.Polybench

let lower_direct = Daisy_lang.Lower.program_of_string ~source:"test.c"
let to_lir = From_ast.func_of_string ~source:"test.c"

let gemm_src =
  {|void gemm(int ni, int nj, int nk, double alpha, double beta,
           double C[ni][nj], double A[ni][nk], double B[nk][nj])
{
  for (int i = 0; i < ni; i++) {
    for (int j = 0; j < nj; j++)
      C[i][j] *= beta;
    for (int k = 0; k < nk; k++)
      for (int j = 0; j < nj; j++)
        C[i][j] += alpha * A[i][k] * B[k][j];
  }
}|}

(* ------------------------------------------------------------------ *)
(* lir structure *)

let test_lir_gemm_blocks () =
  let f = to_lir gemm_src in
  (* 3 loops x 4 blocks + entry: at least 13 blocks *)
  Alcotest.(check bool) "many basic blocks" true (List.length f.L.blocks >= 13);
  (* stores exist *)
  let stores =
    List.concat_map
      (fun (b : L.block) ->
        List.filter (function L.Store _ -> true | _ -> false) b.L.insts)
      f.L.blocks
  in
  Alcotest.(check int) "two stores" 2 (List.length stores)

let test_cfg_dominators () =
  let f = to_lir gemm_src in
  let cfg = Cfg.build f in
  (* entry dominates everything *)
  for i = 0 to Cfg.n_blocks cfg - 1 do
    Alcotest.(check bool) "entry dominates" true (Cfg.dominates cfg 0 i)
  done

let test_cfg_natural_loops () =
  let f = to_lir gemm_src in
  let cfg = Cfg.build f in
  let loops = Cfg.natural_loops cfg in
  Alcotest.(check int) "four natural loops" 4 (List.length loops);
  List.iter
    (fun l ->
      Alcotest.(check bool) "loop region is SESE" true (Cfg.loop_is_sese cfg l))
    loops

let test_lir_printer () =
  let f = to_lir gemm_src in
  let text = L.func_to_string f in
  Alcotest.(check bool) "mentions getelementptr" true
    (String.length text > 100
    && (try ignore (Str.search_forward (Str.regexp_string "getelementptr") text 0); true
        with Not_found -> false))

(* ------------------------------------------------------------------ *)
(* Lifting *)

let roundtrip ?(sizes = []) src =
  let direct = lower_direct src in
  let lifted = Lift.lift (to_lir src) in
  Alcotest.(check bool) "semantics preserved" true
    (Interp.equivalent direct lifted ~sizes ());
  (direct, lifted)

let test_lift_gemm () =
  let direct, lifted = roundtrip ~sizes:[ ("ni", 6); ("nj", 7); ("nk", 8) ] gemm_src in
  Alcotest.(check int) "same loop count"
    (List.length (Ir.loops_in direct.Ir.body))
    (List.length (Ir.loops_in lifted.Ir.body));
  Alcotest.(check int) "same depth" (Ir.depth direct.Ir.body)
    (Ir.depth lifted.Ir.body)

let test_lift_triangular () =
  ignore
    (roundtrip ~sizes:[ ("n", 9) ]
       {|void f(int n, double A[n][n]) {
          for (int i = 0; i < n; i++)
            for (int j = 0; j <= i; j++)
              A[i][j] = A[i][j] * 2.0;
        }|})

let test_lift_guard () =
  ignore
    (roundtrip ~sizes:[ ("n", 9) ]
       {|void f(int n, double A[n], double x) {
          for (int i = 0; i < n; i++) {
            if (A[i] > x) A[i] = x;
            else A[i] = A[i] * 0.5;
          }
        }|})

let test_lift_scalars () =
  ignore
    (roundtrip ~sizes:[ ("n", 9) ]
       {|void f(int n, double A[n], double B[n]) {
          for (int i = 0; i < n; i++) {
            double t = A[i] * 2.0;
            double u = t + 1.0;
            B[i] = u * t;
          }
        }|})

let test_lift_scalar_recurrence () =
  (* running sum through a scalar: mutable register across iterations *)
  ignore
    (roundtrip ~sizes:[ ("n", 9) ]
       {|void f(int n, double A[n], double B[n]) {
          double acc = 0.0;
          for (int i = 0; i < n; i++) {
            acc = acc + A[i];
            B[i] = acc;
          }
        }|})

let test_lift_downward () =
  ignore
    (roundtrip ~sizes:[ ("n", 9) ]
       {|void f(int n, double A[n]) {
          for (int i = n - 1; i >= 0; i--)
            A[i] = A[i] + 1.0;
        }|})

let test_lift_stale_read_hazard () =
  (* t captures A[i] before it is overwritten; the lifted program must
     still read the OLD value *)
  ignore
    (roundtrip ~sizes:[ ("n", 7) ]
       {|void f(int n, double A[n], double B[n]) {
          for (int i = 0; i < n; i++) {
            double t = A[i];
            A[i] = 0.0;
            B[i] = t;
          }
        }|})

let test_lift_all_polybench () =
  List.iter
    (fun b ->
      let direct = Pb.program b in
      match Lift.lift_result (From_ast.lower (Daisy_lang.Sema.check
        (Daisy_lang.Parser.parse_kernel_string ~source:(b.Pb.name ^ ".c") b.Pb.source))) with
      | Error e -> Alcotest.failf "%s failed to lift: %s" b.Pb.name e
      | Ok lifted ->
          Alcotest.(check bool)
            (b.Pb.name ^ " semantics preserved")
            true
            (Interp.equivalent direct lifted ~sizes:b.Pb.test_sizes ());
          Alcotest.(check int)
            (b.Pb.name ^ " same loop count")
            (List.length (Ir.loops_in direct.Ir.body))
            (List.length (Ir.loops_in lifted.Ir.body)))
    Pb.all

let test_lir_parser_roundtrip () =
  (* print -> parse -> print is a fixpoint, and the reparsed function lifts
     to the same program *)
  List.iter
    (fun (b : Pb.benchmark) ->
      let f =
        From_ast.lower
          (Daisy_lang.Sema.check
             (Daisy_lang.Parser.parse_kernel_string ~source:(b.Pb.name ^ ".c")
                b.Pb.source))
      in
      let f' = Daisy_lir.Parse.reparse f in
      Alcotest.(check string)
        (b.Pb.name ^ " printer/parser fixpoint")
        (L.func_to_string f) (L.func_to_string f');
      match (Lift.lift_result f, Lift.lift_result f') with
      | Ok p1, Ok p2 ->
          Alcotest.(check bool)
            (b.Pb.name ^ " reparsed lifts identically")
            true
            (Ir.equal_structure p1.Ir.body p2.Ir.body)
      | _ -> Alcotest.failf "%s failed to lift after reparse" b.Pb.name)
    [ Pb.gemm; Pb.find "jacobi-2d"; Pb.find "correlation" ]

let test_lift_structural_match_after_normalization () =
  (* after normalization, direct and lifted gemm converge to the same
     canonical structure (scalar names aside, gemm has none) *)
  let sizes = Pb.gemm.Pb.sim_sizes in
  let direct = Daisy_normalize.Pipeline.normalize ~sizes (lower_direct gemm_src) in
  let lifted =
    Daisy_normalize.Pipeline.normalize ~sizes (Lift.lift (to_lir gemm_src))
  in
  Alcotest.(check bool) "same canonical structure" true
    (Ir.equal_structure direct.Ir.body lifted.Ir.body)

let suite =
  [
    ("lir gemm blocks", `Quick, test_lir_gemm_blocks);
    ("cfg dominators", `Quick, test_cfg_dominators);
    ("cfg natural loops + SESE", `Quick, test_cfg_natural_loops);
    ("lir printer", `Quick, test_lir_printer);
    ("lift gemm", `Quick, test_lift_gemm);
    ("lift triangular", `Quick, test_lift_triangular);
    ("lift if/else guards", `Quick, test_lift_guard);
    ("lift scalar temporaries", `Quick, test_lift_scalars);
    ("lift scalar recurrence", `Quick, test_lift_scalar_recurrence);
    ("lift downward loop", `Quick, test_lift_downward);
    ("lift stale-read hazard", `Quick, test_lift_stale_read_hazard);
    ("lift all 15 polybench", `Slow, test_lift_all_polybench);
    ("lir printer/parser roundtrip", `Quick, test_lir_parser_roundtrip);
    ("lift matches after normalization", `Quick, test_lift_structural_match_after_normalization);
  ]
