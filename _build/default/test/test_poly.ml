(** Tests for the poly library: expressions, affine forms, Fourier–Motzkin. *)

open Daisy_poly
module Util = Daisy_support.Util

let env_of = List.fold_left (fun m (k, v) -> Util.SMap.add k v m) Util.SMap.empty

(* ------------------------------------------------------------------ *)
(* Expr *)

let test_expr_fold () =
  let e = Expr.(add (const 2) (const 3)) in
  Alcotest.(check int) "2+3" 5 (Expr.eval Util.SMap.empty e);
  let e = Expr.(mul (var "n") (const 0)) in
  Alcotest.(check bool) "n*0 folds to 0" true (Expr.equal e Expr.zero);
  let e = Expr.(sub (var "i") (var "i")) in
  Alcotest.(check bool) "i-i folds to 0" true (Expr.equal e Expr.zero)

let test_expr_eval () =
  let env = env_of [ ("i", 7); ("n", 100) ] in
  let e = Expr.(add (mul (const 3) (var "i")) (sub (var "n") (const 1))) in
  Alcotest.(check int) "3i + n - 1" 120 (Expr.eval env e);
  (* floor semantics for negative operands *)
  Alcotest.(check int) "-7 fdiv 2" (-4)
    (Expr.eval Util.SMap.empty Expr.(div (const (-7)) (const 2)));
  Alcotest.(check int) "-7 fmod 2" 1
    (Expr.eval Util.SMap.empty Expr.(md (const (-7)) (const 2)))

let test_expr_subst () =
  let e = Expr.(add (var "i") (mul (var "j") (const 2))) in
  let e' = Expr.subst1 "i" (Expr.const 5) e in
  Alcotest.(check int) "subst i=5, j=3" 11 (Expr.eval (env_of [ ("j", 3) ]) e')

let test_expr_free_vars () =
  let e = Expr.(min_ (add (var "i") (var "n")) (var "m")) in
  let fv = Expr.free_vars e in
  Alcotest.(check (list string)) "free vars" [ "i"; "m"; "n" ]
    (Util.SSet.elements fv)

let test_expr_pp () =
  let e = Expr.(Mul (Add (Var "i", Const 1), Var "n")) in
  Alcotest.(check string) "parenthesization" "(i + 1) * n" (Expr.to_string e)

(* ------------------------------------------------------------------ *)
(* Affine *)

let test_affine_of_expr () =
  let e = Expr.(add (mul (const 3) (var "i")) (sub (var "j") (const 4))) in
  match Affine.of_expr e with
  | None -> Alcotest.fail "should be affine"
  | Some a ->
      Alcotest.(check int) "coeff i" 3 (Affine.coeff "i" a);
      Alcotest.(check int) "coeff j" 1 (Affine.coeff "j" a);
      Alcotest.(check int) "const" (-4) a.Affine.const

let test_affine_nonaffine () =
  let e = Expr.(mul (var "i") (var "j")) in
  Alcotest.(check bool) "i*j not affine" true (Affine.of_expr e = None);
  let e = Expr.(md (var "i") (const 2)) in
  Alcotest.(check bool) "i mod 2 not affine" true (Affine.of_expr e = None)

let test_affine_roundtrip () =
  let e = Expr.(add (mul (const 2) (var "x")) (const 7)) in
  match Affine.of_expr e with
  | None -> Alcotest.fail "affine"
  | Some a ->
      let env = env_of [ ("x", 9) ] in
      Alcotest.(check int) "eval matches" (Expr.eval env e)
        (Expr.eval env (Affine.to_expr a))

let test_affine_subst () =
  (* substitute j := i + 1 into 2j + 3 -> 2i + 5 *)
  let a = Affine.add (Affine.var ~coeff:2 "j") (Affine.const 3) in
  let repl = Affine.add (Affine.var "i") (Affine.const 1) in
  let a' = Affine.subst "j" repl a in
  Alcotest.(check int) "coeff i" 2 (Affine.coeff "i" a');
  Alcotest.(check int) "const" 5 a'.Affine.const

(* ------------------------------------------------------------------ *)
(* System: emptiness *)

let test_system_simple_empty () =
  (* x >= 5 and x <= 3 *)
  let x = Affine.var "x" in
  let sys =
    System.empty_sys
    |> System.ge x (Affine.const 5)
    |> System.le x (Affine.const 3)
  in
  Alcotest.(check bool) "empty" true (System.is_empty sys)

let test_system_simple_nonempty () =
  let x = Affine.var "x" in
  let sys =
    System.empty_sys
    |> System.ge x (Affine.const 0)
    |> System.le x (Affine.const 10)
  in
  Alcotest.(check bool) "non-empty" false (System.is_empty sys)

let test_system_eq_gcd () =
  (* 2x = 1 has no integer solution *)
  let sys = System.eq (Affine.var ~coeff:2 "x") (Affine.const 1) System.empty_sys in
  Alcotest.(check bool) "2x=1 empty over Z" true (System.is_empty sys)

let test_system_two_vars () =
  (* x + y = 10, x >= 6, y >= 6 -> empty *)
  let x = Affine.var "x" and y = Affine.var "y" in
  let sys =
    System.empty_sys
    |> System.eq (Affine.add x y) (Affine.const 10)
    |> System.ge x (Affine.const 6)
    |> System.ge y (Affine.const 6)
  in
  Alcotest.(check bool) "empty" true (System.is_empty sys);
  let sys2 =
    System.empty_sys
    |> System.eq (Affine.add x y) (Affine.const 10)
    |> System.ge x (Affine.const 4)
    |> System.ge y (Affine.const 4)
  in
  Alcotest.(check bool) "non-empty" false (System.is_empty sys2)

let test_system_bounds () =
  (* 0 <= x <= 9 and x = y, 3 <= y -> bounds of x are [3, 9] *)
  let x = Affine.var "x" and y = Affine.var "y" in
  let sys =
    System.empty_sys
    |> System.ge x (Affine.const 0)
    |> System.le x (Affine.const 9)
    |> System.eq x y
    |> System.ge y (Affine.const 3)
  in
  let lo, hi = System.const_bounds "x" sys in
  Alcotest.(check (option int)) "lower" (Some 3) lo;
  Alcotest.(check (option int)) "upper" (Some 9) hi

let test_system_rational_tightening () =
  (* 2x >= 1 and 2x <= 3 has rational solutions but over Z tightens to
     x >= 1 and x <= 1 -> non-empty (x = 1) *)
  let sys =
    System.empty_sys
    |> System.add_ineq (Affine.add (Affine.var ~coeff:2 "x") (Affine.const (-1)))
    |> System.add_ineq (Affine.add (Affine.var ~coeff:(-2) "x") (Affine.const 3))
  in
  Alcotest.(check bool) "x=1 exists" false (System.is_empty sys);
  (* 4x >= 1 and 4x <= 3 -> no integer x *)
  let sys2 =
    System.empty_sys
    |> System.add_ineq (Affine.add (Affine.var ~coeff:4 "x") (Affine.const (-1)))
    |> System.add_ineq (Affine.add (Affine.var ~coeff:(-4) "x") (Affine.const 3))
  in
  Alcotest.(check bool) "1/4 <= x <= 3/4 empty over Z" true (System.is_empty sys2)

(* ------------------------------------------------------------------ *)
(* Property-based: FM emptiness vs brute force on a box *)

let qcheck_fm_vs_brute =
  let gen_affine =
    QCheck.Gen.(
      let* c = int_range (-8) 8 in
      let* ci = int_range (-3) 3 in
      let* cj = int_range (-3) 3 in
      return
        (Affine.add
           (Affine.add (Affine.var ~coeff:ci "i") (Affine.var ~coeff:cj "j"))
           (Affine.const c)))
  in
  let gen_sys =
    QCheck.Gen.(
      let* n_ineq = int_range 1 4 in
      let* ineqs = list_size (return n_ineq) gen_affine in
      let* with_eq = bool in
      let* eq = gen_affine in
      (* bound the box so brute force and FM agree on the domain *)
      let box_constraints v =
        [ Affine.add (Affine.var v) (Affine.const 6) (* v >= -6 *);
          Affine.add (Affine.var ~coeff:(-1) v) (Affine.const 6) (* v <= 6 *) ]
      in
      let sys =
        {
          System.eqs = (if with_eq then [ eq ] else []);
          ineqs = ineqs @ box_constraints "i" @ box_constraints "j";
        }
      in
      return sys)
  in
  QCheck.Test.make ~count:300
    ~name:"FM emptiness conservative vs brute force on box"
    (QCheck.make gen_sys) (fun sys ->
      let brute = System.has_point_in_box ~box:(-6, 6) sys in
      let fm_empty = System.is_empty sys in
      (* soundness: if brute force finds a point, FM must not claim empty *)
      if brute then not fm_empty else true)

let qcheck_fm_exact_rational =
  (* for unit-coefficient systems FM + gcd is exact: is_empty must agree
     with brute force in both directions *)
  let gen_affine =
    QCheck.Gen.(
      let* c = int_range (-6) 6 in
      let* ci = int_range (-1) 1 in
      let* cj = int_range (-1) 1 in
      return
        (Affine.add
           (Affine.add (Affine.var ~coeff:ci "i") (Affine.var ~coeff:cj "j"))
           (Affine.const c)))
  in
  let gen_sys =
    QCheck.Gen.(
      let* n_ineq = int_range 1 4 in
      let* ineqs = list_size (return n_ineq) gen_affine in
      let box v =
        [ Affine.add (Affine.var v) (Affine.const 5);
          Affine.add (Affine.var ~coeff:(-1) v) (Affine.const 5) ]
      in
      return { System.eqs = []; ineqs = ineqs @ box "i" @ box "j" })
  in
  QCheck.Test.make ~count:300 ~name:"FM exact for unit coefficients"
    (QCheck.make gen_sys) (fun sys ->
      let brute = System.has_point_in_box ~box:(-5, 5) sys in
      let fm_empty = System.is_empty sys in
      brute = not fm_empty)

let test_system_symbolic_params () =
  (* i in [0, n-1], i' in [0, n-1], i = i' + n: no solution when also
     i <= n - 1 and i' >= 0 force i - i' <= n - 1 < n *)
  let i = Affine.var "i" and i' = Affine.var "i2" and nv = Affine.var "n" in
  let sys =
    System.empty_sys
    |> System.ge i (Affine.const 0)
    |> System.le i (Affine.add nv (Affine.const (-1)))
    |> System.ge i' (Affine.const 0)
    |> System.le i' (Affine.add nv (Affine.const (-1)))
    |> System.eq i (Affine.add i' nv)
  in
  Alcotest.(check bool) "cross-extent alias impossible" true
    (System.is_empty sys);
  (* but i = i' + 1 is feasible for n >= 2 *)
  let sys2 =
    System.empty_sys
    |> System.ge i (Affine.const 0)
    |> System.le i (Affine.add nv (Affine.const (-1)))
    |> System.ge i' (Affine.const 0)
    |> System.le i' (Affine.add nv (Affine.const (-1)))
    |> System.eq i (Affine.add i' (Affine.const 1))
  in
  Alcotest.(check bool) "distance-1 alias feasible" false
    (System.is_empty sys2)

let test_system_unbounded () =
  let x = Affine.var "x" in
  let sys = System.ge x (Affine.const 3) System.empty_sys in
  let lo, hi = System.const_bounds "x" sys in
  Alcotest.(check (option int)) "lower" (Some 3) lo;
  Alcotest.(check (option int)) "upper unbounded" None hi

let qcheck_fastpath_sound =
  (* whenever the ZIV/SIV/GCD fast path claims two subscripts never alias,
     the exact FM system over a shared domain must be empty *)
  let module F = Daisy_dependence.Fastpath in
  let gen_pair =
    QCheck.Gen.(
      let* a = int_range (-3) 3 in
      let* c1 = int_range (-6) 6 in
      let* c2 = int_range (-6) 6 in
      let* a2 = oneofl [ a; a + 1; 2 * a ] in
      return
        ( Affine.add (Affine.var ~coeff:a "i") (Affine.const c1),
          Affine.add (Affine.var ~coeff:a2 "i") (Affine.const c2) ))
  in
  QCheck.Test.make ~count:300 ~name:"fastpath independence implies FM empty"
    (QCheck.make gen_pair) (fun (s1, s2) ->
      match F.subscript_pair ~extent:8 s1 s2 with
      | `Independent ->
          (* i and i' both in [0, 7], s1(i) = s2(i') *)
          let rename suffix a = Affine.rename (fun v -> v ^ suffix) a in
          let dom v sys =
            sys
            |> System.ge (Affine.var v) (Affine.const 0)
            |> System.le (Affine.var v) (Affine.const 7)
          in
          let sys =
            System.empty_sys |> dom "i_s" |> dom "i_d"
            |> System.eq (rename "_s" s1) (rename "_d" s2)
          in
          System.is_empty sys
      | _ -> true)

let qcheck_expr_constructors =
  (* smart constructors (with folding) agree with the naive AST under
     evaluation *)
  let gen_expr =
    QCheck.Gen.(
      sized @@ fix (fun self n ->
          if n <= 0 then
            oneof [ map Expr.const (int_range (-9) 9);
                    oneofl Expr.[ var "i"; var "j" ] ]
          else
            let sub = self (n / 2) in
            oneof
              [ (let* a = sub in let* b = sub in return (Expr.add a b));
                (let* a = sub in let* b = sub in return (Expr.sub a b));
                (let* a = sub in let* b = sub in return (Expr.mul a b));
                (let* a = sub in let* b = sub in return (Expr.min_ a b));
                (let* a = sub in let* b = sub in return (Expr.max_ a b));
                map Expr.neg sub ]))
  in
  QCheck.Test.make ~count:200 ~name:"smart constructors sound under subst+eval"
    (QCheck.make ~print:Expr.to_string gen_expr)
    (fun e ->
      let env = env_of [ ("i", 5); ("j", -3) ] in
      (* substitute then evaluate = evaluate the substituted form *)
      let e' = Expr.subst (env_of [] |> fun _ ->
        Util.SMap.add "i" (Expr.const 5) (Util.SMap.singleton "j" (Expr.const (-3)))) e in
      Expr.eval env e = Expr.eval Util.SMap.empty e')

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_expr_constructors;
    QCheck_alcotest.to_alcotest qcheck_fastpath_sound;
    ("system symbolic params", `Quick, test_system_symbolic_params);
    ("system unbounded bounds", `Quick, test_system_unbounded);
    ("expr constant folding", `Quick, test_expr_fold);
    ("expr evaluation", `Quick, test_expr_eval);
    ("expr substitution", `Quick, test_expr_subst);
    ("expr free variables", `Quick, test_expr_free_vars);
    ("expr printing", `Quick, test_expr_pp);
    ("affine of_expr", `Quick, test_affine_of_expr);
    ("affine rejects non-affine", `Quick, test_affine_nonaffine);
    ("affine roundtrip", `Quick, test_affine_roundtrip);
    ("affine substitution", `Quick, test_affine_subst);
    ("system 1-var empty", `Quick, test_system_simple_empty);
    ("system 1-var non-empty", `Quick, test_system_simple_nonempty);
    ("system gcd test", `Quick, test_system_eq_gcd);
    ("system 2-var", `Quick, test_system_two_vars);
    ("system bounds", `Quick, test_system_bounds);
    ("system integer tightening", `Quick, test_system_rational_tightening);
    QCheck_alcotest.to_alcotest qcheck_fm_vs_brute;
    QCheck_alcotest.to_alcotest qcheck_fm_exact_rational;
  ]
