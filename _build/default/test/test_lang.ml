(** Tests for the DSL frontend: lexer, parser, sema, lowering. *)

open Daisy_lang
module Ir = Daisy_loopir.Ir

let parse_ok src = Parser.parse_kernel_string ~source:"test.c" src

let expect_diag f =
  match f () with
  | exception Daisy_support.Diag.Error _ -> ()
  | _ -> Alcotest.fail "expected a diagnostic"

(* ------------------------------------------------------------------ *)

let gemm_src =
  {|
void gemm(int ni, int nj, int nk, double alpha, double beta,
          double C[ni][nj], double A[ni][nk], double B[nk][nj])
{
  for (int i = 0; i < ni; i++) {
    for (int j = 0; j < nj; j++)
      C[i][j] *= beta;
    for (int k = 0; k < nk; k++)
      for (int j = 0; j < nj; j++)
        C[i][j] += alpha * A[i][k] * B[k][j];
  }
}
|}

let test_parse_gemm () =
  let k = parse_ok gemm_src in
  Alcotest.(check string) "name" "gemm" k.Ast.name;
  Alcotest.(check int) "params" 8 (List.length k.Ast.params)

let test_roundtrip_print_parse () =
  let k = parse_ok gemm_src in
  let printed = Ast.kernel_to_string k in
  let k2 = parse_ok printed in
  let printed2 = Ast.kernel_to_string k2 in
  Alcotest.(check string) "print . parse . print stable" printed printed2

let test_lexer_comments () =
  let src =
    "void f(int n, double A[n]) { // line comment\n\
     /* block\n comment */ for (int i = 0; i < n; i++) A[i] = 0.0; }"
  in
  let k = parse_ok src in
  Alcotest.(check string) "name" "f" k.Ast.name

let test_lexer_floats () =
  let src = "void f(double A[10]) { A[0] = 1.5e-3 + 2. + 0.25; }" in
  ignore (parse_ok src)

let test_parse_errors () =
  expect_diag (fun () -> parse_ok "void f( { }");
  expect_diag (fun () -> parse_ok "void f() { x = ; }");
  expect_diag (fun () -> parse_ok "void f() { for (int i = 0; j < 10; i++) {} }");
  expect_diag (fun () -> parse_ok "void f() { for (int i = 0; i < 10; i += 0) {} }")

let test_sema_undeclared () =
  expect_diag (fun () -> Sema.check (parse_ok "void f() { x = 1.0; }"))

let test_sema_rank_mismatch () =
  expect_diag (fun () ->
      Sema.check (parse_ok "void f(double A[4][4]) { A[1] = 0.0; }"))

let test_sema_scalar_subscript () =
  expect_diag (fun () ->
      Sema.check (parse_ok "void f(double x) { x[0] = 1.0; }"))

let test_sema_assign_to_index () =
  expect_diag (fun () ->
      Sema.check
        (parse_ok "void f(double A[8]) { for (int i = 0; i < 8; i++) i = 3; }"))

let test_sema_float_subscript () =
  expect_diag (fun () ->
      Sema.check (parse_ok "void f(double A[8], double x) { A[x] = 1.0; }"))

let test_sema_ok () =
  let env = Sema.check (parse_ok gemm_src) in
  Alcotest.(check (list string)) "size params" [ "ni"; "nj"; "nk" ]
    (Sema.size_params env);
  Alcotest.(check (list string)) "scalar params" [ "alpha"; "beta" ]
    (Sema.scalar_params env);
  Alcotest.(check int) "arrays" 3 (List.length (Sema.array_params env))

(* ------------------------------------------------------------------ *)
(* Lowering *)

let test_lower_gemm_structure () =
  let p = Lower.program_of_string gemm_src in
  Alcotest.(check int) "top-level nodes" 1 (List.length p.Ir.body);
  Alcotest.(check int) "loop depth" 3 (Ir.depth p.Ir.body);
  Alcotest.(check int) "computations" 2 (List.length (Ir.comps_in p.Ir.body))

let test_lower_compound_assign () =
  let p =
    Lower.program_of_string
      "void f(int n, double A[n]) { for (int i = 0; i < n; i++) A[i] += 2.0; }"
  in
  match Ir.comps_in p.Ir.body with
  | [ c ] -> (
      match c.Ir.rhs with
      | Ir.Vbin (Ir.Vadd, Ir.Vread a, Ir.Vfloat 2.0) ->
          Alcotest.(check string) "reads own cell" "A" a.Ir.array
      | _ -> Alcotest.fail "expected A[i] + 2.0")
  | _ -> Alcotest.fail "expected one computation"

let test_lower_guard () =
  let p =
    Lower.program_of_string
      {|void f(int n, double A[n], double x) {
          for (int i = 0; i < n; i++) {
            if (x > 0.5) A[i] = 1.0;
            else A[i] = 2.0;
          }
        }|}
  in
  let comps = Ir.comps_in p.Ir.body in
  Alcotest.(check int) "two guarded comps" 2 (List.length comps);
  List.iter
    (fun (c : Ir.comp) ->
      Alcotest.(check bool) "has guard" true (c.Ir.guard <> None))
    comps

let test_lower_downward_loop () =
  let p =
    Lower.program_of_string
      "void f(int n, double A[n]) { for (int i = n - 1; i >= 0; i--) A[i] = 0.0; }"
  in
  match p.Ir.body with
  | [ Ir.Nloop l ] ->
      Alcotest.(check int) "step" (-1) l.Ir.step;
      Alcotest.(check string) "hi" "0" (Daisy_poly.Expr.to_string l.Ir.hi)
  | _ -> Alcotest.fail "expected one loop"

let test_lower_local_array () =
  let p =
    Lower.program_of_string
      {|void f(int n, double A[n]) {
          double tmp[n];
          for (int i = 0; i < n; i++) tmp[i] = A[i];
          for (int i = 0; i < n; i++) A[i] = tmp[i] * 2.0;
        }|}
  in
  let locals =
    List.filter (fun (a : Ir.array_decl) -> a.Ir.storage = Ir.Slocal) p.Ir.arrays
  in
  Alcotest.(check int) "one local array" 1 (List.length locals)

let test_lower_ternary () =
  let p =
    Lower.program_of_string
      "void f(int n, double A[n]) { for (int i = 0; i < n; i++) A[i] = A[i] > 0.0 ? A[i] : 0.0; }"
  in
  match Ir.comps_in p.Ir.body with
  | [ { Ir.rhs = Ir.Vselect _; _ } ] -> ()
  | _ -> Alcotest.fail "expected a select"

let test_lower_triangular () =
  let p =
    Lower.program_of_string
      {|void f(int n, double A[n][n]) {
          for (int i = 0; i < n; i++)
            for (int j = 0; j <= i; j++)
              A[i][j] = 0.0;
        }|}
  in
  let loops = Ir.loops_in p.Ir.body in
  match loops with
  | [ _; inner ] ->
      Alcotest.(check string) "triangular bound" "i"
        (Daisy_poly.Expr.to_string inner.Ir.hi)
  | _ -> Alcotest.fail "expected two loops"

(* ------------------------------------------------------------------ *)
(* Interpreter cross-check on lowered code *)

let test_interp_gemm_matches_manual () =
  let p = Lower.program_of_string gemm_src in
  let sizes = [ ("ni", 5); ("nj", 4); ("nk", 3) ] in
  let scalars = [ ("alpha", 1.5); ("beta", 0.5) ] in
  let st = Daisy_interp.Interp.run_fresh p ~sizes ~scalars () in
  (* recompute manually from the same deterministic init *)
  let ni = 5 and nj = 4 and nk = 3 in
  let a = Array.init (ni * nk) (Daisy_interp.Interp.default_init "A") in
  let b = Array.init (nk * nj) (Daisy_interp.Interp.default_init "B") in
  let c = Array.init (ni * nj) (Daisy_interp.Interp.default_init "C") in
  for i = 0 to ni - 1 do
    for j = 0 to nj - 1 do
      c.((i * nj) + j) <- c.((i * nj) + j) *. 0.5
    done;
    for k = 0 to nk - 1 do
      for j = 0 to nj - 1 do
        c.((i * nj) + j) <-
          c.((i * nj) + j) +. (1.5 *. a.((i * nk) + k) *. b.((k * nj) + j))
      done
    done
  done;
  let got = (Hashtbl.find st.Daisy_interp.Interp.arrays "C").Daisy_interp.Interp.data in
  Array.iteri
    (fun i expected ->
      if Float.abs (got.(i) -. expected) > 1e-12 then
        Alcotest.failf "C[%d]: got %g, expected %g" i got.(i) expected)
    c

let test_precedence () =
  let p =
    Lower.program_of_string
      "void f(double A[4]) { A[0] = 1.0 + 2.0 * 3.0 - 4.0 / 2.0; }"
  in
  let st = Daisy_interp.Interp.run_fresh p ~sizes:[] () in
  let v = (Hashtbl.find st.Daisy_interp.Interp.arrays "A").Daisy_interp.Interp.data.(0) in
  Alcotest.(check (float 1e-12)) "1 + 6 - 2" 5.0 v

let test_nested_ternary () =
  let p =
    Lower.program_of_string
      {|void f(double A[4], double x) {
          A[0] = x > 2.0 ? 10.0 : x > 1.0 ? 20.0 : 30.0;
        }|}
  in
  let run x =
    let st =
      Daisy_interp.Interp.run_fresh p ~sizes:[] ~scalars:[ ("x", x) ] ()
    in
    (Hashtbl.find st.Daisy_interp.Interp.arrays "A").Daisy_interp.Interp.data.(0)
  in
  Alcotest.(check (float 0.0)) "x=3" 10.0 (run 3.0);
  Alcotest.(check (float 0.0)) "x=1.5" 20.0 (run 1.5);
  Alcotest.(check (float 0.0)) "x=0.5" 30.0 (run 0.5)

let test_logical_ops_in_conditions () =
  let p =
    Lower.program_of_string
      {|void f(double A[4], double x, double y) {
          if (x > 1.0 && (y > 1.0 || !(x > 2.0)))
            A[0] = 1.0;
          else
            A[0] = 2.0;
        }|}
  in
  let run x y =
    let st =
      Daisy_interp.Interp.run_fresh p ~sizes:[]
        ~scalars:[ ("x", x); ("y", y) ] ()
    in
    (Hashtbl.find st.Daisy_interp.Interp.arrays "A").Daisy_interp.Interp.data.(0)
  in
  Alcotest.(check (float 0.0)) "both true" 1.0 (run 1.5 2.0);
  Alcotest.(check (float 0.0)) "not-x>2 saves it" 1.0 (run 1.5 0.0);
  Alcotest.(check (float 0.0)) "x too small" 2.0 (run 0.5 2.0)

let suite =
  [
    ("expression precedence", `Quick, test_precedence);
    ("nested ternary", `Quick, test_nested_ternary);
    ("logical conditions", `Quick, test_logical_ops_in_conditions);
    ("parse gemm", `Quick, test_parse_gemm);
    ("print-parse roundtrip", `Quick, test_roundtrip_print_parse);
    ("lexer comments", `Quick, test_lexer_comments);
    ("lexer floats", `Quick, test_lexer_floats);
    ("parse errors", `Quick, test_parse_errors);
    ("sema undeclared", `Quick, test_sema_undeclared);
    ("sema rank mismatch", `Quick, test_sema_rank_mismatch);
    ("sema scalar subscript", `Quick, test_sema_scalar_subscript);
    ("sema assign to index", `Quick, test_sema_assign_to_index);
    ("sema float subscript", `Quick, test_sema_float_subscript);
    ("sema gemm ok", `Quick, test_sema_ok);
    ("lower gemm structure", `Quick, test_lower_gemm_structure);
    ("lower compound assignment", `Quick, test_lower_compound_assign);
    ("lower if/else guards", `Quick, test_lower_guard);
    ("lower downward loop", `Quick, test_lower_downward_loop);
    ("lower local array", `Quick, test_lower_local_array);
    ("lower ternary", `Quick, test_lower_ternary);
    ("lower triangular bounds", `Quick, test_lower_triangular);
    ("interp gemm vs manual", `Quick, test_interp_gemm_matches_manual);
  ]
