(** Tests for the arraylang substrate and the framework lowerings: every
    NPBench benchmark lowers under every policy, the policies agree with
    each other, and (clamp semantics aside) with the C implementations. *)

module Ir = Daisy_loopir.Ir
module Al = Daisy_arraylang.Alang
module Lower = Daisy_arraylang.Lower
module Np = Daisy_benchmarks.Npbench
module Pb = Daisy_benchmarks.Polybench
module Fw = Daisy_benchmarks.Frameworks
module Interp = Daisy_interp.Interp
module Expr = Daisy_poly.Expr

(* primary output array per benchmark, for cross-language comparison *)
let outputs = function
  | "gemm" -> [ "C" ]
  | "2mm" -> [ "D" ]
  | "3mm" -> [ "G" ]
  | "syrk" | "syr2k" -> [ "C" ]
  | "gemver" -> [ "A"; "x"; "w" ]
  | "gesummv" -> [ "y" ]
  | "atax" -> [ "y" ]
  | "bicg" -> [ "s"; "q" ]
  | "mvt" -> [ "x1"; "x2" ]
  | "jacobi-2d" | "heat-3d" -> [ "A"; "B" ]
  | "fdtd-2d" -> [ "ex"; "ey"; "hz" ]
  | "correlation" -> [ "corr" ]
  | "covariance" -> [ "cov" ]
  | b -> Alcotest.failf "unknown benchmark %s" b

(* ------------------------------------------------------------------ *)
(* Basic lowering mechanics *)

let test_simple_elementwise () =
  let p =
    {
      Al.name = "axpy";
      size_params = [ "n" ];
      scalar_params = [ "a" ];
      arrays = [ ("x", [ Expr.var "n" ]); ("y", [ Expr.var "n" ]) ];
      body = Al.[ Aug (Ir.Vadd, ("y", []), sc "a" *: v "x") ];
    }
  in
  let ir = Lower.lower Lower.fused_policy p in
  Alcotest.(check int) "one nest" 1 (List.length ir.Ir.body);
  Alcotest.(check int) "one comp" 1 (List.length (Ir.comps_in ir.Ir.body))

let test_numpy_materializes_temps () =
  let p =
    {
      Al.name = "expr";
      size_params = [ "n" ];
      scalar_params = [];
      arrays =
        [ ("x", [ Expr.var "n" ]); ("y", [ Expr.var "n" ]);
          ("z", [ Expr.var "n" ]) ];
      (* z = (x + y) * (x - y): numpy allocates temps for each op *)
      body = Al.[ Assign (("z", []), (v "x" +: v "y") *: (v "x" -: v "y")) ];
    }
  in
  let fused = Lower.lower Lower.fused_policy p in
  let numpy = Lower.lower Lower.numpy_policy p in
  Alcotest.(check bool) "numpy has more nests" true
    (List.length numpy.Ir.body > List.length fused.Ir.body);
  let temps pgm =
    List.length
      (List.filter (fun (a : Ir.array_decl) -> a.Ir.storage = Ir.Slocal)
         pgm.Ir.arrays)
  in
  Alcotest.(check bool) "numpy allocates temps" true (temps numpy >= 2);
  Alcotest.(check int) "fused has none" 0 (temps fused);
  Alcotest.(check bool) "same semantics" true
    (Interp.equivalent fused numpy ~sizes:[ ("n", 13) ] ())

let test_dot_becomes_blas () =
  let p = Np.gemm.Np.program in
  let numpy = Lower.lower Lower.numpy_policy p in
  let has_call pgm =
    List.exists
      (function Ir.Ncall _ -> true | _ -> false)
      pgm.Ir.body
  in
  Alcotest.(check bool) "numpy uses BLAS" true (has_call numpy);
  let frontend = Lower.lower Lower.frontend_policy p in
  Alcotest.(check bool) "daisy frontend does not" false (has_call frontend);
  Alcotest.(check bool) "equivalent" true
    (Interp.equivalent numpy frontend ~sizes:Np.gemm.Np.test_sizes ())

let test_sliced_dot_falls_back () =
  (* correlation's sliced dots cannot use the BLAS path *)
  let p = Np.correlation.Np.program in
  let numpy = Lower.lower Lower.numpy_policy p in
  let calls =
    Ir.fold_nodes
      (fun acc n -> match n with Ir.Ncall _ -> acc + 1 | _ -> acc)
      0 numpy.Ir.body
  in
  Alcotest.(check int) "no BLAS on sliced operands" 0 calls

(* ------------------------------------------------------------------ *)
(* All benchmarks, all policies *)

let test_all_policies_agree () =
  List.iter
    (fun (b : Np.benchmark) ->
      let reference = Lower.lower Lower.frontend_policy b.Np.program in
      List.iter
        (fun policy ->
          let other = Lower.lower policy b.Np.program in
          Alcotest.(check bool)
            (b.Np.name ^ " policies agree")
            true
            (Interp.equivalent reference other ~sizes:b.Np.test_sizes ()))
        [ Lower.numpy_policy; Lower.fused_policy ])
    Np.all

let test_framework_lowerings_preserve () =
  List.iter
    (fun (b : Np.benchmark) ->
      let reference = Lower.lower Lower.frontend_policy b.Np.program in
      List.iter
        (fun fw ->
          let other = Fw.lower fw b.Np.program in
          Alcotest.(check bool)
            (Printf.sprintf "%s under %s" b.Np.name (Fw.name fw))
            true
            (Interp.equivalent reference other ~sizes:b.Np.test_sizes ()))
        Fw.all)
    Np.all

let test_cross_language_equivalence () =
  (* the Python and C implementations compute the same outputs — except
     correlation, whose NPBench variant clamps the tiny-stddev case instead
     of resetting it (different numerics by design) *)
  List.iter
    (fun (b : Np.benchmark) ->
      if b.Np.name <> "correlation" then begin
        let c_version = Pb.program (Pb.find b.Np.name) in
        let py_version = Lower.lower Lower.frontend_policy b.Np.program in
        Alcotest.(check bool)
          (b.Np.name ^ " C vs Python")
          true
          (Interp.equivalent_on ~arrays:(outputs b.Np.name) c_version
             py_version ~sizes:b.Np.test_sizes ())
      end)
    Np.all

let test_python_correlation_liftable () =
  (* §4.3: "correlation and covariance do not show the problems of §4.1 due
     to a different structure" — the Python-translated nests are liftable *)
  List.iter
    (fun name ->
      let b = Np.find name in
      let ir = Lower.lower Lower.frontend_policy b.Np.program in
      List.iter
        (fun node ->
          match node with
          | Ir.Nloop _ ->
              Alcotest.(check bool)
                (name ^ " nest liftable")
                true
                (Daisy_scheduler.Common.liftable node)
          | _ -> ())
        ir.Ir.body)
    [ "correlation"; "covariance" ]

let test_printer () =
  let text = Al.program_to_string Np.syrk.Np.program in
  List.iter
    (fun fragment ->
      if
        not
          (try
             ignore (Str.search_forward (Str.regexp_string fragment) text 0);
             true
           with Not_found -> false)
      then Alcotest.failf "missing %S in:\n%s" fragment text)
    [ "def syrk"; "for i in range(n)"; "C[i, :i + 1] *= beta"; "A[:i + 1, k]" ]

let suite =
  [
    ("numpy-style printer", `Quick, test_printer);
    ("elementwise lowering", `Quick, test_simple_elementwise);
    ("numpy materializes temps", `Quick, test_numpy_materializes_temps);
    ("dot becomes BLAS", `Quick, test_dot_becomes_blas);
    ("sliced dot falls back", `Quick, test_sliced_dot_falls_back);
    ("all policies agree", `Slow, test_all_policies_agree);
    ("framework lowerings preserve", `Slow, test_framework_lowerings_preserve);
    ("cross-language equivalence", `Slow, test_cross_language_equivalence);
    ("python correlation liftable", `Quick, test_python_correlation_liftable);
  ]
