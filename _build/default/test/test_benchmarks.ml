(** Tests for the benchmark suite: all 15 PolyBench kernels parse, lower,
    normalize and keep their semantics; B variants are equivalent to A; the
    CLOUDSC model behaves per §5. *)

module Ir = Daisy_loopir.Ir
module Pb = Daisy_benchmarks.Polybench
module Variants = Daisy_benchmarks.Variants
module Cloudsc = Daisy_benchmarks.Cloudsc
module Pipeline = Daisy_normalize.Pipeline
module Interp = Daisy_interp.Interp
module Cost = Daisy_machine.Cost

let check_equiv ~sizes p1 p2 =
  Alcotest.(check bool) "equivalent" true (Interp.equivalent p1 p2 ~sizes ())

let test_all_parse () =
  List.iter
    (fun b ->
      let p = Pb.program b in
      Alcotest.(check bool)
        (b.Pb.name ^ " has loops")
        true
        (Ir.loops_in p.Ir.body <> []))
    Pb.all

let test_count () = Alcotest.(check int) "15 benchmarks" 15 (List.length Pb.all)

let test_normalization_preserves_semantics () =
  List.iter
    (fun b ->
      let p = Pb.program b in
      (* normalize only the liftable top-level nests, like daisy does *)
      let liftable_only =
        List.for_all Daisy_scheduler.Common.liftable p.Ir.body
      in
      if liftable_only then begin
        let n = Pipeline.normalize ~sizes:b.Pb.sim_sizes p in
        check_equiv ~sizes:b.Pb.test_sizes p n
      end)
    Pb.all

let test_b_variants_equivalent () =
  List.iter
    (fun b ->
      let p = Pb.program b in
      let v = Variants.generate ~seed:("bvariant-" ^ b.Pb.name) p in
      check_equiv ~sizes:b.Pb.test_sizes p v)
    Pb.all

let test_b_variant_differs_somewhere () =
  (* at least some of the 15 B variants must be structurally different *)
  let changed =
    List.length
      (List.filter
         (fun b ->
           let p = Pb.program b in
           let v = Variants.generate ~seed:("bvariant-" ^ b.Pb.name) p in
           not (Ir.equal_structure p.Ir.body v.Ir.body))
         Pb.all)
  in
  Alcotest.(check bool)
    (Printf.sprintf "%d/15 variants differ" changed)
    true (changed >= 8)

let test_correlation_covariance_unliftable () =
  let unliftable name =
    let p = Pb.program (Pb.find name) in
    List.exists
      (fun n ->
        match n with
        | Ir.Nloop _ -> not (Daisy_scheduler.Common.liftable n)
        | _ -> false)
      p.Ir.body
  in
  Alcotest.(check bool) "correlation has unliftable nest" true
    (unliftable "correlation");
  Alcotest.(check bool) "covariance has unliftable nest" true
    (unliftable "covariance");
  Alcotest.(check bool) "gemm fully liftable" false (unliftable "gemm")

let test_gemm_figure1_variants () =
  let a = Pb.program Pb.gemm in
  let b =
    Daisy_lang.Lower.program_of_string ~source:"gemm2.c"
      Variants.gemm_variant_2_source
  in
  check_equiv ~sizes:Pb.gemm.Pb.test_sizes a b;
  (* and they normalize to the same canonical form *)
  let na = Pipeline.normalize ~sizes:Pb.gemm.Pb.sim_sizes a in
  let nb = Pipeline.normalize ~sizes:Pb.gemm.Pb.sim_sizes b in
  Alcotest.(check bool) "same canonical form" true
    (Ir.equal_structure na.Ir.body nb.Ir.body)

(* ------------------------------------------------------------------ *)
(* CLOUDSC *)

let test_erosion_parses_and_optimizes () =
  let orig, sizes = Cloudsc.erosion_original ~iters:3 in
  let opt, _ = Cloudsc.erosion_optimized ~iters:3 in
  check_equiv ~sizes orig opt

let test_erosion_speedup_direction () =
  (* Table 1: the optimized erosion kernel must be faster and move fewer
     L1 loads *)
  let iters = 16 in
  let orig, sizes = Cloudsc.erosion_original ~iters in
  let opt, _ = Cloudsc.erosion_optimized ~iters in
  let r_orig = Cost.evaluate Cloudsc.config orig ~sizes () in
  let r_opt = Cost.evaluate Cloudsc.config opt ~sizes () in
  Alcotest.(check bool)
    (Printf.sprintf "optimized faster (%.3f vs %.3f ms)"
       (Cost.milliseconds r_opt) (Cost.milliseconds r_orig))
    true
    (r_opt.Cost.total_cycles < r_orig.Cost.total_cycles);
  Alcotest.(check bool)
    (Printf.sprintf "fewer L1 loads (%.0f vs %.0f)" r_opt.Cost.l1_loads
       r_orig.Cost.l1_loads)
    true
    (r_opt.Cost.l1_loads < r_orig.Cost.l1_loads)

let test_cloudsc_versions_equivalent () =
  (* all four versions compute the same fields *)
  let blocks = 2 in
  (* shrink the vertical extent through the sizes to keep the test fast *)
  let small_sizes = [ ("nblocks", blocks); ("klev", 6); ("nproma", 8) ] in
  let reference, _ = Cloudsc.full_model Cloudsc.Fortran ~blocks in
  List.iter
    (fun v ->
      let p, _ = Cloudsc.full_model v ~blocks in
      Alcotest.(check bool)
        (Cloudsc.string_of_version v ^ " equivalent")
        true
        (Interp.equivalent reference p ~sizes:small_sizes ()))
    Cloudsc.all_versions

let test_cloudsc_daisy_fastest () =
  let blocks = 4 in
  let times =
    List.map
      (fun v ->
        let p, sizes = Cloudsc.full_model v ~blocks in
        let r =
          Cost.evaluate Cloudsc.config p ~sizes ~threads:1 ~sample_outer:1 ()
        in
        (v, Cost.milliseconds r))
      Cloudsc.all_versions
  in
  let time v = List.assoc v times in
  Alcotest.(check bool)
    (Printf.sprintf "daisy (%.2f) faster than Fortran (%.2f)"
       (time Cloudsc.DaisyV) (time Cloudsc.Fortran))
    true
    (time Cloudsc.DaisyV < time Cloudsc.Fortran);
  Alcotest.(check bool)
    (Printf.sprintf "Fortran (%.2f) faster than C (%.2f)"
       (time Cloudsc.Fortran) (time Cloudsc.C))
    true
    (time Cloudsc.Fortran < time Cloudsc.C)

let test_extras () =
  List.iter
    (fun (b : Pb.benchmark) ->
      let p = Pb.program b in
      (* normalization preserves semantics on the extras too *)
      let n = Pipeline.normalize ~sizes:b.Pb.sim_sizes p in
      check_equiv ~sizes:b.Pb.test_sizes p n)
    Pb.extras;
  (* trisolv's outer loop is truly sequential: no scheduler may
     parallelize it *)
  let trisolv = Pb.program (Pb.find "trisolv") in
  let icc = Daisy_scheduler.Baselines.icc_like trisolv in
  List.iter
    (fun n ->
      match n with
      | Ir.Nloop l ->
          Alcotest.(check bool) "trisolv outer stays sequential" false
            l.Ir.attrs.Ir.parallel
      | _ -> ())
    icc.Ir.body;
  (* doitgen's sum-buffer pattern must survive the full daisy pipeline *)
  let doitgen = Pb.program (Pb.find "doitgen") in
  let ctx =
    Daisy_scheduler.Common.make_ctx ~threads:4 ~sample_outer:4
      ~sizes:(Pb.find "doitgen").Pb.sim_sizes ()
  in
  let db = Daisy_scheduler.Database.create () in
  let r = Daisy_scheduler.Daisy.schedule ctx ~db doitgen in
  check_equiv ~sizes:(Pb.find "doitgen").Pb.test_sizes doitgen
    r.Daisy_scheduler.Daisy.program

let test_cloudsc_scaling_monotone () =
  (* strong scaling must be monotonically non-increasing in threads *)
  let p, sizes = Cloudsc.full_model Cloudsc.DaisyV ~blocks:8 in
  let t threads =
    Cost.milliseconds
      (Cost.evaluate Cloudsc.config p ~sizes ~threads ~sample_outer:1 ())
  in
  let times = List.map t [ 1; 2; 4; 8 ] in
  let rec mono = function
    | a :: (b :: _ as rest) -> a >= b -. 1e-9 && mono rest
    | _ -> true
  in
  Alcotest.(check bool)
    (Printf.sprintf "monotone: %s"
       (String.concat " >= " (List.map (Printf.sprintf "%.3f") times)))
    true (mono times)

let suite =
  [
    ("all 15 parse and lower", `Quick, test_all_parse);
    ("cloudsc scaling monotone", `Slow, test_cloudsc_scaling_monotone);
    ("extra kernels (doitgen, trisolv)", `Slow, test_extras);
    ("exactly 15 benchmarks", `Quick, test_count);
    ("normalization preserves semantics", `Slow, test_normalization_preserves_semantics);
    ("B variants equivalent", `Slow, test_b_variants_equivalent);
    ("B variants differ structurally", `Slow, test_b_variant_differs_somewhere);
    ("correlation/covariance unliftable", `Quick, test_correlation_covariance_unliftable);
    ("figure-1 gemm variants", `Quick, test_gemm_figure1_variants);
    ("cloudsc erosion equivalence", `Quick, test_erosion_parses_and_optimizes);
    ("cloudsc Table-1 direction", `Quick, test_erosion_speedup_direction);
    ("cloudsc versions equivalent", `Slow, test_cloudsc_versions_equivalent);
    ("cloudsc daisy fastest", `Slow, test_cloudsc_daisy_fastest);
  ]
