(** Tests for the dependence analysis: direction vectors, statement graphs,
    legality predicates, reductions. *)

open Daisy_dependence
module Ir = Daisy_loopir.Ir

let lower = Daisy_lang.Lower.program_of_string ~source:"test.c"
let norm p = Daisy_normalize.Iter_norm.run (lower p)

let only_nest (p : Ir.program) : Ir.loop =
  match p.Ir.body with
  | [ Ir.Nloop l ] -> l
  | _ -> Alcotest.fail "expected a single top-level nest"

(* ------------------------------------------------------------------ *)

let test_no_dep_independent_arrays () =
  let p =
    norm
      {|void f(int n, double A[n], double B[n]) {
          for (int i = 0; i < n; i++) {
            A[i] = 1.0;
            B[i] = 2.0;
          }
        }|}
  in
  let l = only_nest p in
  Alcotest.(check bool) "no carried dep" false
    (Legality.loop_carries_dependence ~outer:[] l)

let test_carried_flow_dep () =
  let p =
    norm
      {|void f(int n, double A[n]) {
          for (int i = 1; i < n; i++)
            A[i] = A[i - 1] + 1.0;
        }|}
  in
  let l = only_nest p in
  Alcotest.(check bool) "carries dep" true
    (Legality.loop_carries_dependence ~outer:[] l)

let test_distance_two_dep () =
  (* A[i] = A[i-2]: carried, but the dependence has distance 2 *)
  let p =
    norm
      {|void f(int n, double A[n]) {
          for (int i = 2; i < n; i++)
            A[i] = A[i - 2] + 1.0;
        }|}
  in
  let l = only_nest p in
  Alcotest.(check bool) "carries dep" true
    (Legality.loop_carries_dependence ~outer:[] l)

let test_gcd_independence () =
  (* A[2i] vs A[2i+1]: even and odd cells never conflict (gcd test) *)
  let p =
    norm
      {|void f(int n, double A[2 * n + 1]) {
          for (int i = 0; i < n; i++)
            A[2 * i] = A[2 * i + 1] + 1.0;
        }|}
  in
  let l = only_nest p in
  Alcotest.(check bool) "even/odd independent" false
    (Legality.loop_carries_dependence ~outer:[] l)

let test_band_vectors_gemm () =
  let p =
    norm
      {|void f(int n, double C[n][n], double A[n][n], double B[n][n]) {
          for (int i = 0; i < n; i++)
            for (int k = 0; k < n; k++)
              for (int j = 0; j < n; j++)
                C[i][j] += A[i][k] * B[k][j];
        }|}
  in
  let l = only_nest p in
  let band, body = Legality.perfect_band l in
  let vectors = Legality.band_dep_vectors ~outer:[] band body in
  (* the C self-dependence is carried by k: (=, <, =) must be present *)
  Alcotest.(check bool) "k-carried reduction dep" true
    (List.mem [ Test.Eq; Test.Lt; Test.Eq ] vectors);
  let parallel = Legality.parallel_positions vectors 3 in
  Alcotest.(check (list bool)) "i and j parallel, k not"
    [ true; false; true ]
    (Array.to_list parallel)

let test_permutation_legality_stencil () =
  (* A[i][j] = A[i-1][j+1]: dep vector (1, -1); swapping i and j gives
     (-1, 1), lexicographically negative -> illegal *)
  let p =
    norm
      {|void f(int n, double A[n][n]) {
          for (int i = 1; i < n; i++)
            for (int j = 0; j < n - 1; j++)
              A[i][j] = A[i - 1][j + 1] + 1.0;
        }|}
  in
  let l = only_nest p in
  let band, body = Legality.perfect_band l in
  let vectors = Legality.band_dep_vectors ~outer:[] band body in
  Alcotest.(check bool) "identity legal" true
    (Legality.legal_permutation vectors [| 0; 1 |]);
  Alcotest.(check bool) "swap illegal" false
    (Legality.legal_permutation vectors [| 1; 0 |])

let test_permutation_legality_uniform () =
  (* A[i][j] = A[i-1][j-1]: dep (1,1); swap stays legal *)
  let p =
    norm
      {|void f(int n, double A[n][n]) {
          for (int i = 1; i < n; i++)
            for (int j = 1; j < n; j++)
              A[i][j] = A[i - 1][j - 1] + 1.0;
        }|}
  in
  let l = only_nest p in
  let band, body = Legality.perfect_band l in
  let vectors = Legality.band_dep_vectors ~outer:[] band body in
  Alcotest.(check bool) "swap legal" true
    (Legality.legal_permutation vectors [| 1; 0 |])

let test_reduction_detection () =
  let p =
    norm
      {|void f(int n, double A[n], double s[1]) {
          for (int i = 0; i < n; i++)
            s[0] = s[0] + A[i];
        }|}
  in
  match Ir.comps_in p.Ir.body with
  | [ c ] ->
      Alcotest.(check bool) "is reduction" true (Legality.is_reduction_comp c);
      let l = only_nest p in
      Alcotest.(check bool) "carried only by reduction" true
        (Legality.carried_only_by_reductions ~outer:[] l)
  | _ -> Alcotest.fail "one comp"

let test_not_reduction () =
  let p =
    norm
      {|void f(int n, double A[n], double s[1]) {
          for (int i = 0; i < n; i++)
            s[0] = s[0] / A[i];
        }|}
  in
  match Ir.comps_in p.Ir.body with
  | [ c ] ->
      Alcotest.(check bool) "division is not a reduction" false
        (Legality.is_reduction_comp c)
  | _ -> Alcotest.fail "one comp"

let test_scalar_serializes () =
  (* the scalar temporary makes iterations conflict *)
  let p =
    norm
      {|void f(int n, double A[n], double B[n]) {
          double t = 0.0;
          for (int i = 0; i < n; i++) {
            t = A[i];
            B[i] = t * 2.0;
          }
        }|}
  in
  (* the scalar's initialization is a top-level computation before the
     loop; grab the loop itself *)
  let l =
    match
      List.filter_map
        (function Ir.Nloop l -> Some l | _ -> None)
        p.Ir.body
    with
    | [ l ] -> l
    | _ -> Alcotest.fail "expected one loop"
  in
  Alcotest.(check bool) "scalar carries dep" true
    (Legality.loop_carries_dependence ~outer:[] l)

let test_triangular_dep () =
  (* writes C[i][j] for j <= i, reads C[j][i]: transposed-cell conflicts
     exist only on the diagonal; make sure the test is conservative and
     still runs on triangular domains *)
  let p =
    norm
      {|void f(int n, double C[n][n]) {
          for (int i = 0; i < n; i++)
            for (int j = 0; j <= i; j++)
              C[i][j] = C[j][i] * 2.0;
        }|}
  in
  let l = only_nest p in
  (* just must not crash and must detect *some* dependence *)
  ignore (Legality.loop_carries_dependence ~outer:[] l)

let test_non_affine_conservative () =
  let p =
    norm
      {|void f(int n, double A[n]) {
          for (int i = 1; i < n; i++)
            A[i % 7] = A[i] + 1.0;
        }|}
  in
  let l = only_nest p in
  Alcotest.(check bool) "non-affine assumed dependent" true
    (Legality.loop_carries_dependence ~outer:[] l)

let test_fastpath_verdicts () =
  let module F = Fastpath in
  let module A = Daisy_poly.Affine in
  (* ZIV *)
  Alcotest.(check bool) "ziv same" true
    (F.ziv (A.const 3) (A.const 3) = `Dependent);
  Alcotest.(check bool) "ziv diff" true
    (F.ziv (A.const 3) (A.const 4) = `Independent);
  (* strong SIV: 2i+1 vs 2i+4 -> non-integral distance *)
  let a1 = A.add (A.var ~coeff:2 "i") (A.const 1) in
  let a2 = A.add (A.var ~coeff:2 "i") (A.const 4) in
  Alcotest.(check bool) "siv non-integral" true
    (F.strong_siv a1 a2 = `Independent);
  (* i vs i+20 with extent 10: distance exceeds the loop *)
  let b1 = A.var "i" and b2 = A.add (A.var "i") (A.const 20) in
  Alcotest.(check bool) "siv beyond extent" true
    (F.strong_siv ~extent:10 b1 b2 = `Independent);
  Alcotest.(check bool) "siv within extent" true
    (F.strong_siv ~extent:30 b1 b2 = `Dependent);
  (* gcd: 2i vs 2j+1 never equal *)
  let g1 = A.var ~coeff:2 "i" and g2 = A.add (A.var ~coeff:2 "j") (A.const 1) in
  Alcotest.(check bool) "gcd parity" true (F.gcd_test g1 g2 = `Independent)

let test_fastpath_agrees_with_fm () =
  (* fastpath independence must agree with the exact path: check on the
     even/odd kernel from above *)
  let p =
    norm
      {|void f(int n, double A[2 * n + 1]) {
          for (int i = 0; i < n; i++)
            A[2 * i] = A[2 * i + 1] + 1.0;
        }|}
  in
  let l = only_nest p in
  Alcotest.(check bool) "no carried dep (fastpath)" false
    (Legality.loop_carries_dependence ~outer:[] l)

let test_distance_at () =
  let p =
    norm
      {|void f(int n, double A[n]) {
          for (int i = 2; i < n; i++)
            A[i] = A[i - 2] + 1.0;
        }|}
  in
  let l = only_nest p in
  match Ir.comps_in p.Ir.body with
  | [ c ] -> (
      let refs = Refs.of_comp c in
      let w = List.find (fun r -> r.Refs.kind = Refs.Write) refs in
      let r = List.find (fun r -> r.Refs.kind = Refs.Read) refs in
      match
        Test.distance_at ~common:[ l ] ~src_ctx:[ l ] ~dst_ctx:[ l ] w r l
      with
      | Some d -> Alcotest.(check int) "distance 2" 2 (abs d)
      | None -> Alcotest.fail "expected a constant distance")
  | _ -> Alcotest.fail "one comp"

let test_seidel_fully_sequential () =
  (* seidel-2d: every loop carries a dependence, and no band permutation
     other than the identity is legal *)
  let b = Daisy_benchmarks.Polybench.find "seidel-2d" in
  let p = Daisy_normalize.Iter_norm.run (Daisy_benchmarks.Polybench.program b) in
  match p.Ir.body with
  | [ Ir.Nloop t ] ->
      let band, body = Legality.perfect_band t in
      Alcotest.(check int) "3-deep band" 3 (List.length band);
      let vectors = Legality.band_dep_vectors ~outer:[] band body in
      let parallel = Legality.parallel_positions vectors 3 in
      Alcotest.(check (list bool)) "no parallel loop" [ false; false; false ]
        (Array.to_list parallel);
      Alcotest.(check bool) "i<->j swap illegal" false
        (Legality.legal_permutation vectors [| 0; 2; 1 |])
  | _ -> Alcotest.fail "one nest"

let suite =
  [
    ("seidel-2d fully sequential", `Quick, test_seidel_fully_sequential);
    ("fastpath verdicts", `Quick, test_fastpath_verdicts);
    ("fastpath agrees with FM", `Quick, test_fastpath_agrees_with_fm);
    ("constant distance", `Quick, test_distance_at);
    ("independent arrays", `Quick, test_no_dep_independent_arrays);
    ("carried flow dep", `Quick, test_carried_flow_dep);
    ("distance-2 dep", `Quick, test_distance_two_dep);
    ("gcd even/odd independence", `Quick, test_gcd_independence);
    ("gemm band vectors", `Quick, test_band_vectors_gemm);
    ("stencil permutation illegal", `Quick, test_permutation_legality_stencil);
    ("uniform permutation legal", `Quick, test_permutation_legality_uniform);
    ("reduction detection", `Quick, test_reduction_detection);
    ("division not reduction", `Quick, test_not_reduction);
    ("scalar serializes", `Quick, test_scalar_serializes);
    ("triangular transpose", `Quick, test_triangular_dep);
    ("non-affine conservative", `Quick, test_non_affine_conservative);
  ]
