lib/embedding/embedding.mli: Daisy_loopir Fmt
