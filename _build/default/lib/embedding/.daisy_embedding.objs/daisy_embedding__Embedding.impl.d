lib/embedding/embedding.ml: Array Daisy_dependence Daisy_loopir Daisy_poly Daisy_support Fmt List Util
