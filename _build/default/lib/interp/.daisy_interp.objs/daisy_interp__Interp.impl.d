lib/interp/interp.ml: Array Char Daisy_blas Daisy_loopir Daisy_poly Daisy_support Float Fmt Hashtbl List String Util
