lib/interp/interp.mli: Daisy_loopir Daisy_support Hashtbl
