(** Reference interpreter for loopir programs.

    Executes programs over real [float array] storage; the test suite uses it
    to prove every normalization and scheduling transformation semantics-
    preserving (original and transformed programs must produce bitwise-close
    outputs from identical initial states).

    Scheduling attributes ([parallel], [vectorized], [unroll]) do not affect
    interpretation — they are promises to the machine model, not semantics. *)

open Daisy_support
module Ir = Daisy_loopir.Ir
module Expr = Daisy_poly.Expr

type tensor = { dims : int array; data : float array }

let tensor_size t = Array.fold_left ( * ) 1 t.dims

type state = {
  sizes : int Util.SMap.t;
  mutable scalars : float Util.SMap.t;
  arrays : (string, tensor) Hashtbl.t;
}

exception Runtime_error of string

let runtime_error fmt = Fmt.kstr (fun m -> raise (Runtime_error m)) fmt

(* ------------------------------------------------------------------ *)
(* Initialization                                                       *)

(** Deterministic PolyBench-style initializer: a bounded, array-dependent
    value for every element, identical across program variants. *)
let default_init name i =
  let h = ref 1469598103934665603 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 1099511628211) name;
  let v = (!h lxor (i * 2654435761)) land 0xFFFF in
  (float_of_int v /. 65536.0) +. 0.01

let linear_index dims indices =
  let rank = Array.length dims in
  let rec go k acc =
    if k = rank then acc
    else begin
      let i = indices.(k) in
      if i < 0 || i >= dims.(k) then
        runtime_error "index %d out of bounds [0, %d) in dimension %d" i dims.(k) k;
      go (k + 1) ((acc * dims.(k)) + i)
    end
  in
  go 0 0

(** [init p ~sizes ~scalars ?init_fn ()] allocates every array of [p].
    Parameter arrays are filled by [init_fn] (default {!default_init});
    locals are zeroed. *)
let init (p : Ir.program) ~sizes ?(scalars = []) ?(init_fn = default_init) () =
  let sizes =
    List.fold_left (fun m (k, v) -> Util.SMap.add k v m) Util.SMap.empty sizes
  in
  List.iter
    (fun sp ->
      if not (Util.SMap.mem sp sizes) then
        runtime_error "missing size parameter %s" sp)
    p.Ir.size_params;
  let scalar_map =
    List.fold_left (fun m (k, v) -> Util.SMap.add k v m) Util.SMap.empty scalars
  in
  (* default any unspecified scalar parameter deterministically *)
  let scalar_map =
    List.fold_left
      (fun m sp ->
        if Util.SMap.mem sp m then m else Util.SMap.add sp (default_init sp 0) m)
      scalar_map p.Ir.scalar_params
  in
  let arrays = Hashtbl.create 16 in
  List.iter
    (fun (a : Ir.array_decl) ->
      let dims =
        Array.of_list (List.map (fun d -> Expr.eval sizes d) a.Ir.dims)
      in
      Array.iter
        (fun d ->
          if d <= 0 then
            runtime_error "array %s has non-positive dimension %d" a.Ir.name d)
        dims;
      let n = Array.fold_left ( * ) 1 dims in
      let data =
        match a.Ir.storage with
        | Ir.Sparam -> Array.init n (fun i -> init_fn a.Ir.name i)
        | Ir.Slocal -> Array.make n 0.0
      in
      Hashtbl.replace arrays a.Ir.name { dims; data })
    p.Ir.arrays;
  { sizes; scalars = scalar_map; arrays }

(* ------------------------------------------------------------------ *)
(* Evaluation                                                           *)

type frame = { state : state; mutable iters : int Util.SMap.t }

let int_env fr =
  Util.SMap.union (fun _ i _ -> Some i) fr.iters fr.state.sizes

let eval_intrinsic f args =
  match (f, args) with
  | "sqrt", [ x ] -> sqrt x
  | "exp", [ x ] -> exp x
  | "log", [ x ] -> log x
  | "fabs", [ x ] -> Float.abs x
  | "floor", [ x ] -> floor x
  | "ceil", [ x ] -> ceil x
  | "sin", [ x ] -> sin x
  | "cos", [ x ] -> cos x
  | "tanh", [ x ] -> tanh x
  | "pow", [ x; y ] -> Float.pow x y
  | "min", [ x; y ] -> Float.min x y
  | "max", [ x; y ] -> Float.max x y
  | _ -> runtime_error "unknown intrinsic %s/%d" f (List.length args)

let read_tensor state array indices =
  match Hashtbl.find_opt state.arrays array with
  | None -> runtime_error "unknown array %s" array
  | Some t -> t.data.(linear_index t.dims indices)

let write_tensor state array indices v =
  match Hashtbl.find_opt state.arrays array with
  | None -> runtime_error "unknown array %s" array
  | Some t -> t.data.(linear_index t.dims indices) <- v

let rec eval_vexpr fr (e : Ir.vexpr) : float =
  match e with
  | Ir.Vfloat f -> f
  | Ir.Vint ie -> float_of_int (Expr.eval (int_env fr) ie)
  | Ir.Vread { array; indices } ->
      let env = int_env fr in
      let idx = Array.of_list (List.map (Expr.eval env) indices) in
      read_tensor fr.state array idx
  | Ir.Vscalar s -> (
      match Util.SMap.find_opt s fr.state.scalars with
      | Some v -> v
      | None -> runtime_error "unbound scalar %s" s)
  | Ir.Vbin (op, a, b) -> (
      let x = eval_vexpr fr a and y = eval_vexpr fr b in
      match op with
      | Ir.Vadd -> x +. y
      | Ir.Vsub -> x -. y
      | Ir.Vmul -> x *. y
      | Ir.Vdiv -> x /. y)
  | Ir.Vneg a -> -.eval_vexpr fr a
  | Ir.Vcall (f, args) -> eval_intrinsic f (List.map (eval_vexpr fr) args)
  | Ir.Vselect (p, a, b) -> if eval_pred fr p then eval_vexpr fr a else eval_vexpr fr b

and eval_pred fr (p : Ir.pred) : bool =
  match p with
  | Ir.Pcmp (op, a, b) -> (
      let x = eval_vexpr fr a and y = eval_vexpr fr b in
      match op with
      | Ir.Clt -> x < y
      | Ir.Cle -> x <= y
      | Ir.Cgt -> x > y
      | Ir.Cge -> x >= y
      | Ir.Ceq -> x = y
      | Ir.Cne -> x <> y)
  | Ir.Pand (a, b) -> eval_pred fr a && eval_pred fr b
  | Ir.Por (a, b) -> eval_pred fr a || eval_pred fr b
  | Ir.Pnot a -> not (eval_pred fr a)

let exec_comp fr (c : Ir.comp) =
  let run =
    match c.Ir.guard with None -> true | Some g -> eval_pred fr g
  in
  if run then
    let v = eval_vexpr fr c.Ir.rhs in
    match c.Ir.dest with
    | Ir.Dscalar s -> fr.state.scalars <- Util.SMap.add s v fr.state.scalars
    | Ir.Darray { array; indices } ->
        let env = int_env fr in
        let idx = Array.of_list (List.map (Expr.eval env) indices) in
        write_tensor fr.state array idx v

let tensor_of fr name =
  match Hashtbl.find_opt fr.state.arrays name with
  | Some t -> t
  | None -> runtime_error "unknown array %s" name

let exec_libcall fr (k : Ir.libcall) =
  let env = int_env fr in
  let dims = List.map (Expr.eval env) k.Ir.dims in
  let scalar i =
    match List.nth_opt k.Ir.scalar_args i with
    | Some e -> eval_vexpr fr e
    | None -> 1.0
  in
  let data name = (tensor_of fr name).data in
  match (k.Ir.kernel, k.Ir.args, dims) with
  | "gemm", [ c; a; b ], [ m; n; kk ] ->
      Daisy_blas.Kernels.gemm ~m ~n ~k:kk ~alpha:(scalar 0) (data a) (data b) (data c)
  | "gemv", [ y; a; x ], [ m; n ] ->
      Daisy_blas.Kernels.gemv ~m ~n ~alpha:(scalar 0) (data a) (data x) (data y)
  | "gemvt", [ y; a; x ], [ m; n ] ->
      Daisy_blas.Kernels.gemvt ~m ~n ~alpha:(scalar 0) (data a) (data x) (data y)
  | "syrk", [ c; a ], [ n; m ] ->
      Daisy_blas.Kernels.syrk ~n ~m ~alpha:(scalar 0) (data a) (data c)
  | "syr2k", [ c; a; b ], [ n; m ] ->
      Daisy_blas.Kernels.syr2k ~n ~m ~alpha:(scalar 0) (data a) (data b) (data c)
  | kern, args, dims ->
      runtime_error "unsupported library call %s/%d arrays/%d dims" kern
        (List.length args) (List.length dims)

let rec exec_nodes fr (nodes : Ir.node list) =
  List.iter
    (fun n ->
      match n with
      | Ir.Ncomp c -> exec_comp fr c
      | Ir.Ncall k -> exec_libcall fr k
      | Ir.Nloop l ->
          let env = int_env fr in
          let lo = Expr.eval env l.Ir.lo and hi = Expr.eval env l.Ir.hi in
          let saved = fr.iters in
          if l.Ir.step > 0 then begin
            let i = ref lo in
            while !i <= hi do
              fr.iters <- Util.SMap.add l.Ir.iter !i saved;
              exec_nodes fr l.Ir.body;
              i := !i + l.Ir.step
            done
          end
          else begin
            let i = ref lo in
            while !i >= hi do
              fr.iters <- Util.SMap.add l.Ir.iter !i saved;
              exec_nodes fr l.Ir.body;
              i := !i + l.Ir.step
            done
          end;
          fr.iters <- saved)
    nodes

(** [run p state] executes the body of [p], mutating [state]. *)
let run (p : Ir.program) (state : state) =
  exec_nodes { state; iters = Util.SMap.empty } p.Ir.body

(** [run_fresh p ~sizes ...] allocates a fresh state and runs [p] in it. *)
let run_fresh (p : Ir.program) ~sizes ?(scalars = []) ?init_fn () =
  let state = init p ~sizes ~scalars ?init_fn () in
  run p state;
  state

(* ------------------------------------------------------------------ *)
(* Comparison                                                           *)

(** Maximum relative difference between parameter arrays of two states
    (locals are scratch and excluded). *)
let max_rel_diff (p : Ir.program) (s1 : state) (s2 : state) =
  List.fold_left
    (fun acc (a : Ir.array_decl) ->
      match a.Ir.storage with
      | Ir.Slocal -> acc
      | Ir.Sparam -> (
          match
            (Hashtbl.find_opt s1.arrays a.Ir.name, Hashtbl.find_opt s2.arrays a.Ir.name)
          with
          | Some t1, Some t2 ->
              let n = min (tensor_size t1) (tensor_size t2) in
              let m = ref acc in
              for i = 0 to n - 1 do
                let x = t1.data.(i) and y = t2.data.(i) in
                (* identical values (including inf = inf, nan = nan) count
                   as zero difference *)
                if not (x = y || (Float.is_nan x && Float.is_nan y)) then begin
                  let scale =
                    Float.max 1.0 (Float.max (Float.abs x) (Float.abs y))
                  in
                  m := Float.max !m (Float.abs (x -. y) /. scale)
                end
              done;
              !m
          | _ -> infinity))
    0.0 p.Ir.arrays

(** [equivalent_on ~arrays p1 p2 ~sizes] — run both programs from identical
    initial states and compare only the named arrays (for cross-language
    checks where the programs declare different temporaries). *)
let equivalent_on ?(tol = 1e-9) ~(arrays : string list) (p1 : Ir.program)
    (p2 : Ir.program) ~sizes ?(scalars = []) () =
  let s1 = run_fresh p1 ~sizes ~scalars () in
  let s2 = run_fresh p2 ~sizes ~scalars () in
  List.for_all
    (fun name ->
      match (Hashtbl.find_opt s1.arrays name, Hashtbl.find_opt s2.arrays name) with
      | Some t1, Some t2 ->
          let nn = min (tensor_size t1) (tensor_size t2) in
          let ok = ref true in
          for i = 0 to nn - 1 do
            let x = t1.data.(i) and y = t2.data.(i) in
            if not (x = y || (Float.is_nan x && Float.is_nan y)) then begin
              let scale =
                Float.max 1.0 (Float.max (Float.abs x) (Float.abs y))
              in
              if Float.abs (x -. y) /. scale > tol then ok := false
            end
          done;
          !ok
      | _ -> false)
    arrays

(** [equivalent p1 p2 ~sizes] runs both programs from identical initial
    states and checks parameter arrays agree within [tol]. *)
let equivalent ?(tol = 1e-9) (p1 : Ir.program) (p2 : Ir.program) ~sizes
    ?(scalars = []) () =
  let s1 = run_fresh p1 ~sizes ~scalars () in
  let s2 = run_fresh p2 ~sizes ~scalars () in
  max_rel_diff p1 s1 s2 <= tol
