(** Reference interpreter for loopir programs over real [float array]
    storage — the oracle proving every transformation semantics-preserving.
    Scheduling attributes do not affect interpretation. *)

type tensor = { dims : int array; data : float array }

val tensor_size : tensor -> int

type state = {
  sizes : int Daisy_support.Util.SMap.t;
  mutable scalars : float Daisy_support.Util.SMap.t;
  arrays : (string, tensor) Hashtbl.t;
}

exception Runtime_error of string

val default_init : string -> int -> float
(** Deterministic PolyBench-style initializer: bounded, array-dependent,
    identical across program variants. *)

val init :
  Daisy_loopir.Ir.program ->
  sizes:(string * int) list ->
  ?scalars:(string * float) list ->
  ?init_fn:(string -> int -> float) ->
  unit ->
  state
(** Allocate every array (parameters via [init_fn], locals zeroed). *)

val run : Daisy_loopir.Ir.program -> state -> unit
(** Execute the program body, mutating [state]. *)

val run_fresh :
  Daisy_loopir.Ir.program ->
  sizes:(string * int) list ->
  ?scalars:(string * float) list ->
  ?init_fn:(string -> int -> float) ->
  unit ->
  state

val max_rel_diff : Daisy_loopir.Ir.program -> state -> state -> float
(** Maximum relative difference between parameter arrays of two states
    (equal values, including inf/nan, count as zero). *)

val equivalent_on :
  ?tol:float ->
  arrays:string list ->
  Daisy_loopir.Ir.program ->
  Daisy_loopir.Ir.program ->
  sizes:(string * int) list ->
  ?scalars:(string * float) list ->
  unit ->
  bool
(** Run both programs from identical initial states and compare only the
    named arrays (for cross-language checks). *)

val equivalent :
  ?tol:float ->
  Daisy_loopir.Ir.program ->
  Daisy_loopir.Ir.program ->
  sizes:(string * int) list ->
  ?scalars:(string * float) list ->
  unit ->
  bool
(** Compare all parameter arrays. *)
