(** Framework execution models for the Python experiment (paper §4.3,
    Fig. 9): how NumPy, Numba and DaCe turn the same NPBench statements
    into executable loop nests.

    - {b NumPy}: eager per-operator temporaries, BLAS for [np.dot] on whole
      arrays, vectorized C kernels, single-threaded.
    - {b Numba}: JIT fuses each statement into one loop nest, vectorizes,
      and auto-parallelizes outer parallel loops; BLAS for [np.dot].
    - {b DaCe}: SDFG per statement with greedy map fusion, auto
      parallelization and vectorization; BLAS library nodes.
    - {b daisy}: the frontend lowering (fused statements, {e no} framework
      BLAS) followed by the daisy pipeline — normalization recovers the
      BLAS calls by idiom detection and the database supplies the rest. *)

module Ir = Daisy_loopir.Ir
module Al = Daisy_arraylang.Lower
module Baselines = Daisy_scheduler.Baselines
module Fusion = Daisy_transforms.Fusion
module Iter_norm = Daisy_normalize.Iter_norm

type framework = Numpy | Numba | DaceF | DaisyPy | DaisyPyNoNorm

let name = function
  | Numpy -> "NumPy"
  | Numba -> "Numba"
  | DaceF -> "DaCe"
  | DaisyPy -> "daisy"
  | DaisyPyNoNorm -> "daisy-nonorm"

let all = [ Numpy; Numba; DaceF; DaisyPy; DaisyPyNoNorm ]

(** Lower an NPBench program the way each framework executes it. The daisy
    variants return the {e frontend} program; the caller runs them through
    {!Daisy_scheduler.Daisy.schedule}. *)
let lower (fw : framework) (p : Daisy_arraylang.Alang.program) : Ir.program =
  match fw with
  | Numpy ->
      (* eager temporaries; vectorized kernels; single thread *)
      let ir = Al.lower Al.numpy_policy p in
      Baselines.vectorize_innermost (Iter_norm.run ir)
  | Numba ->
      (* per-statement fusion + vectorize + outer auto-parallelization *)
      let ir = Al.lower Al.fused_policy p in
      Baselines.icc_like ir
  | DaceF ->
      (* dataflow: per-statement maps, greedy fusion of adjacent maps,
         parallelization and vectorization *)
      let ir = Al.lower Al.fused_policy p in
      let ir = Iter_norm.run ir in
      let ir, _ = Fusion.fuse_greedy ir in
      Baselines.icc_like ir
  | DaisyPy | DaisyPyNoNorm ->
      (* the DaCe Python frontend path: fused statements, BLAS left to
         idiom detection after normalization *)
      Al.lower Al.frontend_policy p
