(** Random generation of semantically-equivalent B variants (paper §4):
    legality-checked loop permutations and fusions. Unliftable nests are
    kept fixed so A and B exercise the same lifting failures. *)

val generate : seed:string -> Daisy_loopir.Ir.program -> Daisy_loopir.Ir.program

val gemm_variant_2_source : string
(** The paper's Figure-1 explicit second GEMM variant. *)
