(** NPBench-style implementations of the 15 benchmarks in arraylang — the
    Python side of the paper's cross-language experiment (§4.3). Input
    sizes are adapted to the (scaled) PolyBench LARGE variants. *)

type benchmark = {
  name : string;
  program : Daisy_arraylang.Alang.program;
  sim_sizes : (string * int) list;
  test_sizes : (string * int) list;
}

val gemm : benchmark
val two_mm : benchmark
val three_mm : benchmark
val syrk : benchmark
val syr2k : benchmark
val gemver : benchmark
val gesummv : benchmark
val atax : benchmark
val bicg : benchmark
val mvt : benchmark
val jacobi_2d : benchmark
val heat_3d : benchmark
val fdtd_2d : benchmark
val correlation : benchmark
val covariance : benchmark

val all : benchmark list
val find : string -> benchmark
