lib/benchmarks/polybench.ml: Daisy_lang Daisy_loopir List String
