lib/benchmarks/npbench.ml: Daisy_arraylang Daisy_loopir Daisy_poly List Polybench String
