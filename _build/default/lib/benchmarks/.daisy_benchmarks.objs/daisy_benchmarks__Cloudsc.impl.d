lib/benchmarks/cloudsc.ml: Buffer Daisy_lang Daisy_loopir Daisy_machine Daisy_normalize Daisy_poly Daisy_scheduler Daisy_transforms List Printf String
