lib/benchmarks/npbench.mli: Daisy_arraylang
