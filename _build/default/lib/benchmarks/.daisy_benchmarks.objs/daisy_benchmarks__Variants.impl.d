lib/benchmarks/variants.ml: Array Daisy_dependence Daisy_loopir Daisy_normalize Daisy_scheduler Daisy_support Daisy_transforms List Rng Util
