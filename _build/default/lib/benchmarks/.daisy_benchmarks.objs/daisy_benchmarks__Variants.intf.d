lib/benchmarks/variants.mli: Daisy_loopir
