lib/benchmarks/frameworks.mli: Daisy_arraylang Daisy_loopir
