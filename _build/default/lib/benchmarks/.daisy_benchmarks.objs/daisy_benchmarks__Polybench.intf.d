lib/benchmarks/polybench.mli: Daisy_loopir
