(** The 15 parallelizable PolyBench benchmarks used in the paper's
    evaluation (§4), written in the kernel DSL in their reference (A
    variant) form.

    [sim_sizes] are the paper's LARGE datasets scaled down ~8x linearly (the
    machine model's caches are scaled by the same factor — see DESIGN.md
    §7); [test_sizes] are small shapes for interpreter-based equivalence
    checks. *)

module Ir = Daisy_loopir.Ir

type benchmark = {
  name : string;
  source : string;
  sim_sizes : (string * int) list;
  test_sizes : (string * int) list;
}

let gemm =
  {
    name = "gemm";
    source =
      {|void gemm(int ni, int nj, int nk, double alpha, double beta,
           double C[ni][nj], double A[ni][nk], double B[nk][nj])
{
  for (int i = 0; i < ni; i++) {
    for (int j = 0; j < nj; j++)
      C[i][j] *= beta;
    for (int k = 0; k < nk; k++)
      for (int j = 0; j < nj; j++)
        C[i][j] += alpha * A[i][k] * B[k][j];
  }
}|};
    sim_sizes = [ ("ni", 125); ("nj", 137); ("nk", 150) ];
    test_sizes = [ ("ni", 9); ("nj", 10); ("nk", 11) ];
  }

let two_mm =
  {
    name = "2mm";
    source =
      {|void k2mm(int ni, int nj, int nk, int nl, double alpha, double beta,
          double tmp[ni][nj], double A[ni][nk], double B[nk][nj],
          double C[nj][nl], double D[ni][nl])
{
  for (int i = 0; i < ni; i++)
    for (int j = 0; j < nj; j++) {
      tmp[i][j] = 0.0;
      for (int k = 0; k < nk; k++)
        tmp[i][j] += alpha * A[i][k] * B[k][j];
    }
  for (int i = 0; i < ni; i++)
    for (int j = 0; j < nl; j++) {
      D[i][j] *= beta;
      for (int k = 0; k < nj; k++)
        D[i][j] += tmp[i][k] * C[k][j];
    }
}|};
    sim_sizes = [ ("ni", 100); ("nj", 112); ("nk", 125); ("nl", 137) ];
    test_sizes = [ ("ni", 7); ("nj", 8); ("nk", 9); ("nl", 10) ];
  }

let three_mm =
  {
    name = "3mm";
    source =
      {|void k3mm(int ni, int nj, int nk, int nl, int nm,
          double E[ni][nj], double A[ni][nk], double B[nk][nj],
          double F[nj][nl], double C[nj][nm], double D[nm][nl],
          double G[ni][nl])
{
  for (int i = 0; i < ni; i++)
    for (int j = 0; j < nj; j++) {
      E[i][j] = 0.0;
      for (int k = 0; k < nk; k++)
        E[i][j] += A[i][k] * B[k][j];
    }
  for (int i = 0; i < nj; i++)
    for (int j = 0; j < nl; j++) {
      F[i][j] = 0.0;
      for (int k = 0; k < nm; k++)
        F[i][j] += C[i][k] * D[k][j];
    }
  for (int i = 0; i < ni; i++)
    for (int j = 0; j < nl; j++) {
      G[i][j] = 0.0;
      for (int k = 0; k < nj; k++)
        G[i][j] += E[i][k] * F[k][j];
    }
}|};
    sim_sizes =
      [ ("ni", 100); ("nj", 112); ("nk", 125); ("nl", 137); ("nm", 150) ];
    test_sizes = [ ("ni", 6); ("nj", 7); ("nk", 8); ("nl", 9); ("nm", 10) ];
  }

let syrk =
  {
    name = "syrk";
    source =
      {|void syrk(int n, int m, double alpha, double beta,
          double C[n][n], double A[n][m])
{
  for (int i = 0; i < n; i++) {
    for (int j = 0; j <= i; j++)
      C[i][j] *= beta;
    for (int k = 0; k < m; k++)
      for (int j = 0; j <= i; j++)
        C[i][j] += alpha * A[i][k] * A[j][k];
  }
}|};
    sim_sizes = [ ("n", 150); ("m", 125) ];
    test_sizes = [ ("n", 10); ("m", 8) ];
  }

let syr2k =
  {
    name = "syr2k";
    source =
      {|void syr2k(int n, int m, double alpha, double beta,
           double C[n][n], double A[n][m], double B[n][m])
{
  for (int i = 0; i < n; i++) {
    for (int j = 0; j <= i; j++)
      C[i][j] *= beta;
    for (int k = 0; k < m; k++)
      for (int j = 0; j <= i; j++)
        C[i][j] += A[j][k] * alpha * B[i][k] + B[j][k] * alpha * A[i][k];
  }
}|};
    sim_sizes = [ ("n", 150); ("m", 125) ];
    test_sizes = [ ("n", 10); ("m", 8) ];
  }

let gemver =
  {
    name = "gemver";
    source =
      {|void gemver(int n, double alpha, double beta,
            double A[n][n], double u1[n], double v1[n], double u2[n],
            double v2[n], double w[n], double x[n], double y[n], double z[n])
{
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++)
      A[i][j] = A[i][j] + u1[i] * v1[j] + u2[i] * v2[j];
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++)
      x[i] = x[i] + beta * A[j][i] * y[j];
  for (int i = 0; i < n; i++)
    x[i] = x[i] + z[i];
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++)
      w[i] = w[i] + alpha * A[i][j] * x[j];
}|};
    sim_sizes = [ ("n", 250) ];
    test_sizes = [ ("n", 13) ];
  }

let gesummv =
  {
    name = "gesummv";
    source =
      {|void gesummv(int n, double alpha, double beta,
             double A[n][n], double B[n][n], double tmp[n],
             double x[n], double y[n])
{
  for (int i = 0; i < n; i++) {
    tmp[i] = 0.0;
    y[i] = 0.0;
    for (int j = 0; j < n; j++) {
      tmp[i] = A[i][j] * x[j] + tmp[i];
      y[i] = B[i][j] * x[j] + y[i];
    }
    y[i] = alpha * tmp[i] + beta * y[i];
  }
}|};
    sim_sizes = [ ("n", 162) ];
    test_sizes = [ ("n", 11) ];
  }

let atax =
  {
    name = "atax";
    source =
      {|void atax(int m, int n, double A[m][n], double x[n], double y[n],
          double tmp[m])
{
  for (int i = 0; i < n; i++)
    y[i] = 0.0;
  for (int i = 0; i < m; i++) {
    tmp[i] = 0.0;
    for (int j = 0; j < n; j++)
      tmp[i] = tmp[i] + A[i][j] * x[j];
    for (int j = 0; j < n; j++)
      y[j] = y[j] + A[i][j] * tmp[i];
  }
}|};
    sim_sizes = [ ("m", 237); ("n", 262) ];
    test_sizes = [ ("m", 9); ("n", 11) ];
  }

let bicg =
  {
    name = "bicg";
    source =
      {|void bicg(int n, int m, double A[n][m], double s[m], double q[n],
          double p[m], double r[n])
{
  for (int i = 0; i < m; i++)
    s[i] = 0.0;
  for (int i = 0; i < n; i++) {
    q[i] = 0.0;
    for (int j = 0; j < m; j++) {
      s[j] = s[j] + r[i] * A[i][j];
      q[i] = q[i] + A[i][j] * p[j];
    }
  }
}|};
    sim_sizes = [ ("n", 262); ("m", 237) ];
    test_sizes = [ ("n", 11); ("m", 9) ];
  }

let mvt =
  {
    name = "mvt";
    source =
      {|void mvt(int n, double x1[n], double x2[n], double y1[n], double y2[n],
         double A[n][n])
{
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++)
      x1[i] = x1[i] + A[i][j] * y1[j];
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++)
      x2[i] = x2[i] + A[j][i] * y2[j];
}|};
    sim_sizes = [ ("n", 250) ];
    test_sizes = [ ("n", 12) ];
  }

let jacobi_2d =
  {
    name = "jacobi-2d";
    source =
      {|void jacobi2d(int n, int tsteps, double A[n][n], double B[n][n])
{
  for (int t = 0; t < tsteps; t++) {
    for (int i = 1; i < n - 1; i++)
      for (int j = 1; j < n - 1; j++)
        B[i][j] = 0.2 * (A[i][j] + A[i][j - 1] + A[i][1 + j]
                         + A[1 + i][j] + A[i - 1][j]);
    for (int i = 1; i < n - 1; i++)
      for (int j = 1; j < n - 1; j++)
        A[i][j] = 0.2 * (B[i][j] + B[i][j - 1] + B[i][1 + j]
                         + B[1 + i][j] + B[i - 1][j]);
  }
}|};
    sim_sizes = [ ("n", 162); ("tsteps", 40) ];
    test_sizes = [ ("n", 10); ("tsteps", 4) ];
  }

let heat_3d =
  {
    name = "heat-3d";
    source =
      {|void heat3d(int n, int tsteps, double A[n][n][n], double B[n][n][n])
{
  for (int t = 1; t <= tsteps; t++) {
    for (int i = 1; i < n - 1; i++)
      for (int j = 1; j < n - 1; j++)
        for (int k = 1; k < n - 1; k++)
          B[i][j][k] = 0.125 * (A[i + 1][j][k] - 2.0 * A[i][j][k] + A[i - 1][j][k])
                     + 0.125 * (A[i][j + 1][k] - 2.0 * A[i][j][k] + A[i][j - 1][k])
                     + 0.125 * (A[i][j][k + 1] - 2.0 * A[i][j][k] + A[i][j][k - 1])
                     + A[i][j][k];
    for (int i = 1; i < n - 1; i++)
      for (int j = 1; j < n - 1; j++)
        for (int k = 1; k < n - 1; k++)
          A[i][j][k] = 0.125 * (B[i + 1][j][k] - 2.0 * B[i][j][k] + B[i - 1][j][k])
                     + 0.125 * (B[i][j + 1][k] - 2.0 * B[i][j][k] + B[i][j - 1][k])
                     + 0.125 * (B[i][j][k + 1] - 2.0 * B[i][j][k] + B[i][j][k - 1])
                     + B[i][j][k];
  }
}|};
    sim_sizes = [ ("n", 40); ("tsteps", 30) ];
    test_sizes = [ ("n", 8); ("tsteps", 3) ];
  }

let fdtd_2d =
  {
    name = "fdtd-2d";
    source =
      {|void fdtd2d(int nx, int ny, int tmax, double ex[nx][ny],
            double ey[nx][ny], double hz[nx][ny], double fict[tmax])
{
  for (int t = 0; t < tmax; t++) {
    for (int j = 0; j < ny; j++)
      ey[0][j] = fict[t];
    for (int i = 1; i < nx; i++)
      for (int j = 0; j < ny; j++)
        ey[i][j] = ey[i][j] - 0.5 * (hz[i][j] - hz[i - 1][j]);
    for (int i = 0; i < nx; i++)
      for (int j = 1; j < ny; j++)
        ex[i][j] = ex[i][j] - 0.5 * (hz[i][j] - hz[i][j - 1]);
    for (int i = 0; i < nx - 1; i++)
      for (int j = 0; j < ny - 1; j++)
        hz[i][j] = hz[i][j] - 0.7 * (ex[i][j + 1] - ex[i][j]
                                     + ey[i + 1][j] - ey[i][j]);
  }
}|};
    sim_sizes = [ ("nx", 125); ("ny", 150); ("tmax", 40) ];
    test_sizes = [ ("nx", 8); ("ny", 9); ("tmax", 4) ];
  }

let correlation =
  {
    name = "correlation";
    source =
      {|void correlation(int m, int n, double data[n][m], double corr[m][m],
                 double mean[m], double stddev[m])
{
  for (int j = 0; j < m; j++) {
    mean[j] = 0.0;
    for (int i = 0; i < n; i++)
      mean[j] += data[i][j];
    mean[j] /= n;
  }
  for (int j = 0; j < m; j++) {
    stddev[j] = 0.0;
    for (int i = 0; i < n; i++)
      stddev[j] += (data[i][j] - mean[j]) * (data[i][j] - mean[j]);
    stddev[j] /= n;
    stddev[j] = sqrt(stddev[j]);
    if (stddev[j] <= 0.1)
      stddev[j] = 1.0;
  }
  for (int i = 0; i < n; i++)
    for (int j = 0; j < m; j++) {
      data[i][j] -= mean[j];
      data[i][j] /= sqrt(1.0 * n) * stddev[j];
    }
  for (int i = 0; i < m - 1; i++) {
    corr[i][i] = 1.0;
    for (int j = i + 1; j < m; j++) {
      corr[i][j] = 0.0;
      for (int k = 0; k < n; k++)
        corr[i][j] += data[k][i] * data[k][j];
      corr[j][i] = corr[i][j];
    }
  }
  corr[m - 1][m - 1] = 1.0;
}|};
    sim_sizes = [ ("m", 150); ("n", 162) ];
    test_sizes = [ ("m", 9); ("n", 11) ];
  }

let covariance =
  {
    name = "covariance";
    source =
      {|void covariance(int m, int n, double data[n][m], double cov[m][m],
                double mean[m])
{
  for (int j = 0; j < m; j++) {
    mean[j] = 0.0;
    for (int i = 0; i < n; i++)
      mean[j] += data[i][j];
    mean[j] /= n;
  }
  for (int i = 0; i < n; i++)
    for (int j = 0; j < m; j++)
      data[i][j] -= mean[j];
  for (int i = 0; i < m; i++)
    for (int j = i; j < m; j++) {
      cov[i][j] = 0.0;
      for (int k = 0; k < n; k++)
        cov[i][j] += data[k][i] * data[k][j];
      cov[i][j] /= n - 1;
      cov[j][i] = cov[i][j];
    }
}|};
    sim_sizes = [ ("m", 150); ("n", 162) ];
    test_sizes = [ ("m", 9); ("n", 11) ];
  }

(* ------------------------------------------------------------------ *)
(* Extra kernels beyond the paper's 15 (available to the CLI and tests;
   not part of the figure reproductions) *)

let doitgen =
  {
    name = "doitgen";
    source =
      {|void doitgen(int nr, int nq, int np, double A[nr][nq][np],
             double C4[np][np], double sum[np])
{
  for (int r = 0; r < nr; r++)
    for (int q = 0; q < nq; q++) {
      for (int p = 0; p < np; p++) {
        sum[p] = 0.0;
        for (int s = 0; s < np; s++)
          sum[p] += A[r][q][s] * C4[s][p];
      }
      for (int p = 0; p < np; p++)
        A[r][q][p] = sum[p];
    }
}|};
    sim_sizes = [ ("nr", 18); ("nq", 20); ("np", 32) ];
    test_sizes = [ ("nr", 4); ("nq", 5); ("np", 6) ];
  }

let trisolv =
  {
    name = "trisolv";
    source =
      {|void trisolv(int n, double L[n][n], double x[n], double b[n])
{
  for (int i = 0; i < n; i++) {
    x[i] = b[i];
    for (int j = 0; j < i; j++)
      x[i] -= L[i][j] * x[j];
    x[i] = x[i] / L[i][i];
  }
}|};
    sim_sizes = [ ("n", 250) ];
    test_sizes = [ ("n", 12) ];
  }

let seidel_2d =
  {
    name = "seidel-2d";
    source =
      {|void seidel2d(int n, int tsteps, double A[n][n])
{
  for (int t = 0; t < tsteps; t++)
    for (int i = 1; i < n - 1; i++)
      for (int j = 1; j < n - 1; j++)
        A[i][j] = (A[i - 1][j - 1] + A[i - 1][j] + A[i - 1][j + 1]
                   + A[i][j - 1] + A[i][j] + A[i][j + 1]
                   + A[i + 1][j - 1] + A[i + 1][j] + A[i + 1][j + 1]) / 9.0;
}|};
    sim_sizes = [ ("n", 250); ("tsteps", 20) ];
    test_sizes = [ ("n", 10); ("tsteps", 3) ];
  }

let extras : benchmark list = [ doitgen; trisolv; seidel_2d ]

(** The 15 benchmarks of the paper's Figure 6/7 evaluation, in display
    order. *)
let all : benchmark list =
  [
    gemm; two_mm; three_mm; syrk; syr2k; gemver; gesummv; atax; bicg; mvt;
    jacobi_2d; heat_3d; fdtd_2d; correlation; covariance;
  ]

let find name =
  match List.find_opt (fun b -> String.equal b.name name) (all @ extras) with
  | Some b -> b
  | None -> invalid_arg ("unknown benchmark " ^ name)

(** Parse and lower a benchmark's A variant. *)
let program (b : benchmark) : Ir.program =
  Daisy_lang.Lower.program_of_string ~source:(b.name ^ ".c") b.source
