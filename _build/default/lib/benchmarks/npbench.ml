(** NPBench-style implementations of the 15 benchmarks in arraylang — the
    Python side of the paper's cross-language experiment (§4.3, Fig. 9).

    These follow the NPBench coding style: whole-array statements, slices,
    [np.dot]/[@], transposes and reductions instead of explicit loops; the
    "same benchmarks in Python — increasing the number of implementation
    variants considered". Input sizes are adapted to the PolyBench LARGE
    (scaled) variants for comparability, as in the paper. *)

open Daisy_arraylang.Alang
module Expr = Daisy_poly.Expr
module A = Daisy_arraylang.Alang

let n = Expr.var
let i1 e = Expr.add e Expr.one

type benchmark = {
  name : string;
  program : A.program;
  sim_sizes : (string * int) list;
  test_sizes : (string * int) list;
}

let pb name = (Polybench.find name).Polybench.sim_sizes
let pbt name = (Polybench.find name).Polybench.test_sizes

let gemm =
  {
    name = "gemm";
    program =
      {
        A.name = "gemm";
        size_params = [ "ni"; "nj"; "nk" ];
        scalar_params = [ "alpha"; "beta" ];
        arrays =
          [ ("C", [ n "ni"; n "nj" ]); ("A", [ n "ni"; n "nk" ]);
            ("B", [ n "nk"; n "nj" ]) ];
        (* C[:] = alpha * A @ B + beta * C *)
        body =
          [ Assign (("C", []),
                (sc "alpha" *: Tdot (v "A", v "B")) +: (sc "beta" *: v "C")) ];
      };
    sim_sizes = pb "gemm";
    test_sizes = pbt "gemm";
  }

let two_mm =
  {
    name = "2mm";
    program =
      {
        A.name = "k2mm";
        size_params = [ "ni"; "nj"; "nk"; "nl" ];
        scalar_params = [ "alpha"; "beta" ];
        arrays =
          [ ("A", [ n "ni"; n "nk" ]); ("B", [ n "nk"; n "nj" ]);
            ("C", [ n "nj"; n "nl" ]); ("D", [ n "ni"; n "nl" ]) ];
        (* D[:] = alpha * A @ B @ C + beta * D *)
        body =
          [ Assign (("D", []),
                (sc "alpha" *: Tdot (Tdot (v "A", v "B"), v "C"))
                +: (sc "beta" *: v "D")) ];
      };
    sim_sizes = pb "2mm";
    test_sizes = pbt "2mm";
  }

let three_mm =
  {
    name = "3mm";
    program =
      {
        A.name = "k3mm";
        size_params = [ "ni"; "nj"; "nk"; "nl"; "nm" ];
        scalar_params = [];
        arrays =
          [ ("A", [ n "ni"; n "nk" ]); ("B", [ n "nk"; n "nj" ]);
            ("C", [ n "nj"; n "nm" ]); ("D", [ n "nm"; n "nl" ]);
            ("G", [ n "ni"; n "nl" ]) ];
        (* G[:] = (A @ B) @ (C @ D) *)
        body =
          [ Assign (("G", []),
                Tdot (Tdot (v "A", v "B"), Tdot (v "C", v "D"))) ];
      };
    sim_sizes = pb "3mm";
    test_sizes = pbt "3mm";
  }

let syrk =
  {
    name = "syrk";
    program =
      {
        A.name = "syrk";
        size_params = [ "n"; "m" ];
        scalar_params = [ "alpha"; "beta" ];
        arrays = [ ("C", [ n "n"; n "n" ]); ("A", [ n "n"; n "m" ]) ];
        (* NPBench (paper Fig. 8b):
           for i in range(n):
             C[i, :i+1] *= beta
             for k in range(m):
               C[i, :i+1] += alpha * A[i, k] * A[:i+1, k] *)
        body =
          [ For ("i", Expr.zero, n "n",
                [ Aug (Daisy_loopir.Ir.Vmul,
                      ("C", [ pt (n "i"); sl (i1 (n "i")) ]), sc "beta");
                  For ("k", Expr.zero, n "m",
                      [ Aug (Daisy_loopir.Ir.Vadd,
                            ("C", [ pt (n "i"); sl (i1 (n "i")) ]),
                            sc "alpha"
                            *: v "A" ~idx:[ pt (n "i"); pt (n "k") ]
                            *: v "A" ~idx:[ sl (i1 (n "i")); pt (n "k") ]) ]) ]) ];
      };
    sim_sizes = pb "syrk";
    test_sizes = pbt "syrk";
  }

let syr2k =
  {
    name = "syr2k";
    program =
      {
        A.name = "syr2k";
        size_params = [ "n"; "m" ];
        scalar_params = [ "alpha"; "beta" ];
        arrays =
          [ ("C", [ n "n"; n "n" ]); ("A", [ n "n"; n "m" ]);
            ("B", [ n "n"; n "m" ]) ];
        body =
          [ For ("i", Expr.zero, n "n",
                [ Aug (Daisy_loopir.Ir.Vmul,
                      ("C", [ pt (n "i"); sl (i1 (n "i")) ]), sc "beta");
                  For ("k", Expr.zero, n "m",
                      [ Aug (Daisy_loopir.Ir.Vadd,
                            ("C", [ pt (n "i"); sl (i1 (n "i")) ]),
                            (v "A" ~idx:[ sl (i1 (n "i")); pt (n "k") ]
                             *: (sc "alpha" *: v "B" ~idx:[ pt (n "i"); pt (n "k") ]))
                            +: (v "B" ~idx:[ sl (i1 (n "i")); pt (n "k") ]
                                *: (sc "alpha" *: v "A" ~idx:[ pt (n "i"); pt (n "k") ]))) ]) ]) ];
      };
    sim_sizes = pb "syr2k";
    test_sizes = pbt "syr2k";
  }

let gemver =
  {
    name = "gemver";
    program =
      {
        A.name = "gemver";
        size_params = [ "n" ];
        scalar_params = [ "alpha"; "beta" ];
        arrays =
          [ ("A", [ n "n"; n "n" ]); ("u1", [ n "n" ]); ("v1", [ n "n" ]);
            ("u2", [ n "n" ]); ("v2", [ n "n" ]); ("w", [ n "n" ]);
            ("x", [ n "n" ]); ("y", [ n "n" ]); ("z", [ n "n" ]) ];
        (* A += outer(u1, v1) + outer(u2, v2)
           x += beta * (A.T @ y) + z
           w += alpha * (A @ x) *)
        body =
          [ Aug (Daisy_loopir.Ir.Vadd, ("A", []),
                Touter (v "u1", v "v1") +: Touter (v "u2", v "v2"));
            Aug (Daisy_loopir.Ir.Vadd, ("x", []),
                (sc "beta" *: Tdot (Ttranspose "A", v "y")) +: v "z");
            Aug (Daisy_loopir.Ir.Vadd, ("w", []),
                sc "alpha" *: Tdot (v "A", v "x")) ];
      };
    sim_sizes = pb "gemver";
    test_sizes = pbt "gemver";
  }

let gesummv =
  {
    name = "gesummv";
    program =
      {
        A.name = "gesummv";
        size_params = [ "n" ];
        scalar_params = [ "alpha"; "beta" ];
        arrays =
          [ ("A", [ n "n"; n "n" ]); ("B", [ n "n"; n "n" ]);
            ("x", [ n "n" ]); ("y", [ n "n" ]) ];
        (* y[:] = alpha * (A @ x) + beta * (B @ x) *)
        body =
          [ Assign (("y", []),
                (sc "alpha" *: Tdot (v "A", v "x"))
                +: (sc "beta" *: Tdot (v "B", v "x"))) ];
      };
    sim_sizes = pb "gesummv";
    test_sizes = pbt "gesummv";
  }

let atax =
  {
    name = "atax";
    program =
      {
        A.name = "atax";
        size_params = [ "m"; "n" ];
        scalar_params = [];
        arrays = [ ("A", [ n "m"; n "n" ]); ("x", [ n "n" ]); ("y", [ n "n" ]) ];
        (* y[:] = (A @ x) @ A *)
        body = [ Assign (("y", []), Tdot (Tdot (v "A", v "x"), v "A")) ];
      };
    sim_sizes = pb "atax";
    test_sizes = pbt "atax";
  }

let bicg =
  {
    name = "bicg";
    program =
      {
        A.name = "bicg";
        size_params = [ "n"; "m" ];
        scalar_params = [];
        arrays =
          [ ("A", [ n "n"; n "m" ]); ("s", [ n "m" ]); ("q", [ n "n" ]);
            ("p", [ n "m" ]); ("r", [ n "n" ]) ];
        (* s[:] = r @ A ; q[:] = A @ p *)
        body =
          [ Assign (("s", []), Tdot (v "r", v "A"));
            Assign (("q", []), Tdot (v "A", v "p")) ];
      };
    sim_sizes = pb "bicg";
    test_sizes = pbt "bicg";
  }

let mvt =
  {
    name = "mvt";
    program =
      {
        A.name = "mvt";
        size_params = [ "n" ];
        scalar_params = [];
        arrays =
          [ ("A", [ n "n"; n "n" ]); ("x1", [ n "n" ]); ("x2", [ n "n" ]);
            ("y1", [ n "n" ]); ("y2", [ n "n" ]) ];
        (* x1 += A @ y1 ; x2 += y2 @ A *)
        body =
          [ Aug (Daisy_loopir.Ir.Vadd, ("x1", []), Tdot (v "A", v "y1"));
            Aug (Daisy_loopir.Ir.Vadd, ("x2", []), Tdot (v "y2", v "A")) ];
      };
    sim_sizes = pb "mvt";
    test_sizes = pbt "mvt";
  }

(* interior slice [1 : d-1] *)
let mid d = sl ~start:Expr.one (Expr.sub (n d) Expr.one)
(* shifted slices *)
let lo2 d = sl (Expr.sub (n d) (Expr.const 2)) (* [0 : d-2] *)
let hi2 d = sl ~start:(Expr.const 2) (n d) (* [2 : d] *)

let jacobi_2d =
  let stencil tgt src =
    Assign ((tgt, [ mid "n"; mid "n" ]),
        c 0.2
        *: (v src ~idx:[ mid "n"; mid "n" ]
            +: v src ~idx:[ mid "n"; lo2 "n" ]
            +: v src ~idx:[ mid "n"; hi2 "n" ]
            +: v src ~idx:[ hi2 "n"; mid "n" ]
            +: v src ~idx:[ lo2 "n"; mid "n" ]))
  in
  {
    name = "jacobi-2d";
    program =
      {
        A.name = "jacobi2d";
        size_params = [ "n"; "tsteps" ];
        scalar_params = [];
        arrays = [ ("A", [ n "n"; n "n" ]); ("B", [ n "n"; n "n" ]) ];
        body =
          [ For ("t", Expr.zero, n "tsteps", [ stencil "B" "A"; stencil "A" "B" ]) ];
      };
    sim_sizes = pb "jacobi-2d";
    test_sizes = pbt "jacobi-2d";
  }

let heat_3d =
  let m = mid "n" in
  let axis3 src d =
    (* second difference along dimension d of the interior *)
    let shift which k = if k = d then which else m in
    c 0.125
    *: (v src ~idx:(List.init 3 (shift (hi2 "n")))
        -: (c 2.0 *: v src ~idx:[ m; m; m ])
        +: v src ~idx:(List.init 3 (shift (lo2 "n"))))
  in
  let stencil tgt src =
    Assign ((tgt, [ m; m; m ]),
        axis3 src 0 +: axis3 src 1 +: axis3 src 2 +: v src ~idx:[ m; m; m ])
  in
  {
    name = "heat-3d";
    program =
      {
        A.name = "heat3d";
        size_params = [ "n"; "tsteps" ];
        scalar_params = [];
        arrays = [ ("A", [ n "n"; n "n"; n "n" ]); ("B", [ n "n"; n "n"; n "n" ]) ];
        body =
          [ For ("t", Expr.one, i1 (n "tsteps"),
                [ stencil "B" "A"; stencil "A" "B" ]) ];
      };
    sim_sizes = pb "heat-3d";
    test_sizes = pbt "heat-3d";
  }

let fdtd_2d =
  let all_but_first d = sl ~start:Expr.one (n d) in
  let all_but_last d = sl (Expr.sub (n d) Expr.one) in
  {
    name = "fdtd-2d";
    program =
      {
        A.name = "fdtd2d";
        size_params = [ "nx"; "ny"; "tmax" ];
        scalar_params = [];
        arrays =
          [ ("ex", [ n "nx"; n "ny" ]); ("ey", [ n "nx"; n "ny" ]);
            ("hz", [ n "nx"; n "ny" ]); ("fict", [ n "tmax" ]) ];
        body =
          [ For ("t", Expr.zero, n "tmax",
                [ Assign (("ey", [ pt Expr.zero; full ]),
                      v "fict" ~idx:[ pt (n "t") ]);
                  Aug (Daisy_loopir.Ir.Vsub,
                      ("ey", [ all_but_first "nx"; full ]),
                      c 0.5
                      *: (v "hz" ~idx:[ all_but_first "nx"; full ]
                          -: v "hz" ~idx:[ all_but_last "nx"; full ]));
                  Aug (Daisy_loopir.Ir.Vsub,
                      ("ex", [ full; all_but_first "ny" ]),
                      c 0.5
                      *: (v "hz" ~idx:[ full; all_but_first "ny" ]
                          -: v "hz" ~idx:[ full; all_but_last "ny" ]));
                  Aug (Daisy_loopir.Ir.Vsub,
                      ("hz", [ all_but_last "nx"; all_but_last "ny" ]),
                      c 0.7
                      *: (v "ex" ~idx:[ all_but_last "nx"; all_but_first "ny" ]
                          -: v "ex" ~idx:[ all_but_last "nx"; all_but_last "ny" ]
                          +: v "ey" ~idx:[ all_but_first "nx"; all_but_last "ny" ]
                          -: v "ey" ~idx:[ all_but_last "nx"; all_but_last "ny" ])) ]) ];
      };
    sim_sizes = pb "fdtd-2d";
    test_sizes = pbt "fdtd-2d";
  }

let correlation =
  {
    name = "correlation";
    program =
      {
        A.name = "correlation";
        size_params = [ "m"; "n" ];
        scalar_params = [];
        arrays =
          [ ("data", [ n "n"; n "m" ]); ("corr", [ n "m"; n "m" ]);
            ("mean", [ n "m" ]); ("stddev", [ n "m" ]) ];
        (* mean = np.mean(data, axis=0)
           stddev = sqrt(np.mean((data - mean)^2, axis=0)); clamped
           data = (data - mean) / (sqrt(n) * stddev)
           for i in range(m-1):
             corr[i, i] = 1
             corr[i, i+1:] = data[:, i] @ data[:, i+1:]
             corr[i+1:, i] = corr[i, i+1:]
           corr[m-1, m-1] = 1 *)
        body =
          [ Assign (("mean", []),
                Treduce (`Sum, 0, v "data") /: Tint (n "n"));
            Assign (("stddev", []),
                Tcall ("sqrt",
                    [ Treduce (`Sum, 0,
                          (v "data" -: v "mean") *: (v "data" -: v "mean"))
                      /: Tint (n "n") ]));
            (* NPBench resets tiny deviations; the clamp keeps the
               statement liftable, see DESIGN.md *)
            Assign (("stddev", []), Tcall ("max", [ v "stddev"; c 0.1 ]));
            Assign (("data", []),
                (v "data" -: v "mean")
                /: (Tcall ("sqrt", [ Tint (n "n") ]) *: v "stddev"));
            For ("i", Expr.zero, Expr.sub (n "m") Expr.one,
                [ Assign (("corr", [ pt (n "i"); pt (n "i") ]), c 1.0);
                  Assign (("corr", [ pt (n "i"); sl ~start:(i1 (n "i")) (n "m") ]),
                      Tdot (v "data" ~idx:[ full; pt (n "i") ],
                          v "data" ~idx:[ full; sl ~start:(i1 (n "i")) (n "m") ]));
                  Assign (("corr", [ sl ~start:(i1 (n "i")) (n "m"); pt (n "i") ]),
                      v "corr" ~idx:[ pt (n "i"); sl ~start:(i1 (n "i")) (n "m") ]) ]);
            Assign (("corr",
                  [ pt (Expr.sub (n "m") Expr.one); pt (Expr.sub (n "m") Expr.one) ]),
                c 1.0) ];
      };
    sim_sizes = pb "correlation";
    test_sizes = pbt "correlation";
  }

let covariance =
  {
    name = "covariance";
    program =
      {
        A.name = "covariance";
        size_params = [ "m"; "n" ];
        scalar_params = [];
        arrays =
          [ ("data", [ n "n"; n "m" ]); ("cov", [ n "m"; n "m" ]);
            ("mean", [ n "m" ]) ];
        body =
          [ Assign (("mean", []), Treduce (`Sum, 0, v "data") /: Tint (n "n"));
            Aug (Daisy_loopir.Ir.Vsub, ("data", []), v "mean");
            For ("i", Expr.zero, n "m",
                [ Assign (("cov", [ pt (n "i"); sl ~start:(n "i") (n "m") ]),
                      Tdot (v "data" ~idx:[ full; pt (n "i") ],
                          v "data" ~idx:[ full; sl ~start:(n "i") (n "m") ])
                      /: Tint (Expr.sub (n "n") Expr.one));
                  Assign (("cov", [ sl ~start:(n "i") (n "m"); pt (n "i") ]),
                      v "cov" ~idx:[ pt (n "i"); sl ~start:(n "i") (n "m") ]) ]) ];
      };
    sim_sizes = pb "covariance";
    test_sizes = pbt "covariance";
  }

let all : benchmark list =
  [
    gemm; two_mm; three_mm; syrk; syr2k; gemver; gesummv; atax; bicg; mvt;
    jacobi_2d; heat_3d; fdtd_2d; correlation; covariance;
  ]

let find name =
  match List.find_opt (fun b -> String.equal b.name name) all with
  | Some b -> b
  | None -> invalid_arg ("unknown npbench benchmark " ^ name)
