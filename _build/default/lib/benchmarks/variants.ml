(** Random generation of semantically-equivalent B variants (paper §4:
    "we randomly generate an alternative B variant for each benchmark based
    on different permutations and compositions").

    All rewrites are legality-checked (dependence-preserving), so B is
    equivalent by construction; the test suite additionally verifies
    equivalence by execution. *)

open Daisy_support
module Ir = Daisy_loopir.Ir
module Legality = Daisy_dependence.Legality
module Stride = Daisy_normalize.Stride
module Fusion = Daisy_transforms.Fusion
module Iter_norm = Daisy_normalize.Iter_norm

(** Pick a random legal, expressible permutation of the nest's perfect band
    (possibly the identity). *)
let random_permutation (rng : Rng.t) ~outer (nest : Ir.loop) : Ir.loop =
  let band, body = Legality.perfect_band nest in
  let n = List.length band in
  if n < 2 || n > 5 then nest
  else begin
    let vectors = Legality.band_dep_vectors ~outer band body in
    let legal_orders =
      List.filter
        (fun order ->
          let perm =
            Array.of_list
              (List.map
                 (fun (l : Ir.loop) ->
                   match
                     Util.list_index_of
                       (fun a (b : Ir.loop) -> a.Ir.lid = b.Ir.lid)
                       l band
                   with
                   | Some i -> i
                   | None -> assert false)
                 order)
          in
          Legality.legal_permutation vectors perm && Stride.expressible order)
        (Util.permutations band)
    in
    match legal_orders with
    | [] -> nest
    | orders -> Stride.rebuild_band (Rng.choose rng orders) body
  end

(* Unliftable nests (data-dependent guards, transposed self-aliases) are
   left untouched: the generator models a developer re-arranging the
   regular compute phases, and keeping these nests fixed ensures the A and
   B variants exercise the same lifting failures (paper §4.1). *)
let fixed (n : Ir.node) : bool = not (Daisy_scheduler.Common.liftable n)

(* Recursively permute bands: the top band, then the bands of the loops
   below it. *)
let rec permute_tree (rng : Rng.t) ~outer (nodes : Ir.node list) : Ir.node list
    =
  List.map
    (fun n ->
      match n with
      | Ir.Nloop _ when fixed n -> n
      | Ir.Nloop l ->
          let l =
            if Rng.float rng < 0.75 then random_permutation rng ~outer l else l
          in
          let band, body = Legality.perfect_band l in
          let body' = permute_tree rng ~outer:(outer @ band) body in
          Ir.Nloop (Stride.rebuild_band band body')
      | other -> other)
    nodes

(* Random fusion of adjacent loops at every level. *)
let rec fuse_tree (rng : Rng.t) ~outer (nodes : Ir.node list) : Ir.node list =
  let nodes =
    List.map
      (fun n ->
        match n with
        | Ir.Nloop _ when fixed n -> n
        | Ir.Nloop l ->
            Ir.Nloop { l with Ir.body = fuse_tree rng ~outer:(outer @ [ l ]) l.Ir.body }
        | other -> other)
      nodes
  in
  let rec sweep = function
    | (Ir.Nloop l1 as n1) :: (Ir.Nloop l2 as n2) :: rest
      when Rng.float rng < 0.6 && (not (fixed n1)) && not (fixed n2) -> (
        match Fusion.fuse ~outer l1 l2 with
        | Ok fused -> sweep (Ir.Nloop fused :: rest)
        | Error _ -> Ir.Nloop l1 :: sweep (Ir.Nloop l2 :: rest))
    | n :: rest -> n :: sweep rest
    | [] -> []
  in
  sweep nodes

(** [generate ~seed p] — a random semantically-equivalent restructuring of
    [p]: iterator normalization, random legal composition (fusion), then
    random legal permutations. *)
let generate ~(seed : string) (p : Ir.program) : Ir.program =
  let rng = Rng.of_string seed in
  let p = Iter_norm.run p in
  let body = fuse_tree rng ~outer:[] p.Ir.body in
  let body = permute_tree rng ~outer:[] body in
  { p with Ir.body }

(** The paper's Figure 1 explicit GEMM variants (different loop order in
    the update nest). *)
let gemm_variant_2_source =
  {|void gemm(int ni, int nj, int nk, double alpha, double beta,
           double C[ni][nj], double A[ni][nk], double B[nk][nj])
{
  for (int i = 0; i < ni; i++) {
    for (int j = 0; j < nj; j++)
      C[i][j] *= beta;
    for (int j = 0; j < nj; j++)
      for (int k = 0; k < nk; k++)
        C[i][j] += alpha * A[i][k] * B[k][j];
  }
}|}
