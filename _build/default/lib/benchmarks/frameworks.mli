(** Framework execution models for the Python experiment (paper §4.3):
    how NumPy, Numba and DaCe turn the same NPBench statements into
    executable loop nests. *)

type framework = Numpy | Numba | DaceF | DaisyPy | DaisyPyNoNorm

val name : framework -> string
val all : framework list

val lower : framework -> Daisy_arraylang.Alang.program -> Daisy_loopir.Ir.program
(** The daisy variants return the frontend program; run it through
    {!Daisy_scheduler.Daisy.schedule}. *)
