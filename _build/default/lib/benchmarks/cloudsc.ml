(** CLOUDSC case study (paper §5): a synthetic cloud-microphysics model
    with the structure of ECMWF's CLOUDSC scheme.

    The simulated volume is divided into vertical columns; [nblocks] blocks
    of [nproma] columns are fully data-parallel, and the vertical loop over
    [klev] levels is sequential (state propagates downward). Each vertical
    step runs several "physical equation" loop nests over the [nproma]
    dimension, full of scalar temporaries from inlined saturation formulas
    (FOEEWM / FOEDEM-style) — the pattern of paper Fig. 10a.

    Versions compared (Fig. 11/12): the hand-tuned {b Fortran} grouping,
    a {b C} port (more aggressive unrolling -> higher register pressure),
    {b DaCe} (dataflow: scalar expansion + maximal fission, no re-fusion),
    and {b daisy} (normalization + producer-consumer fusion + SIMD), which
    recovers the Fig. 10b structure.

    CLOUDSC runs at its real size (NPROMA = 128, KLEV = 137), so these
    experiments use an {e unscaled} Xeon-like cache configuration, unlike
    the scaled PolyBench runs. *)

module Ir = Daisy_loopir.Ir
module Config = Daisy_machine.Config
module Pipeline = Daisy_normalize.Pipeline
module Fusion = Daisy_transforms.Fusion

(** Full-size Xeon-like machine for the CLOUDSC experiments. *)
let config : Config.t =
  {
    Config.default with
    Config.l1 =
      { Config.name = "L1"; size_bytes = 32 * 1024; line_bytes = 64; assoc = 8 };
    l2 =
      { Config.name = "L2"; size_bytes = 256 * 1024; line_bytes = 64; assoc = 8 };
  }

let nproma = 128
let klev = 137
let default_nblocks = 16 (* scaled from the paper's 512; see DESIGN.md *)

(* The saturation formulas, written out as the inliner would: several exp
   calls and clamps per use. *)
let foeewm t =
  Printf.sprintf
    "(2.0 * exp(17.5 * (min(max(%s, 200.0), 320.0) - 273.0) / (%s - 36.0)))" t t

let foedem t =
  Printf.sprintf "(1.5 * exp(14.5 * (%s - 250.0) / (%s - 30.0)))" t t

(** One "erosion of clouds" equation section (paper Fig. 10a), as the
    original developers grouped it: everything in one [jl] loop. *)
let erosion_section =
  let t = "ZTP1[jk][jl]" and q = "ZQSMIX[jk][jl]" in
  Printf.sprintf
    {|    for (int jl = 0; jl < nproma; jl++) {
      double zqp = 1.0 / PAP[jk][jl];
      double zqsat = %s * zqp;
      zqsat = min(0.5, zqsat);
      double zcor = 1.0 / (1.0 - 0.6 * zqsat);
      zqsat = zqsat * zcor;
      double zcond = (%s - zqsat) / (1.0 + zqsat * zcor * %s);
      %s = %s + 0.15 * zcond;
      %s = %s - zcond;
      double zqsat1 = %s * zqp;
      zqsat1 = min(0.5, zqsat1);
      double zcor1 = 1.0 / (1.0 - 0.6 * zqsat1);
      zqsat1 = zqsat1 * zcor1;
      double zcond1 = (%s - zqsat1) / (1.0 + zqsat1 * zcor1 * %s);
      %s = %s + 0.15 * zcond1;
      %s = %s - zcond1;
    }|}
    (foeewm t) q (foedem t) t t q q (foeewm t) q (foedem t) t t q q

(** Standalone erosion kernel over the vertical loop (Table 1). *)
let erosion_source =
  Printf.sprintf
    {|void erosion(int klev, int nproma, double PAP[klev][nproma],
              double ZTP1[klev][nproma], double ZQSMIX[klev][nproma])
{
  for (int jk = 0; jk < klev; jk++) {
%s
  }
}|}
    erosion_section

let erosion_sizes ~iters = [ ("klev", iters); ("nproma", nproma) ]

(* Apply an unroll factor to all innermost loops (models "CLOUDSC is
   compiled with loop unrolling and function inlining" — the inlining is
   already explicit in the source text above). *)
let unroll_innermost (factor : int) (p : Ir.program) : Ir.program =
  let rec go nodes =
    List.map
      (fun n ->
        match n with
        | Ir.Nloop l ->
            if Ir.loops_in l.Ir.body = [] then
              Ir.Nloop
                { l with Ir.attrs = { l.Ir.attrs with Ir.unroll = factor } }
            else Ir.Nloop { l with Ir.body = go l.Ir.body }
        | other -> other)
      nodes
  in
  { p with Ir.body = go p.Ir.body }

let lower = Daisy_lang.Lower.program_of_string ~source:"cloudsc.c"

(** The original erosion kernel as compiled by default (unroll+inline). *)
let erosion_original ~iters : Ir.program * (string * int) list =
  let p = lower erosion_source in
  (unroll_innermost 4 p, erosion_sizes ~iters)

(** daisy's optimization of the erosion kernel (paper §5.1): maximal
    fission (with scalar expansion) + one-to-one producer-consumer fusion +
    vectorization — the Fig. 10b structure. *)
let erosion_optimized ~iters : Ir.program * (string * int) list =
  let sizes = erosion_sizes ~iters in
  let p = lower erosion_source in
  let p = Pipeline.normalize ~sizes p in
  let p, _ = Fusion.fuse_producer_consumer ~max_comps:6 p in
  let p = Daisy_scheduler.Baselines.vectorize_innermost p in
  (p, sizes)

(* ------------------------------------------------------------------ *)
(* The full model                                                       *)

(** Autoconversion-like section: rain formation with a threshold ramp. *)
let autoconv_section =
  {|    for (int jl = 0; jl < nproma; jl++) {
      double zlcrit = 1.0 / max(ZRHO[jk][jl], 0.1);
      double zexp = exp(0.5 * min(ZQL[jk][jl] * zlcrit, 8.0));
      double zrate = 1.5 * (1.0 - 1.0 / zexp);
      double zdep = min(zrate * ZQL[jk][jl], ZQL[jk][jl]);
      ZQL[jk][jl] = ZQL[jk][jl] - zdep;
      ZQR[jk][jl] = ZQR[jk][jl] + zdep;
      ZTP1[jk][jl] = ZTP1[jk][jl] + 0.05 * zdep;
    }|}

(** Ice-sedimentation-like section: flux through levels. *)
let sediment_section =
  {|    for (int jl = 0; jl < nproma; jl++) {
      double zfall = 0.2 * ZQI[jk][jl] * max(ZRHO[jk][jl], 0.1);
      double zkeep = ZQI[jk][jl] - zfall;
      ZQI[jk][jl] = max(zkeep, 0.0);
      ZFLUX[jk][jl] = ZFLUX[jk][jl] + zfall;
      ZTP1[jk][jl] = ZTP1[jk][jl] - 0.01 * zfall;
    }|}

(** Condensation-like section: latent-heat exchange, already written in a
    SIMD-friendly grouping (representative of the majority of the scheme's
    well-behaved sections). *)
let condense_section =
  {|    for (int jl = 0; jl < nproma; jl++) {
      double zfac = exp(12.0 * (ZTP1[jk][jl] - 260.0) / (ZTP1[jk][jl] - 20.0));
      double zdq = 0.1 * (ZQSMIX[jk][jl] - 0.2 * zfac);
      double zcl = max(zdq, 0.0);
      ZQL[jk][jl] = ZQL[jk][jl] + zcl;
      ZQSMIX[jk][jl] = ZQSMIX[jk][jl] - zcl;
      ZTP1[jk][jl] = ZTP1[jk][jl] + 0.08 * zcl;
    }|}

(** Evaporation-like section. *)
let evaporate_section =
  {|    for (int jl = 0; jl < nproma; jl++) {
      double zpres = max(PAP[jk][jl], 0.2);
      double zsub = exp(9.0 * (270.0 - ZTP1[jk][jl]) / zpres);
      double zev = min(0.05 * zsub * ZQR[jk][jl], ZQR[jk][jl]);
      ZQR[jk][jl] = ZQR[jk][jl] - zev;
      ZQSMIX[jk][jl] = ZQSMIX[jk][jl] + zev;
      ZTP1[jk][jl] = ZTP1[jk][jl] - 0.06 * zev;
    }|}

(** State propagation down the column: makes the vertical loop carry a
    dependence, exactly like the real scheme. *)
let propagate_section =
  {|    for (int jl = 0; jl < nproma; jl++) {
      ZTP1[jk][jl] = ZTP1[jk][jl] + 0.3 * (ZTP1[jk - 1][jl] - ZTP1[jk][jl]);
      ZQSMIX[jk][jl] = ZQSMIX[jk][jl] + 0.3 * (ZQSMIX[jk - 1][jl] - ZQSMIX[jk][jl]);
    }|}

let state_arrays =
  [ "PAP"; "ZTP1"; "ZQSMIX"; "ZQL"; "ZQR"; "ZQI"; "ZRHO"; "ZFLUX" ]

(* Rewrite 2-D section code for the 3-D block layout: "X[jk" -> "X[b][jk". *)
let blockify (src : string) : string =
  let replace_all ~pat ~by s =
    let plen = String.length pat in
    let buf = Buffer.create (String.length s) in
    let i = ref 0 in
    while !i <= String.length s - plen do
      if String.sub s !i plen = pat then begin
        Buffer.add_string buf by;
        i := !i + plen
      end
      else begin
        Buffer.add_char buf s.[!i];
        incr i
      end
    done;
    Buffer.add_string buf (String.sub s !i (String.length s - !i));
    Buffer.contents buf
  in
  List.fold_left
    (fun s a -> replace_all ~pat:(a ^ "[jk") ~by:(a ^ "[b][jk") s)
    src state_arrays

let full_source =
  Printf.sprintf
    {|void cloudsc(int nblocks, int klev, int nproma,
             double PAP[nblocks][klev][nproma], double ZTP1[nblocks][klev][nproma],
             double ZQSMIX[nblocks][klev][nproma], double ZQL[nblocks][klev][nproma],
             double ZQR[nblocks][klev][nproma], double ZQI[nblocks][klev][nproma],
             double ZRHO[nblocks][klev][nproma], double ZFLUX[nblocks][klev][nproma])
{
  for (int b = 0; b < nblocks; b++) {
    for (int jk = 1; jk < klev; jk++) {
%s
%s
%s
%s
%s
%s
    }
  }
}|}
    (blockify propagate_section)
    (blockify condense_section)
    (blockify erosion_section)
    (blockify autoconv_section)
    (blockify evaporate_section)
    (blockify sediment_section)

let full_sizes ~blocks =
  [ ("nblocks", blocks); ("klev", klev); ("nproma", nproma) ]

type version = Fortran | C | Dace | DaisyV

let string_of_version = function
  | Fortran -> "Fortran"
  | C -> "C"
  | Dace -> "DaCe"
  | DaisyV -> "daisy"

let all_versions = [ Fortran; C; Dace; DaisyV ]

(* Mark the outermost block loop parallel. *)
let parallel_blocks (p : Ir.program) : Ir.program =
  {
    p with
    Ir.body =
      List.map
        (fun n ->
          match n with
          | Ir.Nloop l ->
              Ir.Nloop
                { l with Ir.attrs = { l.Ir.attrs with Ir.parallel = true } }
          | other -> other)
        p.Ir.body;
  }

(* DaCe-style transient initialization: each expanded local array gets a
   zero-fill loop at the top of the body of the outermost loop containing
   its accesses (SDFG transients are allocated and initialized per state).
   Semantics-neutral: expansion guarantees a write-before-read. *)
let dace_transient_init (p : Ir.program) : Ir.program =
  let module Expr = Daisy_poly.Expr in
  let locals =
    List.filter (fun (a : Ir.array_decl) -> a.Ir.storage = Ir.Slocal) p.Ir.arrays
  in
  let touches name n =
    List.exists
      (fun (a : Ir.access) -> String.equal a.Ir.array name)
      (Ir.node_array_reads n @ Ir.node_array_writes n)
  in
  let init_node (a : Ir.array_decl) =
    match a.Ir.dims with
    | [ d ] ->
        let it = "ii_" ^ a.Ir.name in
        Some
          (Ir.Nloop
             (Ir.mk_loop ~iter:it ~lo:Expr.zero ~hi:(Expr.sub d Expr.one)
                [ Ir.Ncomp
                    (Ir.mk_comp
                       (Ir.Darray { Ir.array = a.Ir.name; indices = [ Expr.var it ] })
                       (Ir.Vfloat 0.0)) ]))
    | _ -> None
  in
  (* the outermost loop containing all accesses of each local *)
  let rec insert nodes =
    List.map
      (fun n ->
        match n with
        | Ir.Nloop l ->
            let inits =
              List.filter_map
                (fun (a : Ir.array_decl) ->
                  (* insert at l if some direct child subtree touches it but
                     no single child loop contains all accesses deeper *)
                  let children_touching =
                    List.filter (fun c -> touches a.Ir.name c) l.Ir.body
                  in
                  if List.length children_touching >= 2 then init_node a
                  else None)
                locals
            in
            let body = insert l.Ir.body in
            Ir.Nloop { l with Ir.body = inits @ body }
        | other -> other)
      nodes
  in
  { p with Ir.body = insert p.Ir.body }

(** Build one of the four versions of the full model. *)
let full_model (v : version) ~blocks : Ir.program * (string * int) list =
  let sizes = full_sizes ~blocks in
  let p = lower full_source in
  let p =
    match v with
    | Fortran ->
        (* hand-tuned: moderate unrolling, SIMD-friendly groupings *)
        p |> unroll_innermost 2 |> Daisy_scheduler.Baselines.vectorize_innermost
    | C ->
        (* straight port: aggressive unrolling -> higher register pressure *)
        p |> unroll_innermost 3 |> Daisy_scheduler.Baselines.vectorize_innermost
    | Dace ->
        (* the published DaCe port translates the Fortran structure to an
           SDFG as-is; its sequential codegen neither unrolls nor regroups,
           and zero-initializes transients per state execution *)
        let p = dace_transient_init p in
        Daisy_scheduler.Baselines.vectorize_innermost p
    | DaisyV ->
        (* normalization + producer-consumer fusion (Fig. 10b) *)
        let p = Pipeline.normalize ~sizes p in
        let p, _ = Fusion.fuse_producer_consumer ~max_comps:6 p in
        Daisy_scheduler.Baselines.vectorize_innermost p
  in
  (parallel_blocks p, sizes)
