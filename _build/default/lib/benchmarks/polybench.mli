(** The 15 parallelizable PolyBench benchmarks of the paper's evaluation
    (§4), in their reference (A variant) DSL form, plus extra kernels.
    [sim_sizes] are the paper's LARGE datasets scaled ~8x linearly
    (matching the scaled machine model); [test_sizes] are small shapes for
    interpreter-based equivalence checks. *)

type benchmark = {
  name : string;
  source : string;
  sim_sizes : (string * int) list;
  test_sizes : (string * int) list;
}

val gemm : benchmark
val two_mm : benchmark
val three_mm : benchmark
val syrk : benchmark
val syr2k : benchmark
val gemver : benchmark
val gesummv : benchmark
val atax : benchmark
val bicg : benchmark
val mvt : benchmark
val jacobi_2d : benchmark
val heat_3d : benchmark
val fdtd_2d : benchmark
val correlation : benchmark
val covariance : benchmark

val all : benchmark list
(** The 15 benchmarks of Figures 6/7, in display order. *)

val doitgen : benchmark
val trisolv : benchmark
val seidel_2d : benchmark

val extras : benchmark list
(** Kernels beyond the figure set (CLI + tests). *)

val find : string -> benchmark
(** Lookup by name across [all] and [extras]. *)

val program : benchmark -> Daisy_loopir.Ir.program
(** Parse and lower the A variant. *)
