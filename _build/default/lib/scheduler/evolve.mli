(** Evolutionary recipe search (paper §4): populations of recipes refined
    by mutation + crossover with the simulated runtime as fitness. *)

type fitness_cache = (int * string, float) Hashtbl.t

val search :
  ?population:int ->
  ?iterations:int ->
  ?cache:fitness_cache ->
  ?outer:Daisy_loopir.Ir.loop list ->
  Common.ctx ->
  Daisy_loopir.Ir.program ->
  Daisy_loopir.Ir.loop ->
  seeds:Daisy_transforms.Recipe.t list ->
  rng:Daisy_support.Rng.t ->
  Daisy_transforms.Recipe.t * float
(** Returns the best recipe and its fitness (simulated ms). *)
