(** Baseline compiler models: clang -O3, icc -O3 -parallel, and Polly —
    all operating {e without} a priori normalization (paper §4). *)

val privatizable_scalars :
  Daisy_loopir.Ir.program -> Daisy_loopir.Ir.loop -> Daisy_support.Util.SSet.t
(** Local scalars a compiler would privatize for the loop (accessed only
    inside it, written before read each iteration). *)

val vectorize_innermost : Daisy_loopir.Ir.program -> Daisy_loopir.Ir.program
(** Mark legal + profitable tree-innermost loops vectorized. *)

val clang_like : Daisy_loopir.Ir.program -> Daisy_loopir.Ir.program
(** Iterator canonicalization + innermost auto-vectorization. *)

val parallelize_outermost : Daisy_loopir.Ir.program -> Daisy_loopir.Ir.program

val icc_like : Daisy_loopir.Ir.program -> Daisy_loopir.Ir.program
(** clang plus outermost auto-parallelization. *)

val polly_like : Daisy_loopir.Ir.program -> Daisy_loopir.Ir.program
(** SCoP-gated greedy fusion + 32x tiling + outer parallelism + stripmine
    vectorization, keeping the incoming loop order (the modeled
    sensitivity the paper measures). *)
