(** Tiramisu-auto-scheduler model: tree search over scheduling recipes
    guided by a {e learned} (imperfect) cost model.

    As in the paper's setup: the adapter applies the maximal-fission
    criterion first and restricts the conversion to perfectly nested
    parallel loops — benchmarks with nests the adapter cannot convert are
    marked unsupported ("X" in Fig. 6). The search is Monte-Carlo-flavoured:
    candidate recipes are ranked by the analytic model multiplied by
    deterministic pseudo-noise (emulating learned-model error and the
    resulting local optima); the top three candidates are then evaluated
    with the {e real} model and the best applied, mirroring the paper's
    "we test the top three candidates". *)

open Daisy_support
module Ir = Daisy_loopir.Ir
module Recipe = Daisy_transforms.Recipe
module Legality = Daisy_dependence.Legality
module Fission = Daisy_normalize.Fission
module Iter_norm = Daisy_normalize.Iter_norm

type result = Scheduled of Ir.program | Unsupported of string

(** Deterministic multiplicative noise in [0.55, 1.8], keyed by the nest
    structure and the recipe — the same (nest, recipe) pair always gets the
    same error, like a fixed trained model. *)
let model_noise ~(seed : int) (nest : Ir.loop) (r : Recipe.t) : float =
  let key =
    Printf.sprintf "%d|%d|%s" seed
      (Ir.hash_structure [ Ir.Nloop nest ])
      (Recipe.to_string r)
  in
  let rng = Rng.of_string key in
  0.55 +. (Rng.float rng *. 1.25)

(** Candidate recipes for a band of [n] perfectly nested loops. *)
let candidate_recipes (n : int) : Recipe.t list =
  let interchanges =
    if n >= 2 && n <= 4 then
      List.filter_map
        (fun p -> if p = List.init n (fun i -> i) then None else Some [ Recipe.Interchange p ])
        (Util.permutations (List.init n (fun i -> i)))
    else []
  in
  let tilings =
    if n >= 2 then
      [ [ Recipe.Tile (List.init (min n 3) (fun i -> (i, 32))) ];
        [ Recipe.Tile (List.init (min n 3) (fun i -> (i, 64))) ] ]
    else []
  in
  let base = [ []; [ Recipe.Vectorize ]; [ Recipe.Parallelize 0 ];
               [ Recipe.Parallelize 0; Recipe.Vectorize ] ] in
  let combined =
    List.concat_map
      (fun i -> [ i @ [ Recipe.Parallelize 0; Recipe.Vectorize ]; i ])
      interchanges
    @ List.concat_map
        (fun t -> [ t @ [ Recipe.Parallelize 0; Recipe.Vectorize ]; t ])
        tilings
  in
  base @ interchanges @ tilings @ combined

(** Check the adapter restriction: perfectly nested, unguarded, affine. *)
let convertible (nest : Ir.loop) : bool =
  let _, body = Legality.perfect_band nest in
  List.for_all
    (function Ir.Ncomp c -> c.Ir.guard = None | _ -> false)
    body
  && Common.scop_compatible (Ir.Nloop nest)

(** Schedule one program. [seed] differentiates "training runs". *)
let schedule ?(seed = 1) (ctx : Common.ctx) (p : Ir.program) : result =
  (* the adapter: maximal fission first *)
  let p = Fission.run_fixpoint (Iter_norm.run p) in
  let unsupported = ref None in
  let body =
    List.map
      (fun n ->
        match n with
        | Ir.Ncomp _ | Ir.Ncall _ -> n
        | Ir.Nloop nest ->
            if not (convertible nest) then begin
              if !unsupported = None then
                unsupported :=
                  Some
                    (Fmt.str "nest over %s not perfectly nested/affine"
                       nest.Ir.iter);
              n
            end
            else begin
              let band, _ = Legality.perfect_band nest in
              let nb = List.length band in
              let candidates = candidate_recipes nb in
              (* rank by noisy model *)
              let scored =
                List.map
                  (fun r ->
                    match Recipe.apply ~outer:[] nest r with
                    | Error _ -> (infinity, r, nest)
                    | Ok nest' ->
                        let t =
                          Common.nest_runtime_ms ctx p (Ir.Nloop nest')
                        in
                        (t *. model_noise ~seed nest r, r, nest'))
                  candidates
              in
              let ranked =
                List.sort (fun (a, _, _) (b, _, _) -> compare a b) scored
              in
              let top3 = Util.take 3 ranked in
              (* evaluate the top three with the real model *)
              let best =
                List.fold_left
                  (fun best (_, _, nest') ->
                    let t = Common.nest_runtime_ms ctx p (Ir.Nloop nest') in
                    match best with
                    | Some (bt, _) when bt <= t -> best
                    | _ -> Some (t, nest'))
                  None top3
              in
              match best with
              | Some (_, nest') -> Ir.Nloop nest'
              | None -> n
            end)
      p.Ir.body
  in
  match !unsupported with
  | Some reason -> Unsupported reason
  | None -> Scheduled { p with Ir.body }

(** Recipe proposals used to seed daisy's evolutionary search ("the
    candidate optimizations for each loop nest are seeded using the
    Tiramisu auto-scheduler"). *)
let proposals (nest : Ir.loop) : Recipe.t list =
  let band, _ = Legality.perfect_band nest in
  Util.take 12 (candidate_recipes (List.length band))
