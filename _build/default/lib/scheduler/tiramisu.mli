(** Tiramisu-auto-scheduler model: tree search over recipes guided by an
    imperfect (noise-injected) cost model, restricted to perfectly nested
    affine loops after maximal fission — the paper's adapter. Benchmarks
    with unconvertible nests are {!Unsupported} ("X" in Fig. 6). *)

type result = Scheduled of Daisy_loopir.Ir.program | Unsupported of string

val schedule : ?seed:int -> Common.ctx -> Daisy_loopir.Ir.program -> result

val proposals : Daisy_loopir.Ir.loop -> Daisy_transforms.Recipe.t list
(** Recipe proposals used to seed daisy's evolutionary search. *)
