(** Baseline compiler models: clang -O3, icc -O3 -parallel, and Polly.

    These operate {e without} a priori normalization and reproduce the
    characteristic behaviours the paper measures against:
    - clang: innermost-loop auto-vectorization only, no restructuring;
    - icc: clang plus outermost-loop auto-parallelization;
    - Polly: SCoP-gated greedy fusion + fixed tiling + OpenMP outer
      parallelism + stripmine vectorization, {e keeping the source loop
      order} — its ILP scheduler covers only part of the schedule space
      (Baghdadi et al.), which is exactly why it is sensitive to the A/B
      variation the paper studies. *)

open Daisy_support
module Ir = Daisy_loopir.Ir
module Legality = Daisy_dependence.Legality
module Lt = Daisy_transforms.Loop_transforms
module Fusion = Daisy_transforms.Fusion
module Iter_norm = Daisy_normalize.Iter_norm

(* Scalars a compiler would privatize for a given loop: local scalars whose
   every program access is inside the loop and whose first in-order access
   in the body is an unguarded write. *)
let privatizable_scalars (p : Ir.program) (l : Ir.loop) : Util.SSet.t =
  let locals = Util.SSet.of_list p.Ir.local_scalars in
  (* in-order accesses per scalar: (is_write, guarded) list *)
  let first_access nodes =
    let tbl = Hashtbl.create 8 in
    let record s info =
      if not (Hashtbl.mem tbl s) then Hashtbl.replace tbl s info
    in
    let rec go nodes =
      List.iter
        (fun n ->
          match n with
          | Ir.Ncomp c ->
              (* reads are evaluated before the write commits *)
              List.iter
                (fun s -> record s (false, c.Ir.guard <> None))
                (Ir.comp_scalar_reads c);
              List.iter
                (fun s -> record s (true, c.Ir.guard <> None))
                (Ir.comp_scalar_writes c)
          | Ir.Ncall _ -> ()
          | Ir.Nloop inner -> go inner.Ir.body)
        nodes
    in
    go nodes;
    tbl
  in
  let inside = first_access l.Ir.body in
  let used_in_subtree s =
    Hashtbl.mem inside s
  in
  let accesses_outside s =
    (* any access to s in the program outside l's subtree *)
    let rec scan in_l nodes acc =
      List.fold_left
        (fun acc n ->
          match n with
          | Ir.Ncomp c ->
              if in_l then acc
              else
                acc
                || List.mem s (Ir.comp_scalar_reads c)
                || List.mem s (Ir.comp_scalar_writes c)
          | Ir.Ncall _ -> acc
          | Ir.Nloop inner ->
              scan (in_l || inner.Ir.lid = l.Ir.lid) inner.Ir.body acc)
        acc nodes
    in
    scan false p.Ir.body false
  in
  Util.SSet.filter
    (fun s ->
      used_in_subtree s
      && (not (accesses_outside s))
      && match Hashtbl.find_opt inside s with
         | Some (true, false) -> true (* first access: unguarded write *)
         | _ -> false)
    locals

(* Mark legal+profitable innermost loops vectorized (no restructuring);
   privatizable scalars do not block vectorization, as in real compilers. *)
let vectorize_innermost (p : Ir.program) : Ir.program =
  let rec go ~outer nodes =
    List.map
      (fun n ->
        match n with
        | Ir.Nloop l ->
            let is_innermost = Ir.loops_in l.Ir.body = [] in
            if is_innermost then
              let ignore_containers = privatizable_scalars p l in
              if
                Common.vector_profitable l
                && (not
                      (Legality.loop_carries_dependence ~ignore_containers
                         ~outer l)
                   || Legality.carried_only_by_reductions ~ignore_containers
                        ~outer l)
              then
                Ir.Nloop
                  { l with Ir.attrs = { l.Ir.attrs with Ir.vectorized = true } }
              else Ir.Nloop l
            else Ir.Nloop { l with Ir.body = go ~outer:(outer @ [ l ]) l.Ir.body }
        | other -> other)
      nodes
  in
  { p with Ir.body = go ~outer:[] p.Ir.body }

(** clang -O3: iterator canonicalization + innermost auto-vectorization. *)
let clang_like (p : Ir.program) : Ir.program =
  vectorize_innermost (Iter_norm.run p)

(* Parallelize the outermost loop of each top-level nest when it carries no
   dependence. *)
let parallelize_outermost (p : Ir.program) : Ir.program =
  Common.map_top_nests
    (fun l ->
      let ignore_containers = privatizable_scalars p l in
      if not (Legality.loop_carries_dependence ~ignore_containers ~outer:[] l)
      then
        Ir.Nloop { l with Ir.attrs = { l.Ir.attrs with Ir.parallel = true } }
      else Ir.Nloop l)
    p

(** icc -O3 -parallel: clang plus outer auto-parallelization. *)
let icc_like (p : Ir.program) : Ir.program =
  parallelize_outermost (clang_like p)

(** Polly with -polly-parallel -polly-tiling -polly-vectorizer=stripmine.

    Per top-level nest: if the nest is a SCoP, tile the fully-permutable
    band prefix with 32x tiles, parallelize the outermost parallel loop and
    stripmine-vectorize; non-SCoP nests fall back to clang treatment. The
    incoming loop order is preserved. *)
let polly_like (p : Ir.program) : Ir.program =
  let p = Iter_norm.run p in
  (* greedy maximal fusion of adjacent compatible top-level nests *)
  let p, _ = Fusion.fuse_greedy p in
  let optimize_nest (l : Ir.loop) : Ir.node =
    if not (Common.scop_compatible (Ir.Nloop l)) then
      (* non-SCoP: plain -O3 path *)
      match Common.map_top_nests (fun x -> Ir.Nloop x)
              (vectorize_innermost { p with Ir.body = [ Ir.Nloop l ] })
      with
      | { Ir.body = [ n ]; _ } -> n
      | _ -> Ir.Nloop l
    else begin
      let band, _ = Legality.perfect_band l in
      let depth = List.length band in
      let nest = l in
      (* tiling: try to tile the whole band with 32s; legality-checked *)
      let nest =
        if depth >= 2 then
          match Lt.tile ~outer:[] nest (List.init depth (fun i -> (i, 32))) with
          | Ok nest' -> nest'
          | Error _ -> nest
        else nest
      in
      (* parallelize the outermost parallelizable band position *)
      let nest =
        let band', _ = Legality.perfect_band nest in
        let rec try_pos pos =
          if pos >= List.length band' then nest
          else
            match Lt.parallelize ~allow_atomic:false ~outer:[] nest pos with
            | Ok nest' -> nest'
            | Error _ -> try_pos (pos + 1)
        in
        try_pos 0
      in
      (* stripmine vectorization of the (tree-)innermost loops *)
      match
        vectorize_innermost { p with Ir.body = [ Ir.Nloop nest ] }
      with
      | { Ir.body = [ n ]; _ } -> n
      | _ -> Ir.Nloop nest
    end
  in
  Common.map_top_nests optimize_nest p
