(** Evolutionary recipe search (paper §4, "Seeding a Scheduling Database").

    Epoch 1 seeds the population from Tiramisu-style proposals; it is
    refined through mutation + selection with the simulated runtime as
    fitness. Later epochs re-seed from the best recipes of the most similar
    loop nests (transfer between nests) — implemented in
    {!Seed.seed_database}. *)

open Daisy_support
module Ir = Daisy_loopir.Ir
module Recipe = Daisy_transforms.Recipe
module Legality = Daisy_dependence.Legality

type fitness_cache = (int * string, float) Hashtbl.t

let eval_cached (cache : fitness_cache) (ctx : Common.ctx) ~outer
    (p : Ir.program) (nest : Ir.loop) (r : Recipe.t) : float =
  let key = (Ir.hash_structure [ Common.wrap_outer outer (Ir.Nloop nest) ],
             Recipe.to_string r) in
  match Hashtbl.find_opt cache key with
  | Some t -> t
  | None ->
      let t =
        match Recipe.apply ~outer nest r with
        | Error _ -> infinity
        | Ok nest' ->
            Common.nest_runtime_ms ctx p
              (Common.wrap_outer outer (Ir.Nloop nest'))
      in
      Hashtbl.replace cache key t;
      t

(** [search ctx p nest ~seeds ~rng] — refine a population of recipes for
    [nest]. Returns the best recipe and its fitness (ms). *)
let search ?(population = 8) ?(iterations = 3) ?(cache = Hashtbl.create 64)
    ?(outer = []) (ctx : Common.ctx) (p : Ir.program) (nest : Ir.loop)
    ~(seeds : Recipe.t list) ~(rng : Rng.t) : Recipe.t * float =
  let band, _ = Legality.perfect_band nest in
  let band_size = List.length band in
  let fitness r = eval_cached cache ctx ~outer p nest r in
  let initial =
    Util.dedup ~eq:Recipe.equal (([] : Recipe.t) :: seeds) |> Util.take population
  in
  let rec refine gen pop =
    if gen >= iterations then pop
    else begin
      let scored =
        List.map (fun r -> (fitness r, r)) pop
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      let survivors = Util.take (max 2 (population / 2)) scored in
      let parents = List.map snd survivors in
      let children =
        List.concat_map
          (fun r ->
            [ Recipe.mutate rng band_size r;
              Recipe.crossover rng r (Rng.choose rng parents) ])
          parents
      in
      let next =
        Util.dedup ~eq:Recipe.equal (parents @ children) |> Util.take population
      in
      refine (gen + 1) next
    end
  in
  let final = refine 0 initial in
  let best =
    List.fold_left
      (fun (bt, br) r ->
        let t = fitness r in
        if t < bt then (t, r) else (bt, br))
      (fitness [], [])
      final
  in
  (snd best, fst best)
