lib/scheduler/evolve.mli: Common Daisy_loopir Daisy_support Daisy_transforms Hashtbl
