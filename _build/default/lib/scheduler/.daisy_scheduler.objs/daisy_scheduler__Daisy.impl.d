lib/scheduler/daisy.ml: Common Daisy_blas Daisy_dependence Daisy_loopir Daisy_normalize Daisy_support Daisy_transforms Database Fmt List Printf String Util
