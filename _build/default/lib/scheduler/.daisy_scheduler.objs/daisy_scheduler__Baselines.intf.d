lib/scheduler/baselines.mli: Daisy_loopir Daisy_support
