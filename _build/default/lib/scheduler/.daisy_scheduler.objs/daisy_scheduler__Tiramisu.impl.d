lib/scheduler/tiramisu.ml: Common Daisy_dependence Daisy_loopir Daisy_normalize Daisy_support Daisy_transforms Fmt List Printf Rng Util
