lib/scheduler/common.mli: Daisy_loopir Daisy_machine
