lib/scheduler/database.ml: Daisy_embedding Daisy_loopir Daisy_transforms Fmt List
