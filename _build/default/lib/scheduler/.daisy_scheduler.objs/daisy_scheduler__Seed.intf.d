lib/scheduler/seed.mli: Common Daisy_loopir Database
