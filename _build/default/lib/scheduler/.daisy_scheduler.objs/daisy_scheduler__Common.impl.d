lib/scheduler/common.ml: Daisy_dependence Daisy_loopir Daisy_machine Daisy_poly Daisy_support List String
