lib/scheduler/evolve.ml: Common Daisy_dependence Daisy_loopir Daisy_support Daisy_transforms Hashtbl List Rng Util
