lib/scheduler/daisy.mli: Common Daisy_loopir Daisy_transforms Database Fmt
