lib/scheduler/database.mli: Daisy_embedding Daisy_loopir Daisy_transforms Fmt
