lib/scheduler/baselines.ml: Common Daisy_dependence Daisy_loopir Daisy_normalize Daisy_support Daisy_transforms Hashtbl List Util
