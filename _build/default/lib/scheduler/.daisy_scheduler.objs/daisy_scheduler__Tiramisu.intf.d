lib/scheduler/tiramisu.mli: Common Daisy_loopir Daisy_transforms
