lib/scheduler/seed.ml: Common Daisy_blas Daisy_embedding Daisy_loopir Daisy_normalize Daisy_support Daisy_transforms Database Evolve Hashtbl List Printf Rng Tiramisu
