(** Database seeding (paper §4): collect all loop nests from the normalized
    A variants; BLAS-3 nests get idiom-detection recipes (handled directly
    by {!Daisy_blas.Patterns} at scheduling time); the rest are optimized by
    the evolutionary search — epoch 1 seeded from Tiramisu-style proposals,
    epochs 2 and 3 re-seeded from the current best recipes of the ten most
    similar loop nests (Euclidean distance of performance embeddings). *)

open Daisy_support
module Ir = Daisy_loopir.Ir
module Recipe = Daisy_transforms.Recipe
module Pipeline = Daisy_normalize.Pipeline
module Patterns = Daisy_blas.Patterns
module Embedding = Daisy_embedding.Embedding

type nest_state = {
  label : string;
  program : Ir.program;  (** single-unit program for evaluation *)
  outer : Ir.loop list;  (** sequential loops enclosing the unit *)
  nest : Ir.loop;
  embedding : Embedding.t;
  mutable best : Recipe.t;
  mutable best_ms : float;
}

(** [seed_database ctx ~db programs] — normalize each (label, program),
    drop BLAS-matched nests, evolve recipes for the rest, store them. *)
let seed_database ?(epochs = 3) ?(population = 8) ?(iterations = 3)
    (ctx : Common.ctx) ~(db : Database.t)
    (programs : (string * Ir.program) list) : unit =
  let cache = Hashtbl.create 256 in
  let states =
    List.concat_map
      (fun (label, p) ->
        let normalized = Pipeline.normalize ~sizes:ctx.sizes p in
        (* BLAS nests are served by idiom detection, not the database *)
        let remaining, _ = Patterns.replace_all normalized in
        Common.program_units remaining
        |> List.mapi (fun i (outer, nest) ->
               {
                 label = Printf.sprintf "%s#%d" label i;
                 program =
                   Common.single_nest_program remaining
                     (Common.wrap_outer outer (Ir.Nloop nest));
                 outer;
                 nest;
                 embedding = Embedding.of_node (Ir.Nloop nest);
                 best = [];
                 best_ms = infinity;
               }))
      programs
  in
  (* epoch 1: Tiramisu-style seeds *)
  List.iter
    (fun st ->
      let rng = Rng.of_string ("seed-epoch1-" ^ st.label) in
      let seeds = Tiramisu.proposals st.nest in
      let best, ms =
        Evolve.search ~population ~iterations ~cache ~outer:st.outer ctx
          st.program st.nest ~seeds ~rng
      in
      st.best <- best;
      st.best_ms <- ms)
    states;
  (* epochs 2..n: re-seed from the ten most similar nests *)
  for epoch = 2 to epochs do
    List.iter
      (fun st ->
        let rng = Rng.of_string (Printf.sprintf "seed-epoch%d-%s" epoch st.label) in
        let neighbours =
          Embedding.nearest 10
            (List.filter_map
               (fun o ->
                 if o == st then None else Some (o.embedding, o.best))
               states)
            st.embedding
          |> List.map snd
        in
        let seeds = st.best :: neighbours in
        let best, ms =
          Evolve.search ~population ~iterations ~cache ~outer:st.outer ctx
            st.program st.nest ~seeds ~rng
        in
        if ms < st.best_ms then begin
          st.best <- best;
          st.best_ms <- ms
        end)
      states
  done;
  List.iter
    (fun st -> Database.add db ~source:st.label ~nest:st.nest ~recipe:st.best)
    states
