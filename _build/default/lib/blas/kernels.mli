(** Reference implementations of the BLAS kernels used by idiom detection —
    the semantics of {!Daisy_loopir.Ir.Ncall} nodes. Matrices are row-major
    flat arrays; see the implementation header for the call conventions. *)

val idx : int -> int -> int -> int
(** [idx cols i j] — row-major linear index. *)

val gemm :
  m:int -> n:int -> k:int -> alpha:float ->
  float array -> float array -> float array -> unit
(** [gemm ~m ~n ~k ~alpha a b c] — [c += alpha * a * b]. *)

val gemv :
  m:int -> n:int -> alpha:float -> float array -> float array -> float array -> unit
(** [y += alpha * A x]. *)

val gemvt :
  m:int -> n:int -> alpha:float -> float array -> float array -> float array -> unit
(** [y += alpha * A^T x]. *)

val syrk : n:int -> m:int -> alpha:float -> float array -> float array -> unit
(** Triangular update [C[i][j] += alpha * A[i][k] * A[j][k]], [j <= i]. *)

val syr2k :
  n:int -> m:int -> alpha:float -> float array -> float array -> float array -> unit

val flops : string -> int list -> float
(** FLOPs performed by a kernel at given dims (machine-model accounting). *)

val min_bytes : string -> int list -> float
(** Bytes moved from memory by a perfectly blocked implementation. *)
