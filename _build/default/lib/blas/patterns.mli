(** BLAS idiom detection on normalized loop nests (paper §4): replace
    nests matching gemm / gemv / gemvt / syrk / syr2k with library calls.
    Detection operates on the canonical form produced by normalization —
    which is exactly why normalization matters here (§4.3). *)

val detect_nest : Daisy_loopir.Ir.loop -> Daisy_loopir.Ir.libcall option

val replace_all : Daisy_loopir.Ir.program -> Daisy_loopir.Ir.program * int
(** Replace every matching top-level nest; returns the count. *)
