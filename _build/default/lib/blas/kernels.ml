(** Reference implementations of the BLAS kernels used by idiom detection.

    These define the semantics of {!Daisy_loopir.Ir.Ncall} nodes. The
    interpreter executes them directly; the machine model costs them with a
    tuned-library profile (blocked, vectorized, near-peak for BLAS-3).

    All matrices are row-major flat [float array]s.

    Call conventions (matching {!Patterns}):
    - ["gemm"]  args [C; A; B], scalars [alpha], dims [m; n; k]:
      [C[i][j] += alpha * A[i][k] * B[k][j]]
    - ["gemv"]  args [y; A; x], scalars [alpha], dims [m; n]:
      [y[i] += alpha * A[i][j] * x[j]]
    - ["gemvt"] args [y; A; x], scalars [alpha], dims [m; n]:
      [y[j] += alpha * A[i][j] * x[i]]  (transposed access)
    - ["syrk"]  args [C; A], scalars [alpha], dims [n; m]:
      [C[i][j] += alpha * A[i][k] * A[j][k]] for [j <= i]
    - ["syr2k"] args [C; A; B], scalars [alpha], dims [n; m]:
      [C[i][j] += alpha*A[i][k]*B[j][k] + alpha*B[i][k]*A[j][k]] for [j <= i]
*)

let idx cols i j = (i * cols) + j

let gemm ~m ~n ~k ~alpha (a : float array) (b : float array) (c : float array) =
  (* blocked j-k-i order is irrelevant for semantics; plain triple loop *)
  for i = 0 to m - 1 do
    for p = 0 to k - 1 do
      let aip = alpha *. a.(idx k i p) in
      for j = 0 to n - 1 do
        c.(idx n i j) <- c.(idx n i j) +. (aip *. b.(idx n p j))
      done
    done
  done

let gemv ~m ~n ~alpha (a : float array) (x : float array) (y : float array) =
  for i = 0 to m - 1 do
    let acc = ref 0.0 in
    for j = 0 to n - 1 do
      acc := !acc +. (a.(idx n i j) *. x.(j))
    done;
    y.(i) <- y.(i) +. (alpha *. !acc)
  done

let gemvt ~m ~n ~alpha (a : float array) (x : float array) (y : float array) =
  for i = 0 to m - 1 do
    let xi = alpha *. x.(i) in
    for j = 0 to n - 1 do
      y.(j) <- y.(j) +. (a.(idx n i j) *. xi)
    done
  done

(** Triangular update: [j <= i] only, as in PolyBench's SYRK. *)
let syrk ~n ~m ~alpha (a : float array) (c : float array) =
  for i = 0 to n - 1 do
    for j = 0 to i do
      let acc = ref 0.0 in
      for k = 0 to m - 1 do
        acc := !acc +. (a.(idx m i k) *. a.(idx m j k))
      done;
      c.(idx n i j) <- c.(idx n i j) +. (alpha *. !acc)
    done
  done

let syr2k ~n ~m ~alpha (a : float array) (b : float array) (c : float array) =
  for i = 0 to n - 1 do
    for j = 0 to i do
      let acc = ref 0.0 in
      for k = 0 to m - 1 do
        acc :=
          !acc +. (a.(idx m i k) *. b.(idx m j k)) +. (b.(idx m i k) *. a.(idx m j k))
      done;
      c.(idx n i j) <- c.(idx n i j) +. (alpha *. !acc)
    done
  done

(** Floating-point operations performed by each kernel (used by the machine
    model's FLOP accounting). *)
let flops kernel dims =
  match (kernel, dims) with
  | "gemm", [ m; n; k ] -> 2. *. float m *. float n *. float k
  | ("gemv" | "gemvt"), [ m; n ] -> 2. *. float m *. float n
  | "syrk", [ n; m ] -> float n *. (float n +. 1.) *. float m
  | "syr2k", [ n; m ] -> 2. *. float n *. (float n +. 1.) *. float m
  | _ -> invalid_arg ("Kernels.flops: unknown kernel " ^ kernel)

(** Bytes moved from memory assuming a perfectly blocked implementation
    (each operand streamed a bounded number of times). *)
let min_bytes kernel dims =
  let d = 8. in
  match (kernel, dims) with
  | "gemm", [ m; n; k ] ->
      d *. ((float m *. float k) +. (float k *. float n) +. (2. *. float m *. float n))
  | ("gemv" | "gemvt"), [ m; n ] ->
      d *. ((float m *. float n) +. float n +. (2. *. float m))
  | "syrk", [ n; m ] -> d *. ((float n *. float m) +. float n *. float n)
  | "syr2k", [ n; m ] -> d *. ((2. *. float n *. float m) +. (float n *. float n))
  | _ -> invalid_arg ("Kernels.min_bytes: unknown kernel " ^ kernel)
