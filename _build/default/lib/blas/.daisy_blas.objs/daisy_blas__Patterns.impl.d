lib/blas/patterns.ml: Daisy_dependence Daisy_loopir Daisy_poly Daisy_support List Option String Util
