lib/blas/kernels.ml: Array
