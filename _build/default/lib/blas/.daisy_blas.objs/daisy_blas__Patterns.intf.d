lib/blas/patterns.mli: Daisy_loopir
