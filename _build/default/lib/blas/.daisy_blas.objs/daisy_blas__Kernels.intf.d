lib/blas/kernels.mli:
