(** BLAS idiom detection on normalized loop nests.

    The daisy scheduler replaces loop nests matching BLAS kernels with
    library calls ("For each loop nest corresponding to a BLAS-3 kernel, we
    add an optimization recipe to perform idiom detection, i.e., replacing
    the loop nest with the matching BLAS library call", paper §4).

    Detection operates on the canonical form produced by normalization:
    iterator-normalized perfect bands with a single reduction computation.
    This is precisely why normalization matters here — the paper shows BLAS
    lifting fails without it on 2mm, 3mm and gemm (§4.3). *)

open Daisy_support
module Ir = Daisy_loopir.Ir
module Expr = Daisy_poly.Expr
module Legality = Daisy_dependence.Legality

let ( let* ) = Option.bind

(* Flatten a multiplication tree into factors. *)
let rec mul_factors (e : Ir.vexpr) : Ir.vexpr list =
  match e with
  | Ir.Vbin (Ir.Vmul, a, b) -> mul_factors a @ mul_factors b
  | e -> [ e ]

(* Flatten an addition tree into terms. *)
let rec add_terms (e : Ir.vexpr) : Ir.vexpr list =
  match e with
  | Ir.Vbin (Ir.Vadd, a, b) -> add_terms a @ add_terms b
  | e -> [ e ]

(* A "product term": scalar factors and array reads, nothing else. *)
type product = { scalars : Ir.vexpr list; reads : Ir.access list }

let product_of (e : Ir.vexpr) : product option =
  let factors = mul_factors e in
  List.fold_left
    (fun acc f ->
      let* p = acc in
      match f with
      | Ir.Vfloat _ | Ir.Vscalar _ -> Some { p with scalars = p.scalars @ [ f ] }
      | Ir.Vread a -> Some { p with reads = p.reads @ [ a ] }
      | _ -> None)
    (Some { scalars = []; reads = [] })
    factors

let alpha_of (scalars : Ir.vexpr list) : Ir.vexpr =
  match scalars with
  | [] -> Ir.Vfloat 1.0
  | s :: rest -> List.fold_left (fun acc x -> Ir.Vbin (Ir.Vmul, acc, x)) s rest

(* indices must be exactly [Var a; Var b] *)
let two_vars (a : Ir.access) : (string * string) option =
  match a.Ir.indices with
  | [ Expr.Var x; Expr.Var y ] -> Some (x, y)
  | _ -> None

let one_var (a : Ir.access) : string option =
  match a.Ir.indices with [ Expr.Var x ] -> Some x | _ -> None

(* trip count of a normalized loop *)
let trip (l : Ir.loop) : Expr.t = Expr.add l.Ir.hi Expr.one

(* rectangular: 0-based and the bound does not reference band iterators *)
let rectangular (band : Ir.loop list) (l : Ir.loop) : bool =
  let iters = Util.SSet.of_list (List.map (fun (x : Ir.loop) -> x.Ir.iter) band) in
  Expr.equal l.Ir.lo Expr.zero
  && Util.SSet.is_empty (Util.SSet.inter iters (Expr.free_vars l.Ir.hi))

(* triangular inner loop: j in 0 .. i *)
let triangular_on (l : Ir.loop) (i : string) : bool =
  Expr.equal l.Ir.lo Expr.zero && Expr.equal l.Ir.hi (Expr.var i)

let find_loop (band : Ir.loop list) (iter : string) : Ir.loop option =
  List.find_opt (fun (l : Ir.loop) -> String.equal l.Ir.iter iter) band

let mk_call kernel args scalar_args dims writes_to =
  { Ir.kid = Ir.fresh_id (); kernel; args; scalar_args; dims; writes_to }

(* ------------------------------------------------------------------ *)
(* Individual matchers; all receive the band and the destination access. *)

(* C[i][j] (+)= alpha * A[i][k] * B[k][j], rectangular -> gemm
   C[i][j] (+)= alpha * A[i][k] * A[j][k], j <= i      -> syrk *)
let try_level3 band (dest : Ir.access) (p : product) : Ir.libcall option =
  let* i, j = two_vars dest in
  if List.length band <> 3 then None
  else
    let* kl =
      List.find_opt (fun (l : Ir.loop) -> l.Ir.iter <> i && l.Ir.iter <> j) band
    in
    let k = kl.Ir.iter in
    let* li = find_loop band i in
    let* lj = find_loop band j in
    if not (rectangular band li && rectangular band kl) then None
    else
      match p.reads with
      | [ ra; rb ] -> (
          (* factors may appear in either order *)
          let classify (r : Ir.access) =
            let* v1, v2 = two_vars r in
            Some (v1, v2)
          in
          let* pa = classify ra in
          let* pb = classify rb in
          let r1, (a1, a2), r2, (b1, b2) =
            (* prefer the (i, k) read first *)
            if fst pa = i then (ra, pa, rb, pb) else (rb, pb, ra, pa)
          in
          if rectangular band lj && a1 = i && a2 = k && b1 = k && b2 = j then
            Some
              (mk_call "gemm"
                 [ dest.Ir.array; r1.Ir.array; r2.Ir.array ]
                 [ alpha_of p.scalars ]
                 [ trip li; trip lj; trip kl ]
                 [ dest.Ir.array ])
          else if
            triangular_on lj i
            && String.equal r1.Ir.array r2.Ir.array
            && a1 = i && a2 = k && b1 = j && b2 = k
          then
            Some
              (mk_call "syrk"
                 [ dest.Ir.array; r1.Ir.array ]
                 [ alpha_of p.scalars ]
                 [ trip li; trip kl ]
                 [ dest.Ir.array ])
          else None)
      | _ -> None

(* y[i] += alpha * A[i][j] * x[j] -> gemv
   y[j] += alpha * A[i][j] * x[i] -> gemvt *)
let try_level2 band (dest : Ir.access) (p : product) : Ir.libcall option =
  let* dv = one_var dest in
  if List.length band <> 2 then None
  else
    let* ol = List.find_opt (fun (l : Ir.loop) -> l.Ir.iter <> dv) band in
    let* dl = find_loop band dv in
    if not (List.for_all (rectangular band) band) then None
    else
      match p.reads with
      | [ r1; r2 ] -> (
          let mat, vec =
            if List.length r1.Ir.indices = 2 then (r1, r2) else (r2, r1)
          in
          let* m1, m2 = two_vars mat in
          let* vv = one_var vec in
          if m1 = dv && m2 = ol.Ir.iter && vv = ol.Ir.iter then
            Some
              (mk_call "gemv"
                 [ dest.Ir.array; mat.Ir.array; vec.Ir.array ]
                 [ alpha_of p.scalars ]
                 [ trip dl; trip ol ]
                 [ dest.Ir.array ])
          else if m1 = ol.Ir.iter && m2 = dv && vv = ol.Ir.iter then
            Some
              (mk_call "gemvt"
                 [ dest.Ir.array; mat.Ir.array; vec.Ir.array ]
                 [ alpha_of p.scalars ]
                 [ trip ol; trip dl ]
                 [ dest.Ir.array ])
          else None)
      | _ -> None

(* C[i][j] += a*A[i][k]*B[j][k] + a*B[i][k]*A[j][k], j <= i -> syr2k *)
let try_syr2k band (dest : Ir.access) (p1 : product) (p2 : product) :
    Ir.libcall option =
  let* i, j = two_vars dest in
  if List.length band <> 3 then None
  else
    let* kl =
      List.find_opt (fun (l : Ir.loop) -> l.Ir.iter <> i && l.Ir.iter <> j) band
    in
    let k = kl.Ir.iter in
    let* li = find_loop band i in
    let* lj = find_loop band j in
    if not (rectangular band li && rectangular band kl && triangular_on lj i)
    then None
    else
      let arrays_of p =
        (* factors may appear in either order: find the (i,k) read and the
           (j,k) read *)
        match p.reads with
        | [ x; y ] ->
            let pattern (r : Ir.access) =
              let* r1, r2 = two_vars r in
              if r1 = i && r2 = k then Some `IK
              else if r1 = j && r2 = k then Some `JK
              else None
            in
            let* px = pattern x in
            let* py = pattern y in
            (match (px, py) with
            | `IK, `JK -> Some (x.Ir.array, y.Ir.array)
            | `JK, `IK -> Some (y.Ir.array, x.Ir.array)
            | _ -> None)
        | _ -> None
      in
      let* a1, b1 = arrays_of p1 in
      let* a2, b2 = arrays_of p2 in
      if String.equal a1 b2 && String.equal b1 a2 && not (String.equal a1 b1)
      then
        Some
          (mk_call "syr2k"
             [ dest.Ir.array; a1; b1 ]
             [ alpha_of p1.scalars ]
             [ trip li; trip kl ]
             [ dest.Ir.array ])
      else None

(** Try to match one nest against the BLAS patterns. The nest must be a
    perfect band whose body is a single unguarded reduction computation. *)
let detect_nest (nest : Ir.loop) : Ir.libcall option =
  let band, body = Legality.perfect_band nest in
  match body with
  | [ Ir.Ncomp c ] when c.Ir.guard = None -> (
      match c.Ir.dest with
      | Ir.Dscalar _ -> None
      | Ir.Darray dest -> (
          let terms = add_terms c.Ir.rhs in
          let dest_read, others =
            List.partition (fun t -> t = Ir.Vread dest) terms
          in
          match (dest_read, others) with
          | [ _ ], [ t1 ] -> (
              match product_of t1 with
              | None -> None
              | Some p -> (
                  match try_level3 band dest p with
                  | Some call -> Some call
                  | None -> try_level2 band dest p))
          | [ _ ], [ t1; t2 ] -> (
              match (product_of t1, product_of t2) with
              | Some p1, Some p2 -> try_syr2k band dest p1 p2
              | _ -> None)
          | _ -> None))
  | _ -> None

(** Replace every matching top-level nest with its library call. Returns
    the rewritten program and the number of replacements. *)
let replace_all (p : Ir.program) : Ir.program * int =
  let count = ref 0 in
  let body =
    List.map
      (fun n ->
        match n with
        | Ir.Nloop l -> (
            match detect_nest l with
            | Some call ->
                incr count;
                Ir.Ncall call
            | None -> n)
        | other -> other)
      p.Ir.body
  in
  ({ p with Ir.body }, !count)
