(** Reuse-distance analysis.

    The paper motivates normalization by its effect on the {e reuse
    distance} (Beyls & D'Hollander): the number of distinct cache lines
    touched between two accesses to the same line. This module computes
    reuse-distance histograms from the same address streams the cache
    simulator consumes, giving a machine-independent view of what the
    normalization passes do to locality.

    The implementation uses the classic stack-distance algorithm over a
    last-access list with logarithmic-bucketed distances (exact small
    distances, powers of two beyond), which is accurate enough for
    histogram shapes and keeps the cost linear-ish. *)

open Daisy_support
module Ir = Daisy_loopir.Ir

type histogram = {
  buckets : float array;
      (** bucket [i] counts reuses with distance in [2^(i-1), 2^i); bucket 0
          is distance 0 (consecutive accesses to the same line) *)
  mutable cold : float;  (** first-touch accesses (infinite distance) *)
  mutable total : float;
}

let n_buckets = 24

let create_histogram () =
  { buckets = Array.make n_buckets 0.0; cold = 0.0; total = 0.0 }

let bucket_of_distance d =
  if d <= 0 then 0
  else min (n_buckets - 1) (1 + int_of_float (Float.log2 (float_of_int d)))

(** Mean reuse distance over finite reuses (using bucket midpoints). *)
let mean_distance (h : histogram) : float =
  let sum = ref 0.0 and count = ref 0.0 in
  Array.iteri
    (fun i c ->
      let midpoint =
        if i = 0 then 0.0 else Float.pow 2.0 (float_of_int i -. 0.5)
      in
      sum := !sum +. (c *. midpoint);
      count := !count +. c)
    h.buckets;
  if !count = 0.0 then 0.0 else !sum /. !count

(** Fraction of reuses with distance below [lines] (i.e. hits in a
    fully-associative LRU cache of that many lines). *)
let hit_fraction (h : histogram) ~(lines : int) : float =
  let cutoff = bucket_of_distance lines in
  let hits = ref 0.0 in
  for i = 0 to cutoff - 1 do
    hits := !hits +. h.buckets.(i)
  done;
  if h.total = 0.0 then 0.0 else !hits /. h.total

(* ------------------------------------------------------------------ *)
(* Stack-distance tracker                                               *)

type tracker = {
  mutable stack : int list;  (** lines, most recently used first *)
  hist : histogram;
  max_stack : int;
}

let create ?(max_stack = 1 lsl 16) () =
  { stack = []; hist = create_histogram (); max_stack }

(** Record one line access. *)
let touch (t : tracker) (line : int) : unit =
  t.hist.total <- t.hist.total +. 1.0;
  let rec remove acc depth = function
    | [] -> None
    | l :: rest when l = line -> Some (depth, List.rev_append acc rest)
    | l :: rest -> remove (l :: acc) (depth + 1) rest
  in
  match remove [] 0 t.stack with
  | Some (depth, rest) ->
      let b = bucket_of_distance depth in
      t.hist.buckets.(b) <- t.hist.buckets.(b) +. 1.0;
      t.stack <- line :: rest
  | None ->
      t.hist.cold <- t.hist.cold +. 1.0;
      t.stack <- line :: t.stack;
      (* bound the stack: drop the coldest tail *)
      if List.length t.stack > t.max_stack then
        t.stack <- Util.take t.max_stack t.stack

(* ------------------------------------------------------------------ *)
(* Program analysis                                                     *)

(** [of_program config p ~sizes ?sample_outer ()] — reuse-distance
    histogram of the whole program's line-access stream. *)
let of_program (config : Config.t) (p : Ir.program)
    ~(sizes : (string * int) list) ?(sample_outer = 0) () : histogram =
  let param_env =
    List.fold_left
      (fun m (k, v) -> Util.SMap.add k v m)
      Util.SMap.empty sizes
  in
  let layout = Trace.layout_of p ~sizes:param_env in
  let tracker = create () in
  let line_shift =
    let rec go s n = if n <= 1 then s else go (s + 1) (n / 2) in
    go 0 config.Config.l1.Config.line_bytes
  in
  (* reuse the trace walker through a recording cache: simplest is to walk
     comps manually with the same compiled accesses *)
  let rec walk env nodes =
    List.iter
      (fun n ->
        match n with
        | Ir.Ncall _ -> ()
        | Ir.Ncomp c ->
            let eval e = Daisy_poly.Expr.eval env e in
            let touch_access (a : Ir.access) =
              let dims = layout.Trace.dims_of a.Ir.array in
              if Array.length dims > 0 then begin
                let idx = List.map eval a.Ir.indices in
                let linear =
                  List.fold_left2
                    (fun acc i d -> (acc * d) + i)
                    0 idx (Array.to_list dims)
                in
                let addr = layout.Trace.base_of a.Ir.array + (8 * linear) in
                touch tracker (addr lsr line_shift)
              end
            in
            List.iter touch_access
              (Util.dedup ~eq:( = ) (Ir.comp_array_reads c));
            List.iter touch_access (Ir.comp_array_writes c)
        | Ir.Nloop l ->
            let lo = Daisy_poly.Expr.eval env l.Ir.lo in
            let hi = Daisy_poly.Expr.eval env l.Ir.hi in
            let trip =
              if l.Ir.step > 0 then max 0 (((hi - lo) / l.Ir.step) + 1)
              else max 0 (((lo - hi) / -l.Ir.step) + 1)
            in
            let sample =
              if sample_outer > 0 && trip > sample_outer then sample_outer
              else trip
            in
            let i = ref lo in
            for _ = 1 to sample do
              walk (Util.SMap.add l.Ir.iter !i env) l.Ir.body;
              i := !i + l.Ir.step
            done)
      nodes
  in
  walk param_env p.Ir.body;
  tracker.hist

let pp_histogram ppf (h : histogram) =
  Fmt.pf ppf "@[<v>reuses %.0f (cold %.0f), mean distance %.1f lines@,"
    h.total h.cold (mean_distance h);
  Array.iteri
    (fun i c ->
      if c > 0.0 then
        let label =
          if i = 0 then "0"
          else Printf.sprintf "<%d" (Util.pow 2 i)
        in
        Fmt.pf ppf "  %-8s %8.0f  %s@," label c
          (String.make (int_of_float (40.0 *. c /. h.total)) '#'))
    h.buckets;
  Fmt.pf ppf "@]"
