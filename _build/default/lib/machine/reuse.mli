(** Reuse-distance analysis (Beyls & D'Hollander): a machine-independent
    view of what normalization does to locality — the paper's §2
    motivation. Distances are LRU stack distances over cache lines with
    logarithmic bucketing. *)

type histogram = {
  buckets : float array;
  mutable cold : float;  (** first-touch accesses *)
  mutable total : float;
}

val n_buckets : int
val create_histogram : unit -> histogram
val bucket_of_distance : int -> int

val mean_distance : histogram -> float
(** Mean over finite reuses, in cache lines (bucket midpoints). *)

val hit_fraction : histogram -> lines:int -> float
(** Fraction of reuses that would hit a fully-associative LRU cache of
    [lines] lines. *)

type tracker

val create : ?max_stack:int -> unit -> tracker
val touch : tracker -> int -> unit

val of_program :
  Config.t ->
  Daisy_loopir.Ir.program ->
  sizes:(string * int) list ->
  ?sample_outer:int ->
  unit ->
  histogram

val pp_histogram : histogram Fmt.t
