lib/machine/trace.ml: Array Cache Config Daisy_blas Daisy_loopir Daisy_poly Daisy_support Float Hashtbl List String Util
