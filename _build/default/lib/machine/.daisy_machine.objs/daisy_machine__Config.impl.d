lib/machine/config.ml:
