lib/machine/cache.mli: Config
