lib/machine/cost.ml: Cache Config Daisy_loopir Float Fmt List Trace
