lib/machine/reuse.mli: Config Daisy_loopir Fmt
