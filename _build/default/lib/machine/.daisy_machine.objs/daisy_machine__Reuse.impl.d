lib/machine/reuse.ml: Array Config Daisy_loopir Daisy_poly Daisy_support Float Fmt List Printf String Trace Util
