lib/machine/cost.mli: Config Daisy_loopir Fmt Trace
