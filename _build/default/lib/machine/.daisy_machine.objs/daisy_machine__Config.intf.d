lib/machine/config.mli:
