(** Roofline-style cost model: convert trace counters into cycles and
    simulated seconds. Per top-level nest the runtime is the max of FP
    issue, L1 port, L1<->L2 bandwidth and shared DRAM bandwidth, plus
    register-spill latency, atomic updates and parallel fork/join
    overheads. Shared DRAM bandwidth produces the strong-scaling
    saturation of the CLOUDSC study. *)

type nest_cost = {
  counters : Trace.counters;
  threads_used : float;
  cycles : float;
}

type report = {
  nests : nest_cost list;
  total_cycles : float;
  seconds : float;
  total_flops : float;
  mflops : float;
  l1_loads : float;
  l1_evicts : float;
  l2_misses : float;
}

val nest_cycles : Config.t -> threads:int -> Trace.counters -> nest_cost

val evaluate :
  Config.t ->
  Daisy_loopir.Ir.program ->
  sizes:(string * int) list ->
  ?threads:int ->
  ?sample_outer:int ->
  unit ->
  report
(** Trace and cost a program ([sample_outer] > 0 samples the outermost loop
    of each top-level nest and extrapolates). *)

val milliseconds : report -> float
val pp_report : report Fmt.t
