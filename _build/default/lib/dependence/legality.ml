(** Legality predicates built on the dependence tests: loop permutation,
    parallelization, vectorization and reduction recognition.

    Permutation works on the {e perfect band} of a nest — the maximal chain
    of loops where each loop's body is exactly one inner loop. After maximal
    fission, the vast majority of nests are perfectly nested, which is what
    makes the paper's enumeration-based stride minimization tractable.

    All predicates are conservative: "false" may be a false negative (a
    legal transformation rejected because the tests could not prove it),
    never the other way around. *)

open Daisy_support
module Ir = Daisy_loopir.Ir

(** [perfect_band nest] — the maximal perfectly-nested chain of loops
    starting at [nest], and the body of the innermost band loop. *)
let rec perfect_band (nest : Ir.loop) : Ir.loop list * Ir.node list =
  match nest.Ir.body with
  | [ Ir.Nloop inner ] ->
      let band, body = perfect_band inner in
      (nest :: band, body)
  | body -> ([ nest ], body)

(** All execution-order-valid dependence direction vectors over the loops of
    [band], for computations in [body] (which may contain further non-band
    loops), with [outer] loops held equal.

    Every returned vector is lexicographically non-negative: its first
    non-[Eq] component is [Lt]. All-[Eq] vectors represent loop-independent
    dependences; they are reported too (they matter for fusion, not for
    permutation). *)
let band_dep_vectors ~(outer : Ir.loop list) (band : Ir.loop list)
    (body : Ir.node list) : Test.direction list list =
  let comps = Ir.comps_with_context body in
  let indexed = List.mapi (fun i (inner, c) -> (i, inner, c)) comps in
  let n_outer = List.length outer in
  let vectors = ref [] in
  let add v = if not (List.mem v !vectors) then vectors := v :: !vectors in
  let flip v =
    List.map
      (function Test.Lt -> Test.Gt | Test.Gt -> Test.Lt | Test.Eq -> Test.Eq)
      v
  in
  List.iter
    (fun (i, inner_a, ca) ->
      List.iter
        (fun (j, inner_b, cb) ->
          if j >= i then begin
            let src_ctx = outer @ band @ inner_a in
            let dst_ctx = outer @ band @ inner_b in
            let common = outer @ band in
            let vs = Test.comp_directions ~common (src_ctx, ca) (dst_ctx, cb) in
            List.iter
              (fun v ->
                let outer_part = Util.take n_outer v in
                if List.for_all (fun d -> d = Test.Eq) outer_part then begin
                  let bv = Util.drop n_outer v in
                  match Test.src_executes_first bv with
                  | Some true -> add bv
                  | Some false ->
                      (* the dependence actually flows cb -> ca *)
                      if i <> j then add (flip bv)
                      (* self-pair: mirrored vectors already enumerated *)
                  | None ->
                      (* loop-independent within the band *)
                      if i <> j then add bv
                end)
              vs
          end)
        indexed)
    indexed;
  !vectors

(** [legal_permutation vectors perm] — is applying permutation [perm] to the
    band legal? [perm] maps new position [p] to old position [perm.(p)].
    Legal iff every permuted dependence vector remains lexicographically
    non-negative. *)
let legal_permutation (vectors : Test.direction list list) (perm : int array) :
    bool =
  List.for_all
    (fun v ->
      let varr = Array.of_list v in
      let permuted = Array.to_list (Array.map (fun old -> varr.(old)) perm) in
      match List.find_opt (fun d -> d <> Test.Eq) permuted with
      | None | Some Test.Lt -> true
      | Some _ -> false)
    vectors

(** [parallel_positions vectors n] — band positions whose loop carries no
    dependence (safely parallelizable and vectorizable). Position [p]
    carries a dependence iff some vector has its first non-[Eq] at [p]. *)
let parallel_positions (vectors : Test.direction list list) (n : int) :
    bool array =
  let parallel = Array.make n true in
  List.iter
    (fun v ->
      let rec first_non_eq k = function
        | [] -> None
        | Test.Eq :: rest -> first_non_eq (k + 1) rest
        | _ :: _ -> Some k
      in
      match first_non_eq 0 v with
      | Some k when k < n -> parallel.(k) <- false
      | _ -> ())
    vectors;
  parallel

(** [loop_carries_dependence ~outer l] — does loop [l] carry any dependence
    between the computations of its subtree? Conflicts through containers
    in [ignore_containers] (privatizable scalars) are disregarded. *)
let loop_carries_dependence ?(ignore_containers = Util.SSet.empty)
    ~(outer : Ir.loop list) (l : Ir.loop) : bool =
  let comps = Ir.comps_with_context l.Ir.body in
  let common = outer @ [ l ] in
  let n_outer = List.length outer in
  List.exists
    (fun (inner_a, ca) ->
      List.exists
        (fun (inner_b, cb) ->
          let src_ctx = common @ inner_a and dst_ctx = common @ inner_b in
          let vs =
            Test.comp_directions ~ignore_containers ~common (src_ctx, ca)
              (dst_ctx, cb)
          in
          List.exists
            (fun v ->
              List.for_all (fun d -> d = Test.Eq) (Util.take n_outer v)
              && List.nth v n_outer <> Test.Eq)
            vs)
        comps)
    comps

(* ------------------------------------------------------------------ *)
(* Reductions                                                           *)

(** [reduction_op c] — [Some op] when [c] is an update of its destination
    with an associative-commutative operator: [dest = dest op e] (or
    [e op dest]) where [e] does not read [dest]. *)
let reduction_op (c : Ir.comp) : Ir.vbinop option =
  let dest_container =
    match c.Ir.dest with
    | Ir.Darray a -> a.Ir.array
    | Ir.Dscalar s -> s
  in
  let reads_dest e =
    List.exists
      (fun (a : Ir.access) -> String.equal a.Ir.array dest_container)
      (Ir.vexpr_reads e)
    || List.exists (String.equal dest_container) (Ir.vexpr_scalars e)
  in
  let same_cell e =
    match (c.Ir.dest, e) with
    | Ir.Darray a, Ir.Vread b -> a = b
    | Ir.Dscalar s, Ir.Vscalar s' -> String.equal s s'
    | _ -> false
  in
  match c.Ir.rhs with
  | Ir.Vbin (((Ir.Vadd | Ir.Vmul) as op), l, r) when same_cell l && not (reads_dest r)
    -> Some op
  | Ir.Vbin ((Ir.Vadd as op), l, r) when same_cell r && not (reads_dest l) ->
      Some op
  | _ -> None

let is_reduction_comp c = reduction_op c <> None

(** [carried_only_by_reductions ~outer l] — [l] carries dependences, but all
    of them are self-dependences of reduction computations on their own
    destination (so the loop can run in parallel with atomic updates, the
    expensive fallback the paper observes on correlation/covariance). *)
let carried_only_by_reductions ?(ignore_containers = Util.SSet.empty)
    ~(outer : Ir.loop list) (l : Ir.loop) : bool =
  let comps = Ir.comps_with_context l.Ir.body in
  let common = outer @ [ l ] in
  let n_outer = List.length outer in
  let carried_pairs = ref [] in
  List.iter
    (fun (inner_a, ca) ->
      List.iter
        (fun (inner_b, cb) ->
          let src_ctx = common @ inner_a and dst_ctx = common @ inner_b in
          let vs =
            Test.comp_directions ~ignore_containers ~common (src_ctx, ca)
              (dst_ctx, cb)
          in
          if
            List.exists
              (fun v ->
                List.for_all (fun d -> d = Test.Eq) (Util.take n_outer v)
                && List.nth v n_outer <> Test.Eq)
              vs
          then carried_pairs := (ca, cb) :: !carried_pairs)
        comps)
    comps;
  !carried_pairs <> []
  && List.for_all
       (fun ((ca : Ir.comp), (cb : Ir.comp)) ->
         ca.Ir.cid = cb.Ir.cid && is_reduction_comp ca)
       !carried_pairs
