(** Memory references of computations. Scalars are rank-0 containers
    (empty subscript list), so every pair of their instances conflicts —
    the conservative behaviour scalar expansion later removes. *)

type kind = Read | Write

type t = { kind : kind; container : string; indices : Daisy_poly.Expr.t list }

val of_comp : Daisy_loopir.Ir.comp -> t list
(** The single write plus all reads (rhs and guard). *)

val conflict : t -> t -> bool
(** Same container and at least one write. *)

val pp : t Fmt.t
