(** Statement-level dependence graph of a loop body and its SCC
    condensation — the engine behind maximal loop fission (Kennedy-style
    loop distribution). *)

type t = {
  units : Daisy_loopir.Ir.node array;  (** the top-level nodes of the body *)
  edges : Daisy_support.Util.ISet.t array;  (** adjacency: successors *)
}

val build : outer:Daisy_loopir.Ir.loop list -> loop:Daisy_loopir.Ir.loop -> t
(** Dependence graph of the units of [loop]'s body; dependences carried by
    an [outer] loop are ignored (distribution cannot reorder them). *)

val sccs : t -> int list list
(** Strongly connected components in topological order of the
    condensation. *)

val distribution_groups :
  outer:Daisy_loopir.Ir.loop list -> loop:Daisy_loopir.Ir.loop -> int list list
(** The maximal fission of the loop's body: atomic unit-index groups in a
    legal execution order (stable w.r.t. source order). *)
