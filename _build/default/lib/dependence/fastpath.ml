(** Classic dependence fast paths: ZIV, strong SIV and the GCD test.

    These run before the Fourier–Motzkin machinery as quick filters — the
    standard staged organization (Goff–Kennedy–Tseng). Each test answers on
    a {e single subscript pair} under the convention that iterators of the
    two instances are distinct variables related by the probe:

    - {b ZIV} (zero index variable): both subscripts constant — they either
      always or never alias.
    - {b Strong SIV}: both subscripts are [a*i + c] with the same
      coefficient on the same single iterator — alias iff the distance
      [(c2 - c1) / a] is integral (and within the loop extent, checked by
      the caller's domain constraints).
    - {b GCD}: a linear Diophantine equation [sum a_i x_i = c] has a
      solution iff [gcd(a_i) | c].

    Results are three-valued: [`Independent] is definitive, [`Dependent]
    means "aliases for some iteration pair" (direction still needs FM),
    [`Unknown] defers to the exact test. *)

open Daisy_support
module Expr = Daisy_poly.Expr
module Affine = Daisy_poly.Affine

type verdict = [ `Independent | `Dependent | `Unknown ]

(** [ziv a1 a2] — both affine subscripts constant? *)
let ziv (a1 : Affine.t) (a2 : Affine.t) : verdict =
  match (Affine.to_const a1, Affine.to_const a2) with
  | Some c1, Some c2 -> if c1 = c2 then `Dependent else `Independent
  | _ -> `Unknown

(** [strong_siv ~extent a1 a2] — subscripts [a*i + c1] and [a*i' + c2] on
    one shared iterator name with equal coefficients. The dependence
    distance is [(c1 - c2) / a]; no alias when it is non-integral or
    provably outside the iteration extent (when the extent is known). *)
let strong_siv ?(extent : int option) (a1 : Affine.t) (a2 : Affine.t) : verdict
    =
  let vars1 = Affine.vars a1 and vars2 = Affine.vars a2 in
  match (Util.SSet.elements vars1, Util.SSet.elements vars2) with
  | [ v1 ], [ v2 ] when String.equal v1 v2 ->
      let a = Affine.coeff v1 a1 in
      if a <> Affine.coeff v2 a2 || a = 0 then `Unknown
      else
        let diff = a1.Affine.const - a2.Affine.const in
        if diff mod a <> 0 then `Independent
        else
          let distance = abs (diff / a) in
          (match extent with
          | Some e when distance >= e -> `Independent
          | _ -> `Dependent)
  | _ -> `Unknown

(** [gcd_test a1 a2] — the equation [a1(i...) = a2(i'...)] with all
    iterator occurrences as free integer unknowns: solvable iff
    [gcd(coefficients) | constant difference]. Shared symbolic parameters
    cancel only when their coefficients match; otherwise they stay as
    unknowns (conservative). *)
let gcd_test (a1 : Affine.t) (a2 : Affine.t) : verdict =
  let d = Affine.sub a1 a2 in
  match Affine.to_const d with
  | Some 0 -> `Dependent
  | Some _ -> `Independent
  | None ->
      let g = Affine.coeff_gcd d in
      if g > 1 && d.Affine.const mod g <> 0 then `Independent else `Unknown

(** Combined fast path for one subscript pair. [extent] bounds the shared
    iterator's trip count when known. The two affine forms use the {e
    same} iterator names for corresponding loops (pre-renaming). *)
let subscript_pair ?extent (a1 : Affine.t) (a2 : Affine.t) : verdict =
  match ziv a1 a2 with
  | (`Independent | `Dependent) as v -> v
  | `Unknown -> (
      match strong_siv ?extent a1 a2 with
      | (`Independent | `Dependent) as v -> v
      | `Unknown -> gcd_test a1 a2)

(** [independent_accesses ?extents idx1 idx2] — [true] when some dimension
    of the two subscript vectors can never alias (so the whole access pair
    is independent). [extents] maps iterator names to trip counts. *)
let independent_accesses ?(extents = Util.SMap.empty) (idx1 : Expr.t list)
    (idx2 : Expr.t list) : bool =
  List.length idx1 = List.length idx2
  && List.exists2
       (fun e1 e2 ->
         match (Affine.of_expr e1, Affine.of_expr e2) with
         | Some a1, Some a2 ->
             let extent =
               match
                 ( Util.SSet.elements (Affine.vars a1),
                   Util.SSet.elements (Affine.vars a2) )
               with
               | [ v1 ], [ v2 ] when String.equal v1 v2 ->
                   Util.SMap.find_opt v1 extents
               | _ -> None
             in
             subscript_pair ?extent a1 a2 = `Independent
         | _ -> false)
       idx1 idx2
