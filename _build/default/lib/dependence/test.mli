(** Pairwise dependence testing: feasible direction vectors via
    hierarchical probing of the Fourier–Motzkin emptiness test
    (Goff–Kennedy–Tseng style). Non-affine pairs conservatively return all
    directions. *)

type direction = Lt | Eq | Gt

val string_of_direction : direction -> string
val pp_dirvec : direction list Fmt.t

val directions :
  common:Daisy_loopir.Ir.loop list ->
  src_ctx:Daisy_loopir.Ir.loop list ->
  dst_ctx:Daisy_loopir.Ir.loop list ->
  Refs.t ->
  Refs.t ->
  direction list list
(** Feasible direction vectors over the [common] loops (a prefix of both
    contexts) for conflicting instances of the two references; [Lt] means
    the source instance executes earlier at that level. *)

val comp_directions :
  ?ignore_containers:Daisy_support.Util.SSet.t ->
  common:Daisy_loopir.Ir.loop list ->
  Daisy_loopir.Ir.loop list * Daisy_loopir.Ir.comp ->
  Daisy_loopir.Ir.loop list * Daisy_loopir.Ir.comp ->
  direction list list
(** Union of feasible vectors over all conflicting reference pairs between
    two computations; containers in [ignore_containers] (privatizable
    scalars) are excluded from conflict detection. *)

val distance_at :
  common:Daisy_loopir.Ir.loop list ->
  src_ctx:Daisy_loopir.Ir.loop list ->
  dst_ctx:Daisy_loopir.Ir.loop list ->
  Refs.t ->
  Refs.t ->
  Daisy_loopir.Ir.loop ->
  int option
(** Constant dependence distance at one common loop, when unique. *)

val leading_direction : direction list -> direction

val src_executes_first : direction list -> bool option
(** [Some true]: source instance runs first; [Some false]: after; [None]:
    same iteration (textual order decides). *)
