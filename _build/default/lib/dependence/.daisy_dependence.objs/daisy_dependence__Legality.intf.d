lib/dependence/legality.mli: Daisy_loopir Daisy_support Test
