lib/dependence/refs.mli: Daisy_loopir Daisy_poly Fmt
