lib/dependence/legality.ml: Array Daisy_loopir Daisy_support List String Test Util
