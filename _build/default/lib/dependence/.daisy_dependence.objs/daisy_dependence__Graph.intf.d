lib/dependence/graph.mli: Daisy_loopir Daisy_support
