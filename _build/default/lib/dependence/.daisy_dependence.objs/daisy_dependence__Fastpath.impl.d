lib/dependence/fastpath.ml: Daisy_poly Daisy_support List String Util
