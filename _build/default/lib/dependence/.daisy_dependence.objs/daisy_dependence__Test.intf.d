lib/dependence/test.mli: Daisy_loopir Daisy_support Fmt Refs
