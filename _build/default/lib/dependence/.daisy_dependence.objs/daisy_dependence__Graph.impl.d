lib/dependence/graph.ml: Array Daisy_loopir Daisy_support Hashtbl List Set Test Util
