lib/dependence/test.ml: Daisy_loopir Daisy_poly Daisy_support Fastpath Fmt List Refs Util
