lib/dependence/refs.ml: Daisy_loopir Daisy_poly Fmt List String
