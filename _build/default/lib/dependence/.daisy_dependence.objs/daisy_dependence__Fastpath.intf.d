lib/dependence/fastpath.mli: Daisy_poly Daisy_support
