(** Memory references of computations.

    Scalars are treated as rank-0 containers (empty subscript list), which
    makes every pair of instances conflict — the conservative behaviour that
    scalar expansion (normalize) later removes. *)

module Ir = Daisy_loopir.Ir
module Expr = Daisy_poly.Expr

type kind = Read | Write

type t = { kind : kind; container : string; indices : Expr.t list }

(** All references of a computation: the single write plus all reads
    (rhs and guard; array subscripts are integer expressions, not reads). *)
let of_comp (c : Ir.comp) : t list =
  let write =
    match c.Ir.dest with
    | Ir.Darray { array; indices } -> { kind = Write; container = array; indices }
    | Ir.Dscalar s -> { kind = Write; container = s; indices = [] }
  in
  let array_reads =
    List.map
      (fun ({ Ir.array; indices } : Ir.access) ->
        { kind = Read; container = array; indices })
      (Ir.comp_array_reads c)
  in
  let scalar_reads =
    List.map
      (fun s -> { kind = Read; container = s; indices = [] })
      (Ir.comp_scalar_reads c)
  in
  (write :: array_reads) @ scalar_reads

(** [conflict a b] — same container, at least one write. *)
let conflict a b =
  String.equal a.container b.container && (a.kind = Write || b.kind = Write)

let pp ppf r =
  Fmt.pf ppf "%s %s%a"
    (match r.kind with Read -> "read" | Write -> "write")
    r.container
    (Fmt.list ~sep:Fmt.nop (fun ppf i -> Fmt.pf ppf "[%a]" Expr.pp i))
    r.indices
