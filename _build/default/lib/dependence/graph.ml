(** Statement-level dependence graph of a loop body, and its SCC
    condensation — the engine behind maximal loop fission (Kennedy-style
    loop distribution).

    Units are the top-level nodes of the body (computations and whole
    sub-loops). An edge [u -> v] means some instance of a computation in [u]
    must execute before some instance of a computation in [v]; distribution
    must keep [u]'s loop before [v]'s. Units in a dependence cycle are
    atomic: they stay in one loop. *)

open Daisy_support
module Ir = Daisy_loopir.Ir

type t = {
  units : Ir.node array;
  edges : Util.ISet.t array;  (** adjacency: edges.(i) = successors of i *)
}

(** Comps of a unit paired with the loops {e inside} the unit enclosing
    them. *)
let unit_comps (n : Ir.node) : (Ir.loop list * Ir.comp) list =
  Ir.comps_with_context [ n ]

(** [build ~outer ~loop] — dependence graph of the units of [loop]'s body,
    where [outer] are the loops enclosing [loop] (outermost first).

    Only dependences {e not} carried by an outer loop constrain
    distribution: if the source and destination instances live in different
    outer iterations, distributing [loop] cannot reorder them. Vectors whose
    outer components are not all [Eq] are therefore ignored. *)
let build ~(outer : Ir.loop list) ~(loop : Ir.loop) : t =
  let body = loop.Ir.body in
  let units = Array.of_list body in
  let k = Array.length units in
  let edges = Array.make k Util.ISet.empty in
  let add_edge i j = if i <> j then edges.(i) <- Util.ISet.add j edges.(i) in
  let comps = Array.map unit_comps units in
  let common = outer @ [ loop ] in
  let n_outer = List.length outer in
  for i = 0 to k - 1 do
    for j = i to k - 1 do
      List.iter
        (fun (ictx, ci) ->
          List.iter
            (fun (jctx, cj) ->
              if i = j && ci.Ir.cid = cj.Ir.cid then ()
              else begin
                let src_ctx = common @ ictx and dst_ctx = common @ jctx in
                let vectors =
                  Test.comp_directions ~common (src_ctx, ci) (dst_ctx, cj)
                in
                List.iter
                  (fun v ->
                    if
                      List.for_all
                        (fun d -> d = Test.Eq)
                        (Util.take n_outer v)
                    then
                      match List.nth v n_outer with
                      | Test.Lt -> add_edge i j
                      | Test.Gt -> add_edge j i
                      | Test.Eq ->
                          (* same iteration of [loop]: textual order *)
                          if i < j then add_edge i j
                          else if j < i then add_edge j i)
                  vectors
              end)
            comps.(j))
        comps.(i)
    done
  done;
  { units; edges }

(* ------------------------------------------------------------------ *)
(* Tarjan SCC                                                           *)

(** [sccs g] — strongly connected components in a topological order of the
    condensation (every edge goes from an earlier to a later component). *)
let sccs (g : t) : int list list =
  let n = Array.length g.units in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let components = ref [] in
  let rec strongconnect v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    Util.ISet.iter
      (fun w ->
        if index.(w) = -1 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      g.edges.(v);
    if lowlink.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            if w = v then w :: acc else pop (w :: acc)
      in
      components := pop [] :: !components
    end
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then strongconnect v
  done;
  (* Tarjan emits components in reverse topological order *)
  !components

(** [distribution_groups ~outer ~loop] — the maximal fission of [loop]'s
    body: a list of unit-index groups, each group an atomic cluster, in a
    legal execution order. Groups preserve original textual order where the
    dependence graph allows (stable topological order by smallest original
    index). *)
let distribution_groups ~outer ~loop : int list list =
  let g = build ~outer ~loop in
  let comps = sccs g in
  (* stable order: sort components topologically, tie-broken by smallest
     original index to keep output deterministic and close to source order *)
  let comp_of = Hashtbl.create 16 in
  List.iteri (fun ci members -> List.iter (fun u -> Hashtbl.replace comp_of u ci) members) comps;
  let ncomp = List.length comps in
  let members = Array.make ncomp [] in
  List.iteri (fun ci ms -> members.(ci) <- List.sort compare ms) comps;
  let succs = Array.make ncomp Util.ISet.empty in
  let preds = Array.make ncomp 0 in
  Array.iteri
    (fun u es ->
      let cu = Hashtbl.find comp_of u in
      Util.ISet.iter
        (fun v ->
          let cv = Hashtbl.find comp_of v in
          if cu <> cv && not (Util.ISet.mem cv succs.(cu)) then begin
            succs.(cu) <- Util.ISet.add cv succs.(cu);
            preds.(cv) <- preds.(cv) + 1
          end)
        es)
    g.edges;
  (* Kahn's algorithm with a min-heap keyed by smallest member *)
  let module Pq = Set.Make (struct
    type t = int * int (* smallest member, component id *)
    let compare = compare
  end) in
  let ready = ref Pq.empty in
  for ci = 0 to ncomp - 1 do
    if preds.(ci) = 0 then ready := Pq.add (List.hd members.(ci), ci) !ready
  done;
  let order = ref [] in
  while not (Pq.is_empty !ready) do
    let ((_, ci) as elt) = Pq.min_elt !ready in
    ready := Pq.remove elt !ready;
    order := ci :: !order;
    Util.ISet.iter
      (fun cj ->
        preds.(cj) <- preds.(cj) - 1;
        if preds.(cj) = 0 then ready := Pq.add (List.hd members.(cj), cj) !ready)
      succs.(ci)
  done;
  List.rev_map (fun ci -> members.(ci)) !order
