(** Pairwise dependence testing: feasible direction vectors.

    Given two computation instances in their loop contexts, we build an
    affine system over renamed source/destination iterators (shared symbolic
    parameters stay shared), add subscript-equality constraints, and probe
    the three directions per common loop hierarchically (Goff–Kennedy–Tseng
    style pruning on the {!Daisy_poly.System} emptiness test).

    Non-affine subscripts or bounds make the test answer "all directions"
    — the conservative superset, matching the paper's behaviour of not
    optimizing loop nests it cannot lift precisely. *)

open Daisy_support
module Ir = Daisy_loopir.Ir
module Expr = Daisy_poly.Expr
module Affine = Daisy_poly.Affine
module System = Daisy_poly.System

type direction = Lt | Eq | Gt

let string_of_direction = function Lt -> "<" | Eq -> "=" | Gt -> ">"

let pp_dirvec ppf v =
  Fmt.pf ppf "(%a)" (Fmt.list ~sep:(Fmt.any ",") Fmt.string)
    (List.map string_of_direction v)

(** Renaming applied to one side of the test: loop iterators get a prefix,
    everything else (parameters) is shared. *)
let side_rename ~iters ~prefix e =
  let env =
    Util.SSet.fold
      (fun it env -> Util.SMap.add it (Expr.var (prefix ^ it)) env)
      iters Util.SMap.empty
  in
  Expr.subst env e

exception Non_affine

let affine_exn e =
  match Affine.of_expr e with Some a -> a | None -> raise Non_affine

(** Domain constraints of one side: each loop in [ctx] bounds its (renamed)
    iterator; bounds may reference renamed outer iterators and parameters. *)
let side_domain ~prefix (ctx : Ir.loop list) sys =
  let iters =
    List.fold_left (fun s (l : Ir.loop) -> Util.SSet.add l.Ir.iter s)
      Util.SSet.empty ctx
  in
  List.fold_left
    (fun sys (l : Ir.loop) ->
      let it = Affine.var (prefix ^ l.Ir.iter) in
      let lo = affine_exn (side_rename ~iters ~prefix l.Ir.lo) in
      let hi = affine_exn (side_rename ~iters ~prefix l.Ir.hi) in
      if l.Ir.step > 0 then System.ge it lo (System.le it hi sys)
      else System.le it lo (System.ge it hi sys))
    sys ctx

(** The base conflict system for a pair of references: both instances in
    their domains and touching the same element. *)
let conflict_system ~(src_ctx : Ir.loop list) ~(dst_ctx : Ir.loop list)
    (src : Refs.t) (dst : Refs.t) : System.t =
  let src_iters =
    List.fold_left (fun s (l : Ir.loop) -> Util.SSet.add l.Ir.iter s)
      Util.SSet.empty src_ctx
  in
  let dst_iters =
    List.fold_left (fun s (l : Ir.loop) -> Util.SSet.add l.Ir.iter s)
      Util.SSet.empty dst_ctx
  in
  let sys = System.empty_sys in
  let sys = side_domain ~prefix:"s$" src_ctx sys in
  let sys = side_domain ~prefix:"d$" dst_ctx sys in
  List.fold_left2
    (fun sys si di ->
      let sa = affine_exn (side_rename ~iters:src_iters ~prefix:"s$" si) in
      let da = affine_exn (side_rename ~iters:dst_iters ~prefix:"d$" di) in
      System.eq sa da sys)
    sys src.Refs.indices dst.Refs.indices

(** [directions ~common ~src_ctx ~dst_ctx src dst] — the set of feasible
    direction vectors over the [common] loops for conflicting instances
    (source iteration REL destination iteration per component). Assumes
    [common] is a prefix of both contexts. Returns the full 3^n set when the
    pair is non-affine. *)
let directions ~(common : Ir.loop list) ~src_ctx ~dst_ctx (src : Refs.t)
    (dst : Refs.t) : direction list list =
  let n = List.length common in
  let all_vectors =
    let rec go k = if k = 0 then [ [] ] else
      let rest = go (k - 1) in
      List.concat_map (fun v -> [ Lt :: v; Eq :: v; Gt :: v ]) rest
    in
    go n
  in
  if not (Refs.conflict src dst) then []
  else if
    (* classic ZIV/SIV/GCD filters: a provably never-aliasing subscript
       dimension kills the pair without touching Fourier-Motzkin *)
    Fastpath.independent_accesses
      ~extents:
        (List.fold_left
           (fun m (l : Ir.loop) ->
             match
               (Expr.to_const l.Ir.lo, Expr.to_const l.Ir.hi)
             with
             | Some lo, Some hi when l.Ir.step <> 0 ->
                 Util.SMap.add l.Ir.iter
                   (max 0 (((hi - lo) / l.Ir.step) + 1))
                   m
             | _ -> m)
           Util.SMap.empty src_ctx)
      src.Refs.indices dst.Refs.indices
  then []
  else
    match conflict_system ~src_ctx ~dst_ctx src dst with
    | exception Non_affine -> all_vectors
    | base ->
        (* hierarchical DFS with pruning *)
        let rec probe sys prefix loops acc =
          match loops with
          | [] -> List.rev prefix :: acc
          | (l : Ir.loop) :: rest ->
              let s = Affine.var ("s$" ^ l.Ir.iter) in
              let d = Affine.var ("d$" ^ l.Ir.iter) in
              (* for downward loops, "earlier" means a larger iterator value *)
              let earlier, later =
                if l.Ir.step > 0 then (System.lt, System.gt)
                else (System.gt, System.lt)
              in
              List.fold_left
                (fun acc (dir, constr) ->
                  let sys' = constr s d sys in
                  if System.is_empty sys' then acc
                  else probe sys' (dir :: prefix) rest acc)
                acc
                [ (Lt, earlier); (Eq, System.eq); (Gt, later) ]
        in
        probe base [] common []

(** [comp_directions ~common (ctxA, cA) (ctxB, cB)] — union of feasible
    direction vectors over all conflicting reference pairs between two
    computations. Containers in [ignore_containers] (e.g. privatizable
    scalars) are excluded from conflict detection. *)
let comp_directions ?(ignore_containers = Util.SSet.empty) ~common
    (src_ctx, (cA : Ir.comp)) (dst_ctx, (cB : Ir.comp)) :
    direction list list =
  let keep r = not (Util.SSet.mem r.Refs.container ignore_containers) in
  let refs_a = List.filter keep (Refs.of_comp cA)
  and refs_b = List.filter keep (Refs.of_comp cB) in
  List.concat_map
    (fun ra ->
      List.concat_map
        (fun rb ->
          if Refs.conflict ra rb then
            directions ~common ~src_ctx ~dst_ctx ra rb
          else [])
        refs_b)
    refs_a
  |> Util.dedup ~eq:( = )

(** [distance_at ~common ~src_ctx ~dst_ctx src dst loop] — the constant
    dependence distance at [loop] (a member of [common]) when it is unique:
    bounds of [d$it - s$it] over the conflict system. [None] when the pair
    is independent, non-affine, or the distance is not a single constant. *)
let distance_at ~(common : Ir.loop list) ~src_ctx ~dst_ctx (src : Refs.t)
    (dst : Refs.t) (loop : Ir.loop) : int option =
  ignore common;
  if not (Refs.conflict src dst) then None
  else
    match conflict_system ~src_ctx ~dst_ctx src dst with
    | exception Non_affine -> None
    | base ->
        if System.is_empty base then None
        else begin
          let delta = "delta$" ^ loop.Ir.iter in
          let sys =
            System.eq
              (Affine.var delta)
              (Affine.sub
                 (Affine.var ("d$" ^ loop.Ir.iter))
                 (Affine.var ("s$" ^ loop.Ir.iter)))
              base
          in
          match System.const_bounds delta sys with
          | Some lo, Some hi when lo = hi -> Some lo
          | _ -> None
        end

(** Classification of a direction vector (execution order of the two
    instances at the common-loop level). *)
let leading_direction (v : direction list) : direction =
  match List.find_opt (fun d -> d <> Eq) v with Some d -> d | None -> Eq

(** [src_executes_first v] — [Some true] if the vector implies the source
    instance runs before the destination instance, [Some false] for after,
    [None] for the same iteration (decided by textual order). *)
let src_executes_first v =
  match leading_direction v with
  | Lt -> Some true
  | Gt -> Some false
  | Eq -> None
