(** Classic dependence fast paths (ZIV / strong SIV / GCD), run as quick
    filters before the exact Fourier–Motzkin machinery — the standard
    staged organization (Goff–Kennedy–Tseng). *)

type verdict = [ `Independent | `Dependent | `Unknown ]

val ziv : Daisy_poly.Affine.t -> Daisy_poly.Affine.t -> verdict
(** Both subscripts constant. *)

val strong_siv :
  ?extent:int -> Daisy_poly.Affine.t -> Daisy_poly.Affine.t -> verdict
(** Subscripts [a*i + c] with equal coefficients on one shared iterator;
    independent when the distance is non-integral or beyond [extent]. *)

val gcd_test : Daisy_poly.Affine.t -> Daisy_poly.Affine.t -> verdict
(** Linear Diophantine solvability: [gcd(coefficients) | constant]. *)

val subscript_pair :
  ?extent:int -> Daisy_poly.Affine.t -> Daisy_poly.Affine.t -> verdict
(** Combined fast path for one subscript pair. *)

val independent_accesses :
  ?extents:int Daisy_support.Util.SMap.t ->
  Daisy_poly.Expr.t list ->
  Daisy_poly.Expr.t list ->
  bool
(** Some dimension of the two subscript vectors can never alias. *)
