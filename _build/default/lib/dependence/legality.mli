(** Legality predicates built on the dependence tests: loop permutation,
    parallelization, vectorization and reduction recognition. All
    predicates are conservative: "false" may be a false negative, never
    the other way around. *)

val perfect_band :
  Daisy_loopir.Ir.loop -> Daisy_loopir.Ir.loop list * Daisy_loopir.Ir.node list
(** The maximal perfectly-nested chain of loops starting at the nest, and
    the body of the innermost band loop. *)

val band_dep_vectors :
  outer:Daisy_loopir.Ir.loop list ->
  Daisy_loopir.Ir.loop list ->
  Daisy_loopir.Ir.node list ->
  Test.direction list list
(** All execution-order-valid dependence vectors over the band's loops
    (lexicographically non-negative; all-[Eq] = loop-independent). *)

val legal_permutation : Test.direction list list -> int array -> bool
(** Is the permutation (new position -> old position) legal, i.e. every
    permuted vector stays lexicographically non-negative? *)

val parallel_positions : Test.direction list list -> int -> bool array
(** Band positions whose loop carries no dependence. *)

val loop_carries_dependence :
  ?ignore_containers:Daisy_support.Util.SSet.t ->
  outer:Daisy_loopir.Ir.loop list ->
  Daisy_loopir.Ir.loop ->
  bool

val reduction_op : Daisy_loopir.Ir.comp -> Daisy_loopir.Ir.vbinop option
(** [Some op] when the computation updates its destination with an
    associative-commutative operator. *)

val is_reduction_comp : Daisy_loopir.Ir.comp -> bool

val carried_only_by_reductions :
  ?ignore_containers:Daisy_support.Util.SSet.t ->
  outer:Daisy_loopir.Ir.loop list ->
  Daisy_loopir.Ir.loop ->
  bool
(** The loop carries dependences, but all are reduction self-updates — so
    it can run in parallel with atomic updates (the expensive fallback the
    paper observes on correlation/covariance). *)
