(** Lifting a symbolic loop-nest representation from lir (paper §3.1).

    The pass recovers everything the low-level IR erased:
    - loop structure, from natural loops over the dominator tree;
    - induction variables, from latch-update patterns ([i = i + c]);
    - loop domains, from the header comparison;
    - array accesses, from GEP/load/store chains, as symbolic expressions;
    - conditionals, from single-entry/single-exit diamonds (guards);
    - scalar temporaries, from mutable ([mov]-defined) registers.

    Any shape outside this grammar raises {!Unsupported} with a reason —
    mirroring the lifting failures the paper reports (§4.1): unliftable
    regions are left to the fallback path instead of being normalized. *)

open Daisy_support
module L = Daisy_lir.Ir
module Cfg = Daisy_lir.Cfg
module Ir = Daisy_loopir.Ir
module Expr = Daisy_poly.Expr

exception Unsupported of string

let unsupported fmt = Fmt.kstr (fun m -> raise (Unsupported m)) fmt

(* ------------------------------------------------------------------ *)
(* Symbolic values                                                      *)

type sym =
  | Sint of Expr.t
  | Sfloat of Ir.vexpr
  | Saddr of Ir.access
  | Sbool of Ir.pred

(* ------------------------------------------------------------------ *)
(* Loop pre-analysis                                                    *)

type loop_info = {
  nl : Cfg.natural_loop;
  iv : L.reg;
  step : int;
  preheader : int;
  exit_block : int;
  body_entry : int;
}

(* Recognize the latch pattern: %s = add %iv, c ; mov %iv, %s *)
let latch_iv (latch : L.block) : (L.reg * int) option =
  let rec scan = function
    | L.Bin (s, L.Iadd, L.Oreg iv, L.Oint c) :: L.Mov (iv', L.Oreg s') :: _
      when iv = iv' && s = s' ->
        Some (iv, c)
    | _ :: rest -> scan rest
    | [] -> None
  in
  scan latch.L.insts

let analyze_loops (cfg : Cfg.t) : (int, loop_info) Hashtbl.t =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (nl : Cfg.natural_loop) ->
      if Hashtbl.mem tbl nl.Cfg.header then
        unsupported "multiple back edges into one header";
      let latch_block = Cfg.block_at cfg nl.Cfg.latch in
      match latch_iv latch_block with
      | None -> unsupported "latch without a recognizable induction update"
      | Some (iv, step) ->
          let outside_preds =
            List.filter
              (fun p -> not (Util.ISet.mem p nl.Cfg.body))
              cfg.Cfg.preds.(nl.Cfg.header)
          in
          let preheader =
            match outside_preds with
            | [ p ] -> p
            | _ -> unsupported "loop header with multiple entries"
          in
          (* the header must conditionally branch into the body or out *)
          let header_block = Cfg.block_at cfg nl.Cfg.header in
          let body_entry, exit_block =
            match header_block.L.term with
            | L.CondBr (_, t, f) ->
                let ti = Cfg.index_of cfg t and fi = Cfg.index_of cfg f in
                if Util.ISet.mem ti nl.Cfg.body then (ti, fi)
                else if Util.ISet.mem fi nl.Cfg.body then (fi, ti)
                else unsupported "header branches do not enter the loop"
            | _ -> unsupported "loop header does not end in a conditional branch"
          in
          Hashtbl.replace tbl nl.Cfg.header
            { nl; iv; step; preheader; exit_block; body_entry })
    (Cfg.natural_loops cfg);
  tbl

(* ------------------------------------------------------------------ *)
(* Immediate postdominators (for diamond merges)                        *)

let ipostdoms (cfg : Cfg.t) : int array =
  let n = Cfg.n_blocks cfg in
  (* unique exit: the Ret block *)
  let exits = ref [] in
  for i = 0 to n - 1 do
    if (Cfg.block_at cfg i).L.term = L.Ret then exits := i :: !exits
  done;
  let exit =
    match !exits with [ e ] -> e | _ -> unsupported "function must have one ret"
  in
  (* iterative postdominators on the reverse CFG, in reverse RPO of the
     reverse graph; a simple fixpoint over all nodes suffices at our sizes *)
  let ipdom = Array.make n (-1) in
  ipdom.(exit) <- exit;
  let changed = ref true in
  while !changed do
    changed := false;
    for i = n - 1 downto 0 do
      if i <> exit then begin
        let processed = List.filter (fun s -> ipdom.(s) >= 0) cfg.Cfg.succs.(i) in
        match processed with
        | [] -> ()
        | first :: rest ->
            let rec intersect a b =
              if a = b then a
              else begin
                (* walk up in postdominator tree; use index order heuristic *)
                let rec climb x target seen =
                  if x = target then true
                  else if List.mem x seen then false
                  else climb ipdom.(x) target (x :: seen)
                in
                if climb a b [] then b
                else if climb b a [] then a
                else intersect ipdom.(a) b
              end
            in
            let nd = List.fold_left intersect first rest in
            if ipdom.(i) <> nd then begin
              ipdom.(i) <- nd;
              changed := true
            end
      end
    done
  done;
  ipdom

(* ------------------------------------------------------------------ *)
(* The walker                                                           *)

type lift_state = {
  cfg : Cfg.t;
  loops : (int, loop_info) Hashtbl.t;
  ipdom : int array;
  mov_defined : (L.reg, unit) Hashtbl.t;  (** mutable registers = scalars *)
  iv_regs : (L.reg, unit) Hashtbl.t;
  mutable env : sym Util.IMap.t;
  mutable iv_inits : Expr.t Util.IMap.t;  (** latest init value per iv reg *)
  mutable scalars : Util.SSet.t;  (** emitted scalar names *)
  mutable iter_count : int;
}

let scalar_name r = Printf.sprintf "t%d" r

let lookup st r =
  match Util.IMap.find_opt r st.env with
  | Some s -> s
  | None -> unsupported "use of register %%r%d before definition" r

let as_int st (op : L.operand) : Expr.t =
  match op with
  | L.Oint n -> Expr.const n
  | L.Osym s -> Expr.var s
  | L.Oreg r -> (
      match lookup st r with
      | Sint e -> e
      | _ -> unsupported "register %%r%d is not an integer" r)
  | L.Ofloat _ | L.Oscalar _ -> unsupported "float operand in integer context"

let as_float st (op : L.operand) : Ir.vexpr =
  match op with
  | L.Ofloat f -> Ir.Vfloat f
  | L.Oint n -> Ir.Vfloat (float_of_int n)
  | L.Oscalar s -> Ir.Vscalar s
  | L.Osym s -> Ir.Vint (Expr.var s)
  | L.Oreg r -> (
      match lookup st r with
      | Sfloat v -> v
      | Sint e -> Ir.Vint e
      | _ -> unsupported "register %%r%d is not a float" r)

let as_bool st (op : L.operand) : Ir.pred =
  match op with
  | L.Oreg r -> (
      match lookup st r with
      | Sbool p -> p
      | _ -> unsupported "register %%r%d is not a condition" r)
  | _ -> unsupported "condition must be a register"

let bind st r v = st.env <- Util.IMap.add r v st.env

(* Evaluate one instruction; emits computations through [push]. *)
let eval_inst st ~guard ~push (i : L.inst) : unit =
  match i with
  | L.Bin (r, op, a, b) ->
      let x = as_int st a and y = as_int st b in
      let e =
        match op with
        | L.Iadd -> Expr.add x y
        | L.Isub -> Expr.sub x y
        | L.Imul -> Expr.mul x y
        | L.Idiv -> Expr.div x y
        | L.Irem -> Expr.md x y
      in
      bind st r (Sint e)
  | L.Fbin (r, op, a, b) ->
      let x = as_float st a and y = as_float st b in
      let o =
        match op with
        | L.Fadd -> Ir.Vadd | L.Fsub -> Ir.Vsub
        | L.Fmul -> Ir.Vmul | L.Fdiv -> Ir.Vdiv
      in
      bind st r (Sfloat (Ir.Vbin (o, x, y)))
  | L.Fneg (r, a) -> bind st r (Sfloat (Ir.Vneg (as_float st a)))
  | L.Call (r, f, args) ->
      bind st r (Sfloat (Ir.Vcall (f, List.map (as_float st) args)))
  | L.Icmp (r, c, a, b) ->
      let x = Ir.Vint (as_int st a) and y = Ir.Vint (as_int st b) in
      let op =
        match c with
        | L.Slt -> Ir.Clt | L.Sle -> Ir.Cle | L.Sgt -> Ir.Cgt
        | L.Sge -> Ir.Cge | L.Ieq -> Ir.Ceq | L.Ine -> Ir.Cne
      in
      bind st r (Sbool (Ir.Pcmp (op, x, y)))
  | L.Fcmp (r, c, a, b) ->
      let x = as_float st a and y = as_float st b in
      let op =
        match c with
        | L.Folt -> Ir.Clt | L.Fole -> Ir.Cle | L.Fogt -> Ir.Cgt
        | L.Foge -> Ir.Cge | L.Foeq -> Ir.Ceq | L.Fone -> Ir.Cne
      in
      bind st r (Sbool (Ir.Pcmp (op, x, y)))
  | L.Select (r, c, a, b) ->
      bind st r
        (Sfloat (Ir.Vselect (as_bool st c, as_float st a, as_float st b)))
  | L.BoolOp (r, `And, [ a; b ]) ->
      bind st r (Sbool (Ir.Pand (as_bool st a, as_bool st b)))
  | L.BoolOp (r, `Or, [ a; b ]) ->
      bind st r (Sbool (Ir.Por (as_bool st a, as_bool st b)))
  | L.BoolOp (r, `Not, [ a ]) -> bind st r (Sbool (Ir.Pnot (as_bool st a)))
  | L.BoolOp _ -> unsupported "malformed boolean operation"
  | L.Gep (r, base, idx) ->
      bind st r (Saddr { Ir.array = base; indices = List.map (as_int st) idx })
  | L.Load (r, a) -> (
      match a with
      | L.Oreg ar -> (
          match lookup st ar with
          | Saddr access -> bind st r (Sfloat (Ir.Vread access))
          | _ -> unsupported "load from a non-address register")
      | _ -> unsupported "load from a non-register operand")
  | L.Store (a, v) -> (
      match a with
      | L.Oreg ar -> (
          match lookup st ar with
          | Saddr access ->
              push (Ir.Ncomp (Ir.mk_comp ?guard (Ir.Darray access) (as_float st v)))
          | _ -> unsupported "store to a non-address register")
      | _ -> unsupported "store to a non-register operand")
  | L.Sitofp (r, a) -> bind st r (Sfloat (Ir.Vint (as_int st a)))
  | L.Mov (r, v) ->
      if Hashtbl.mem st.iv_regs r then begin
        (* induction-variable initialization (preheader) or update (latch,
           never walked): record the init value *)
        st.iv_inits <- Util.IMap.add r (as_int st v) st.iv_inits
      end
      else if Hashtbl.mem st.mov_defined r then begin
        (* a mutable register = named scalar temporary *)
        let name = scalar_name r in
        st.scalars <- Util.SSet.add name st.scalars;
        push (Ir.Ncomp (Ir.mk_comp ?guard (Ir.Dscalar name) (as_float st v)));
        bind st r (Sfloat (Ir.Vscalar name))
      end
      else
        (* single-assignment mov: inline *)
        bind st r (Sfloat (as_float st v))

(* Walk blocks from [cur] until [stop] (exclusive). *)
let rec walk st ~(cur : int) ~(stop : int option) ~(guard : Ir.pred option) :
    Ir.node list =
  if stop = Some cur then []
  else
    match Hashtbl.find_opt st.loops cur with
    | Some info -> lift_loop st info ~stop ~guard
    | None ->
        let b = Cfg.block_at st.cfg cur in
        let nodes = ref [] in
        let push n = nodes := n :: !nodes in
        List.iter (eval_inst st ~guard ~push) b.L.insts;
        let rest =
          match b.L.term with
          | L.Ret -> []
          | L.Br next ->
              walk st ~cur:(Cfg.index_of st.cfg next) ~stop ~guard
          | L.CondBr (c, t, f) ->
              let p = as_bool st c in
              let merge = st.ipdom.(cur) in
              let ti = Cfg.index_of st.cfg t and fi = Cfg.index_of st.cfg f in
              let conj q = match guard with None -> Some q | Some g -> Some (Ir.Pand (g, q)) in
              let then_nodes =
                if ti = merge then []
                else walk st ~cur:ti ~stop:(Some merge) ~guard:(conj p)
              in
              let else_nodes =
                if fi = merge then []
                else walk st ~cur:fi ~stop:(Some merge) ~guard:(conj (Ir.Pnot p))
              in
              then_nodes @ else_nodes @ walk st ~cur:merge ~stop ~guard
        in
        List.rev !nodes @ rest

and lift_loop st (info : loop_info) ~stop ~guard : Ir.node list =
  if guard <> None then unsupported "loop nested inside a conditional";
  let iter =
    let k = st.iter_count in
    st.iter_count <- k + 1;
    Printf.sprintf "i%d" k
  in
  (* bind the iv to the symbolic iterator for header + body evaluation *)
  bind st info.iv (Sint (Expr.var iter));
  let lo =
    match Util.IMap.find_opt info.iv st.iv_inits with
    | Some e -> e
    | None -> unsupported "induction variable without initialization"
  in
  (* evaluate the header block to find the bound comparison *)
  let header_block = Cfg.block_at st.cfg info.nl.Cfg.header in
  let cond_reg =
    match header_block.L.term with
    | L.CondBr (L.Oreg c, _, _) -> c
    | _ -> unsupported "header terminator"
  in
  (* header instructions are pure (comparison + bound computation) *)
  List.iter
    (eval_inst st ~guard:None ~push:(fun _ ->
         unsupported "store in loop header"))
    header_block.L.insts;
  let cmp, bound =
    let rec find = function
      | L.Icmp (r, c, L.Oreg iv, bnd) :: _ when r = cond_reg && iv = info.iv ->
          (c, as_int st bnd)
      | _ :: rest -> find rest
      | [] -> unsupported "header without an induction comparison"
    in
    find header_block.L.insts
  in
  let hi =
    if info.step > 0 then
      match cmp with
      | L.Slt -> Expr.sub bound Expr.one
      | L.Sle -> bound
      | _ -> unsupported "upward loop with a downward comparison"
    else
      match cmp with
      | L.Sgt -> Expr.add bound Expr.one
      | L.Sge -> bound
      | _ -> unsupported "downward loop with an upward comparison"
  in
  let body =
    walk st ~cur:info.body_entry ~stop:(Some info.nl.Cfg.latch) ~guard:None
  in
  let loop = Ir.mk_loop ~iter ~lo ~hi ~step:info.step body in
  Ir.Nloop loop :: walk st ~cur:info.exit_block ~stop ~guard

(* ------------------------------------------------------------------ *)
(* Entry point                                                          *)

(** [lift f] — recover a loopir program from a lir function. Raises
    {!Unsupported} when the control flow or access patterns fall outside
    the liftable grammar. *)
let lift (f : L.func) : Ir.program =
  let cfg = Cfg.build f in
  let loops_tbl = analyze_loops cfg in
  (* registers defined by mov more than zero times and total defs > 1 are
     mutable scalars; iv registers are excluded *)
  let mov_defined = Hashtbl.create 16 in
  let def_counts = Hashtbl.create 64 in
  List.iter
    (fun (b : L.block) ->
      List.iter
        (fun i ->
          match L.def_of i with
          | Some r ->
              Hashtbl.replace def_counts r
                (1 + (try Hashtbl.find def_counts r with Not_found -> 0));
              (match i with
              | L.Mov (r, _) -> Hashtbl.replace mov_defined r ()
              | _ -> ())
          | None -> ())
        b.L.insts)
    f.L.blocks;
  let iv_regs = Hashtbl.create 8 in
  Hashtbl.iter (fun _ info -> Hashtbl.replace iv_regs info.iv ()) loops_tbl;
  Hashtbl.iter (fun r () -> Hashtbl.remove mov_defined r) iv_regs;
  (* non-mov multiple definitions are out of grammar *)
  Hashtbl.iter
    (fun r n ->
      if n > 1 && (not (Hashtbl.mem mov_defined r)) && not (Hashtbl.mem iv_regs r)
      then unsupported "register %%r%d multiply defined outside mov" r)
    def_counts;
  let st =
    {
      cfg;
      loops = loops_tbl;
      ipdom = ipostdoms cfg;
      mov_defined;
      iv_regs;
      env = Util.IMap.empty;
      iv_inits = Util.IMap.empty;
      scalars = Util.SSet.empty;
      iter_count = 0;
    }
  in
  let body = walk st ~cur:0 ~stop:None ~guard:None in
  let arrays =
    List.map
      (fun (name, dims) ->
        { Ir.name; elem = Ir.Fdouble; dims; storage = Ir.Sparam })
      f.L.arrays
    @ List.map
        (fun (name, dims) ->
          { Ir.name; elem = Ir.Fdouble; dims; storage = Ir.Slocal })
        f.L.local_arrays
  in
  {
    Ir.pname = f.L.fname;
    size_params = f.L.size_params;
    scalar_params = f.L.scalar_params;
    arrays;
    local_scalars = Util.SSet.elements st.scalars;
    body;
  }

(** Lift with a result type instead of an exception. *)
let lift_result (f : L.func) : (Ir.program, string) result =
  match lift f with
  | p -> Ok p
  | exception Unsupported reason -> Error reason
