lib/lift/lift.ml: Array Daisy_lir Daisy_loopir Daisy_poly Daisy_support Fmt Hashtbl List Printf Util
