lib/lift/lift.mli: Daisy_lir Daisy_loopir
