(** Lifting a symbolic loop-nest representation from lir (paper §3.1):
    recover loop structure (natural loops), induction variables (latch
    updates), domains (header comparisons), array accesses (GEP chains),
    conditionals (SESE diamonds) and scalar temporaries (mutable
    registers). *)

exception Unsupported of string
(** Raised when the control flow or access patterns fall outside the
    liftable grammar — mirroring the paper's §4.1 lifting failures. *)

val lift : Daisy_lir.Ir.func -> Daisy_loopir.Ir.program

val lift_result : Daisy_lir.Ir.func -> (Daisy_loopir.Ir.program, string) result
