(** Direct lowering from the checked DSL AST to {!Daisy_loopir.Ir}.

    This is the "semantic" lowering path used to cross-check the lifting
    pipeline (AST [->] lir [->] lift): both must produce structurally
    equivalent loopir programs. *)

open Daisy_support
open Ast
module Ir = Daisy_loopir.Ir
module Expr = Daisy_poly.Expr

(** [int_expr env e] converts an integer-typed AST expression to a symbolic
    expression; raises {!Diag.Error} on non-integer constructs. *)
let rec int_expr (e : expr) : Expr.t =
  match e.desc with
  | Eint n -> Expr.const n
  | Evar v -> Expr.var v
  | Eunop (Uneg, a) -> Expr.neg (int_expr a)
  | Ebinop (Badd, a, b) -> Expr.add (int_expr a) (int_expr b)
  | Ebinop (Bsub, a, b) -> Expr.sub (int_expr a) (int_expr b)
  | Ebinop (Bmul, a, b) -> Expr.mul (int_expr a) (int_expr b)
  | Ebinop (Bdiv, a, b) -> Expr.div (int_expr a) (int_expr b)
  | Ebinop (Bmod, a, b) -> Expr.md (int_expr a) (int_expr b)
  | Ecall ("min", [ a; b ]) -> Expr.min_ (int_expr a) (int_expr b)
  | Ecall ("max", [ a; b ]) -> Expr.max_ (int_expr a) (int_expr b)
  | _ ->
      Diag.errorf ~loc:e.eloc
        "expression is not a symbolic integer expression (subscripts and bounds \
         must be built from integer parameters, iterators, constants and + - * / %% min max)"

let normalize_intrinsic = function
  | "fmin" -> "min"
  | "fmax" -> "max"
  | f -> f

(** Names bound to integers (size params, loop indices) get converted to
    [Vint]; everything else is a floating scalar. *)
type ctx = {
  env : Sema.env;
  int_vars : Util.SSet.t;  (** loop indices currently in scope *)
}

let is_int_name ctx v =
  Util.SSet.mem v ctx.int_vars
  ||
  match Util.SMap.find_opt v ctx.env.Sema.bindings with
  | Some Sema.Bparam_int -> true
  | _ -> false

let rec vexpr ctx (e : expr) : Ir.vexpr =
  match e.desc with
  | Eint n -> Ir.Vfloat (float_of_int n)
  | Efloat f -> Ir.Vfloat f
  | Evar v ->
      if is_int_name ctx v then Ir.Vint (Expr.var v) else Ir.Vscalar v
  | Eindex (a, indices) ->
      Ir.Vread { Ir.array = a; indices = List.map int_expr indices }
  | Eunop (Uneg, a) -> Ir.Vneg (vexpr ctx a)
  | Eunop (Unot, _) ->
      Diag.errorf ~loc:e.eloc "logical negation is only allowed in conditions"
  | Ebinop (Badd, a, b) -> Ir.Vbin (Ir.Vadd, vexpr ctx a, vexpr ctx b)
  | Ebinop (Bsub, a, b) -> Ir.Vbin (Ir.Vsub, vexpr ctx a, vexpr ctx b)
  | Ebinop (Bmul, a, b) -> Ir.Vbin (Ir.Vmul, vexpr ctx a, vexpr ctx b)
  | Ebinop (Bdiv, a, b) -> Ir.Vbin (Ir.Vdiv, vexpr ctx a, vexpr ctx b)
  | Ebinop (Bmod, a, b) -> Ir.Vint (Expr.md (int_expr a) (int_expr b))
  | Ebinop ((Blt | Ble | Bgt | Bge | Beq | Bne | Band | Bor), _, _) ->
      Diag.errorf ~loc:e.eloc "comparison used as a value; use a ternary"
  | Ecall (f, args) ->
      Ir.Vcall (normalize_intrinsic f, List.map (vexpr ctx) args)
  | Eternary (c, a, b) -> Ir.Vselect (pred ctx c, vexpr ctx a, vexpr ctx b)

and pred ctx (e : expr) : Ir.pred =
  match e.desc with
  | Ebinop (Blt, a, b) -> Ir.Pcmp (Ir.Clt, vexpr ctx a, vexpr ctx b)
  | Ebinop (Ble, a, b) -> Ir.Pcmp (Ir.Cle, vexpr ctx a, vexpr ctx b)
  | Ebinop (Bgt, a, b) -> Ir.Pcmp (Ir.Cgt, vexpr ctx a, vexpr ctx b)
  | Ebinop (Bge, a, b) -> Ir.Pcmp (Ir.Cge, vexpr ctx a, vexpr ctx b)
  | Ebinop (Beq, a, b) -> Ir.Pcmp (Ir.Ceq, vexpr ctx a, vexpr ctx b)
  | Ebinop (Bne, a, b) -> Ir.Pcmp (Ir.Cne, vexpr ctx a, vexpr ctx b)
  | Ebinop (Band, a, b) -> Ir.Pand (pred ctx a, pred ctx b)
  | Ebinop (Bor, a, b) -> Ir.Por (pred ctx a, pred ctx b)
  | Eunop (Unot, a) -> Ir.Pnot (pred ctx a)
  | _ -> Diag.errorf ~loc:e.eloc "expected a condition (comparison or && || !)"

let conj g1 g2 =
  match g1 with None -> Some g2 | Some g -> Some (Ir.Pand (g, g2))

type acc = {
  mutable local_arrays : Ir.array_decl list;
  mutable local_scalars : string list;
}

(** Inclusive symbolic range of a for header: [(first, last, step)]. *)
let range_of_header (h : for_header) =
  let lo = int_expr h.lo in
  let bound = int_expr h.bound in
  if h.step > 0 then
    match h.cmp with
    | Blt -> (lo, Expr.sub bound Expr.one, h.step)
    | Ble -> (lo, bound, h.step)
    | _ ->
        Diag.errorf "upward loop %s must use < or <= in its condition" h.index
  else
    match h.cmp with
    | Bgt -> (lo, Expr.add bound Expr.one, h.step)
    | Bge -> (lo, bound, h.step)
    | _ ->
        Diag.errorf "downward loop %s must use > or >= in its condition" h.index

let rec lower_stmt ctx acc guard (s : stmt) : Ir.node list =
  match s.sdesc with
  | Sassign (lv, op, rhs) ->
      let dest =
        if lv.indices = [] then
          match Util.SMap.find_opt lv.base ctx.env.Sema.bindings with
          | Some (Sema.Barray _ | Sema.Blocal_array _) ->
              Diag.errorf ~loc:lv.lloc "array %s assigned without subscripts" lv.base
          | _ -> Ir.Dscalar lv.base
        else
          Ir.Darray { Ir.array = lv.base; indices = List.map int_expr lv.indices }
      in
      let rhs_v = vexpr ctx rhs in
      let dest_read =
        match dest with
        | Ir.Darray a -> Ir.Vread a
        | Ir.Dscalar v -> Ir.Vscalar v
      in
      let full_rhs =
        match op with
        | Aset -> rhs_v
        | Aadd -> Ir.Vbin (Ir.Vadd, dest_read, rhs_v)
        | Asub -> Ir.Vbin (Ir.Vsub, dest_read, rhs_v)
        | Amul -> Ir.Vbin (Ir.Vmul, dest_read, rhs_v)
        | Adiv -> Ir.Vbin (Ir.Vdiv, dest_read, rhs_v)
      in
      [ Ir.Ncomp (Ir.mk_comp ?guard dest full_rhs) ]
  | Sdecl_scalar (Tdouble, name, init) ->
      acc.local_scalars <- name :: acc.local_scalars;
      (match init with
      | None -> []
      | Some e -> [ Ir.Ncomp (Ir.mk_comp ?guard (Ir.Dscalar name) (vexpr ctx e)) ])
  | Sdecl_scalar (Tint, name, _) ->
      Diag.errorf ~loc:s.sloc
        "local integer variable %s is not supported (only loop indices)" name
  | Sdecl_array (_, name, dims) ->
      let dims = List.map int_expr dims in
      acc.local_arrays <-
        { Ir.name; elem = Ir.Fdouble; dims; storage = Ir.Slocal }
        :: acc.local_arrays;
      []
  | Sfor (h, body) ->
      let lo, hi, step = range_of_header h in
      let ctx' = { ctx with int_vars = Util.SSet.add h.index ctx.int_vars } in
      let body_nodes = lower_stmts ctx' acc guard body in
      [ Ir.Nloop (Ir.mk_loop ~iter:h.index ~lo ~hi ~step body_nodes) ]
  | Sif (cond, then_, else_) ->
      let p = pred ctx cond in
      let then_nodes = lower_stmts ctx acc (conj guard p) then_ in
      let else_nodes =
        match else_ with
        | [] -> []
        | _ -> lower_stmts ctx acc (conj guard (Ir.Pnot p)) else_
      in
      then_nodes @ else_nodes
  | Sblock body -> lower_stmts ctx acc guard body

and lower_stmts ctx acc guard stmts =
  List.concat_map (lower_stmt ctx acc guard) stmts

(** [lower env] lowers a checked kernel to a loopir program. *)
let lower (env : Sema.env) : Ir.program =
  let k = env.Sema.kernel in
  let acc = { local_arrays = []; local_scalars = [] } in
  let ctx = { env; int_vars = Util.SSet.empty } in
  let body = lower_stmts ctx acc None k.body in
  let param_arrays =
    List.map
      (fun (name, (info : Sema.array_info)) ->
        {
          Ir.name;
          elem = Ir.Fdouble;
          dims = List.map int_expr info.Sema.dims;
          storage = Ir.Sparam;
        })
      (Sema.array_params env)
  in
  {
    Ir.pname = k.name;
    size_params = Sema.size_params env;
    scalar_params = Sema.scalar_params env;
    arrays = param_arrays @ List.rev acc.local_arrays;
    local_scalars = List.rev acc.local_scalars;
    body;
  }

(** One-call convenience: parse, check and lower a kernel source string. *)
let program_of_string ?(source = "<string>") text : Ir.program =
  let k = Parser.parse_kernel_string ~source text in
  lower (Sema.check k)
