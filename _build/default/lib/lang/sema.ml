(** Semantic analysis for the kernel DSL.

    Checks scoping, array ranks and types, and classifies every name as a
    symbolic size parameter, scalar, or array. Integer expressions are
    implicitly promoted to double in floating contexts (as in C); the reverse
    is an error. The checked result ({!env}) is consumed by both lowering
    paths (AST [->] loopir and AST [->] lir). *)

open Daisy_support
open Ast

type array_info = { elem_ty : ty; dims : expr list }

type binding =
  | Bparam_int  (** symbolic size parameter *)
  | Bparam_scalar of ty
  | Barray of array_info
  | Blocal_scalar of ty
  | Blocal_array of array_info
  | Bloop_index

type env = {
  kernel : kernel;
  bindings : binding Util.SMap.t;  (** all names visible anywhere *)
}

let intrinsics_1 = [ "sqrt"; "exp"; "log"; "fabs"; "floor"; "ceil"; "sin"; "cos"; "tanh" ]
let intrinsics_2 = [ "pow"; "min"; "max"; "fmin"; "fmax" ]

let is_intrinsic f = List.mem f intrinsics_1 || List.mem f intrinsics_2

let intrinsic_arity f =
  if List.mem f intrinsics_1 then 1
  else if List.mem f intrinsics_2 then 2
  else invalid_arg ("not an intrinsic: " ^ f)

type scope = binding Util.SMap.t

let lookup (scope : scope) name = Util.SMap.find_opt name scope

let rec infer_expr (scope : scope) (e : expr) : ty =
  match e.desc with
  | Eint _ -> Tint
  | Efloat _ -> Tdouble
  | Evar v -> (
      match lookup scope v with
      | Some Bparam_int | Some Bloop_index -> Tint
      | Some (Bparam_scalar ty) | Some (Blocal_scalar ty) -> ty
      | Some (Barray _) | Some (Blocal_array _) ->
          Diag.errorf ~loc:e.eloc "array %s used without subscripts" v
      | None -> Diag.errorf ~loc:e.eloc "undeclared variable %s" v)
  | Eindex (a, indices) -> (
      match lookup scope a with
      | Some (Barray info) | Some (Blocal_array info) ->
          if List.length indices <> List.length info.dims then
            Diag.errorf ~loc:e.eloc
              "array %s has rank %d but is indexed with %d subscripts" a
              (List.length info.dims) (List.length indices);
          List.iter (check_int scope) indices;
          info.elem_ty
      | Some _ -> Diag.errorf ~loc:e.eloc "%s is not an array" a
      | None -> Diag.errorf ~loc:e.eloc "undeclared array %s" a)
  | Eunop (Uneg, a) -> infer_expr scope a
  | Eunop (Unot, a) ->
      ignore (infer_expr scope a);
      Tint
  | Ebinop ((Badd | Bsub | Bmul | Bdiv), a, b) -> (
      match (infer_expr scope a, infer_expr scope b) with
      | Tint, Tint -> Tint
      | _ -> Tdouble)
  | Ebinop (Bmod, a, b) ->
      check_int scope a;
      check_int scope b;
      Tint
  | Ebinop ((Blt | Ble | Bgt | Bge | Beq | Bne | Band | Bor), a, b) ->
      ignore (infer_expr scope a);
      ignore (infer_expr scope b);
      Tint (* boolean *)
  | Ecall (f, args) ->
      if not (is_intrinsic f) then
        Diag.errorf ~loc:e.eloc "unknown function %s (only intrinsics may be called)" f;
      let arity = intrinsic_arity f in
      if List.length args <> arity then
        Diag.errorf ~loc:e.eloc "%s expects %d argument(s), got %d" f arity
          (List.length args);
      List.iter (fun a -> ignore (infer_expr scope a)) args;
      Tdouble
  | Eternary (c, a, b) -> (
      ignore (infer_expr scope c);
      match (infer_expr scope a, infer_expr scope b) with
      | Tint, Tint -> Tint
      | _ -> Tdouble)

and check_int scope e =
  match infer_expr scope e with
  | Tint -> ()
  | Tdouble ->
      Diag.errorf ~loc:e.eloc "expected an integer expression (subscript, bound or step)"

let declare ~loc scope name binding =
  match Util.SMap.find_opt name scope with
  | Some _ -> Diag.errorf ~loc "redeclaration of %s" name
  | None -> Util.SMap.add name binding scope

let rec check_stmt (scope : scope) (all : binding Util.SMap.t ref) (s : stmt) : scope =
  match s.sdesc with
  | Sassign (lv, _op, rhs) ->
      (match lookup scope lv.base with
      | Some (Barray info) | Some (Blocal_array info) ->
          if List.length lv.indices <> List.length info.dims then
            Diag.errorf ~loc:lv.lloc
              "array %s has rank %d but is indexed with %d subscripts" lv.base
              (List.length info.dims) (List.length lv.indices);
          List.iter (check_int scope) lv.indices
      | Some (Blocal_scalar _) | Some (Bparam_scalar _) ->
          if lv.indices <> [] then
            Diag.errorf ~loc:lv.lloc "%s is a scalar and cannot be subscripted" lv.base
      | Some Bparam_int | Some Bloop_index ->
          Diag.errorf ~loc:lv.lloc "cannot assign to %s" lv.base
      | None -> Diag.errorf ~loc:lv.lloc "undeclared variable %s" lv.base);
      ignore (infer_expr scope rhs);
      scope
  | Sdecl_scalar (ty, name, init) ->
      Option.iter (fun e -> ignore (infer_expr scope e)) init;
      let scope = declare ~loc:s.sloc scope name (Blocal_scalar ty) in
      all := Util.SMap.add name (Blocal_scalar ty) !all;
      scope
  | Sdecl_array (ty, name, dims) ->
      List.iter (check_int scope) dims;
      let info = { elem_ty = ty; dims } in
      let scope = declare ~loc:s.sloc scope name (Blocal_array info) in
      all := Util.SMap.add name (Blocal_array info) !all;
      scope
  | Sfor (h, body) ->
      ignore (infer_expr scope h.lo);
      check_int scope h.lo;
      check_int scope h.bound;
      let inner = Util.SMap.add h.index Bloop_index scope in
      all := Util.SMap.add h.index Bloop_index !all;
      ignore (check_stmts inner all body);
      scope
  | Sif (cond, then_, else_) ->
      ignore (infer_expr scope cond);
      ignore (check_stmts scope all then_);
      ignore (check_stmts scope all else_);
      scope
  | Sblock body ->
      ignore (check_stmts scope all body);
      scope

and check_stmts scope all stmts =
  List.fold_left (fun scope s -> check_stmt scope all s) scope stmts

(** [check kernel] runs semantic analysis, returning the environment of all
    bindings. Raises {!Diag.Error} on the first violation. *)
let check (k : kernel) : env =
  let scope, all =
    List.fold_left
      (fun (scope, all) p ->
        match p with
        | Pscalar (Tint, name) ->
            let b = Bparam_int in
            (declare ~loc:k.kloc scope name b, Util.SMap.add name b all)
        | Pscalar (ty, name) ->
            let b = Bparam_scalar ty in
            (declare ~loc:k.kloc scope name b, Util.SMap.add name b all)
        | Parray (ty, name, dims) ->
            List.iter (check_int scope) dims;
            let b = Barray { elem_ty = ty; dims } in
            (declare ~loc:k.kloc scope name b, Util.SMap.add name b all))
      (Util.SMap.empty, Util.SMap.empty)
      k.params
  in
  let all = ref all in
  ignore (check_stmts scope all k.body);
  { kernel = k; bindings = !all }

(** Size parameters of the kernel, in declaration order. *)
let size_params env =
  List.filter_map
    (function Pscalar (Tint, name) -> Some name | _ -> None)
    env.kernel.params

(** Scalar (double) parameters in declaration order. *)
let scalar_params env =
  List.filter_map
    (function Pscalar (Tdouble, name) -> Some name | _ -> None)
    env.kernel.params

(** Array parameters in declaration order, with their info. *)
let array_params env =
  List.filter_map
    (function
      | Parray (ty, name, dims) -> Some (name, { elem_ty = ty; dims })
      | _ -> None)
    env.kernel.params
