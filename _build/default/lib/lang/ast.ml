(** Abstract syntax of the kernel DSL.

    The DSL is a small C subset sufficient to express PolyBench kernels and
    CLOUDSC-style physics loops: [void] kernels taking integer size
    parameters, scalar parameters and (variable-length) multi-dimensional
    arrays; bodies of counted [for] loops, guarded assignments and local
    declarations. *)

open Daisy_support

type ty = Tint | Tdouble

type unop = Uneg | Unot

type binop =
  | Badd | Bsub | Bmul | Bdiv | Bmod
  | Blt | Ble | Bgt | Bge | Beq | Bne
  | Band | Bor

(** Expressions; [Eindex] covers both scalar variables (empty index list via
    [Evar]) and array elements. *)
type expr = { desc : expr_desc; eloc : Loc.t }

and expr_desc =
  | Eint of int
  | Efloat of float
  | Evar of string
  | Eindex of string * expr list  (** [a[i][j]] *)
  | Eunop of unop * expr
  | Ebinop of binop * expr * expr
  | Ecall of string * expr list  (** intrinsics: sqrt, exp, fabs, pow, min, max *)
  | Eternary of expr * expr * expr  (** [c ? a : b] *)

type assign_op = Aset | Aadd | Asub | Amul | Adiv

(** Loop direction/step: [for (int i = lo; i < hi; i += step)] or the
    decreasing form. *)
type for_header = {
  index : string;
  lo : expr;  (** initial value *)
  cmp : binop;  (** Blt, Ble, Bgt or Bge *)
  bound : expr;
  step : int;  (** signed step; [i++] is 1, [i--] is -1 *)
}

type stmt = { sdesc : stmt_desc; sloc : Loc.t }

and stmt_desc =
  | Sassign of lvalue * assign_op * expr
  | Sdecl_scalar of ty * string * expr option
  | Sdecl_array of ty * string * expr list  (** local array with dim exprs *)
  | Sfor of for_header * stmt list
  | Sif of expr * stmt list * stmt list
  | Sblock of stmt list

and lvalue = { base : string; indices : expr list; lloc : Loc.t }

type param =
  | Pscalar of ty * string
  | Parray of ty * string * expr list  (** dims may reference earlier int params *)

type kernel = {
  name : string;
  params : param list;
  body : stmt list;
  kloc : Loc.t;
}

type program = kernel list

(* -------------------------------------------------------------------- *)
(* Constructors                                                          *)

let mk_expr ?(loc = Loc.dummy) desc = { desc; eloc = loc }
let mk_stmt ?(loc = Loc.dummy) sdesc = { sdesc; sloc = loc }

(* -------------------------------------------------------------------- *)
(* Pretty-printing back to DSL surface syntax                            *)

let string_of_binop = function
  | Badd -> "+" | Bsub -> "-" | Bmul -> "*" | Bdiv -> "/" | Bmod -> "%"
  | Blt -> "<" | Ble -> "<=" | Bgt -> ">" | Bge -> ">="
  | Beq -> "==" | Bne -> "!=" | Band -> "&&" | Bor -> "||"

let prec_of_binop = function
  | Bor -> 1
  | Band -> 2
  | Beq | Bne -> 3
  | Blt | Ble | Bgt | Bge -> 4
  | Badd | Bsub -> 5
  | Bmul | Bdiv | Bmod -> 6

let rec pp_expr_prec prec ppf e =
  match e.desc with
  | Eint n -> Fmt.int ppf n
  | Efloat f ->
      if Float.is_integer f && Float.abs f < 1e15 then Fmt.pf ppf "%.1f" f
      else Fmt.pf ppf "%.17g" f
  | Evar v -> Fmt.string ppf v
  | Eindex (a, idx) ->
      Fmt.pf ppf "%s%a" a
        (Fmt.list ~sep:Fmt.nop (fun ppf i -> Fmt.pf ppf "[%a]" (pp_expr_prec 0) i))
        idx
  | Eunop (Uneg, a) -> Fmt.pf ppf "-%a" (pp_expr_prec 7) a
  | Eunop (Unot, a) -> Fmt.pf ppf "!%a" (pp_expr_prec 7) a
  | Ebinop (op, a, b) ->
      let p = prec_of_binop op in
      let body ppf =
        Fmt.pf ppf "%a %s %a" (pp_expr_prec p) a (string_of_binop op)
          (pp_expr_prec (p + 1)) b
      in
      if prec > p then Fmt.pf ppf "(%t)" body else body ppf
  | Ecall (f, args) ->
      Fmt.pf ppf "%s(%a)" f (Fmt.list ~sep:(Fmt.any ", ") (pp_expr_prec 0)) args
  | Eternary (c, a, b) ->
      let body ppf =
        Fmt.pf ppf "%a ? %a : %a" (pp_expr_prec 1) c (pp_expr_prec 1) a
          (pp_expr_prec 0) b
      in
      if prec > 0 then Fmt.pf ppf "(%t)" body else body ppf

let pp_expr = pp_expr_prec 0

let string_of_ty = function Tint -> "int" | Tdouble -> "double"

let pp_lvalue ppf { base; indices; _ } =
  Fmt.pf ppf "%s%a" base
    (Fmt.list ~sep:Fmt.nop (fun ppf i -> Fmt.pf ppf "[%a]" pp_expr i))
    indices

let string_of_assign_op = function
  | Aset -> "=" | Aadd -> "+=" | Asub -> "-=" | Amul -> "*=" | Adiv -> "/="

let rec pp_stmt ind ppf s =
  let pad = String.make (2 * ind) ' ' in
  match s.sdesc with
  | Sassign (lv, op, e) ->
      Fmt.pf ppf "%s%a %s %a;" pad pp_lvalue lv (string_of_assign_op op) pp_expr e
  | Sdecl_scalar (ty, v, None) -> Fmt.pf ppf "%s%s %s;" pad (string_of_ty ty) v
  | Sdecl_scalar (ty, v, Some e) ->
      Fmt.pf ppf "%s%s %s = %a;" pad (string_of_ty ty) v pp_expr e
  | Sdecl_array (ty, v, dims) ->
      Fmt.pf ppf "%s%s %s%a;" pad (string_of_ty ty) v
        (Fmt.list ~sep:Fmt.nop (fun ppf d -> Fmt.pf ppf "[%a]" pp_expr d))
        dims
  | Sfor (h, body) ->
      let step_str =
        if h.step = 1 then Fmt.str "%s++" h.index
        else if h.step = -1 then Fmt.str "%s--" h.index
        else if h.step > 0 then Fmt.str "%s += %d" h.index h.step
        else Fmt.str "%s -= %d" h.index (-h.step)
      in
      Fmt.pf ppf "%sfor (int %s = %a; %s %s %a; %s) {@\n%a@\n%s}" pad h.index
        pp_expr h.lo h.index (string_of_binop h.cmp) pp_expr h.bound step_str
        (pp_stmts (ind + 1)) body pad
  | Sif (c, then_, []) ->
      Fmt.pf ppf "%sif (%a) {@\n%a@\n%s}" pad pp_expr c (pp_stmts (ind + 1))
        then_ pad
  | Sif (c, then_, else_) ->
      Fmt.pf ppf "%sif (%a) {@\n%a@\n%s} else {@\n%a@\n%s}" pad pp_expr c
        (pp_stmts (ind + 1)) then_ pad (pp_stmts (ind + 1)) else_ pad
  | Sblock body -> Fmt.pf ppf "%s{@\n%a@\n%s}" pad (pp_stmts (ind + 1)) body pad

and pp_stmts ind ppf stmts =
  Fmt.list ~sep:Fmt.cut (pp_stmt ind) ppf stmts

let pp_param ppf = function
  | Pscalar (ty, v) -> Fmt.pf ppf "%s %s" (string_of_ty ty) v
  | Parray (ty, v, dims) ->
      Fmt.pf ppf "%s %s%a" (string_of_ty ty) v
        (Fmt.list ~sep:Fmt.nop (fun ppf d -> Fmt.pf ppf "[%a]" pp_expr d))
        dims

let pp_kernel ppf k =
  Fmt.pf ppf "@[<v>void %s(%a)@,{@,%a@,}@]" k.name
    (Fmt.list ~sep:(Fmt.any ", ") pp_param)
    k.params (pp_stmts 1) k.body

let pp_program ppf p = Fmt.list ~sep:(Fmt.any "@,@,") pp_kernel ppf p

let kernel_to_string k = Fmt.str "%a" pp_kernel k
