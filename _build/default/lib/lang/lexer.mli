(** Hand-written lexer for the kernel DSL (C-style comments, exact source
    spans on every token). *)

type token =
  | INT of int
  | FLOAT of float
  | IDENT of string
  | KW_VOID | KW_INT | KW_DOUBLE | KW_FLOAT | KW_FOR | KW_IF | KW_ELSE
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA | QUESTION | COLON
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | ASSIGN | PLUSEQ | MINUSEQ | STAREQ | SLASHEQ
  | PLUSPLUS | MINUSMINUS
  | LT | LE | GT | GE | EQ | NE | ANDAND | OROR | BANG
  | EOF

val token_name : token -> string

type spanned = { tok : token; loc : Daisy_support.Loc.t }

val tokenize : source:string -> string -> spanned list
(** Lex a whole source string (ends with [EOF]).
    @raise Daisy_support.Diag.Error on malformed input. *)
