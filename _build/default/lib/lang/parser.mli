(** Recursive-descent parser for the kernel DSL (precedence-climbing
    expressions; all errors via {!Daisy_support.Diag.Error} with exact
    source spans). *)

val parse_program : ?source:string -> string -> Ast.program

val parse_kernel_string : ?source:string -> string -> Ast.kernel
(** Parse exactly one kernel. *)
