(** Recursive-descent parser for the kernel DSL.

    Expression parsing uses precedence climbing; the grammar is LL(2) at
    worst (distinguishing declarations from assignments and array parameters
    from scalars). All syntax errors are reported via {!Diag.Error} with
    precise locations. *)

open Daisy_support
open Ast

type state = { mutable toks : Lexer.spanned list }

let peek st =
  match st.toks with [] -> assert false | t :: _ -> t

let advance st =
  match st.toks with
  | [] -> assert false
  | t :: rest ->
      if t.Lexer.tok <> Lexer.EOF then st.toks <- rest;
      t

let error_at loc fmt = Diag.errorf ~loc fmt

let expect st tok =
  let t = peek st in
  if t.Lexer.tok = tok then advance st
  else
    error_at t.Lexer.loc "expected %s but found %s" (Lexer.token_name tok)
      (Lexer.token_name t.Lexer.tok)

let expect_ident st =
  let t = peek st in
  match t.Lexer.tok with
  | Lexer.IDENT s -> ignore (advance st); (s, t.Lexer.loc)
  | other -> error_at t.Lexer.loc "expected identifier but found %s" (Lexer.token_name other)

let parse_ty st =
  let t = peek st in
  match t.Lexer.tok with
  | Lexer.KW_INT -> ignore (advance st); Tint
  | Lexer.KW_DOUBLE | Lexer.KW_FLOAT -> ignore (advance st); Tdouble
  | other -> error_at t.Lexer.loc "expected a type but found %s" (Lexer.token_name other)

let is_ty = function
  | Lexer.KW_INT | Lexer.KW_DOUBLE | Lexer.KW_FLOAT -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Expressions                                                          *)

let binop_of_token = function
  | Lexer.PLUS -> Some Badd | Lexer.MINUS -> Some Bsub
  | Lexer.STAR -> Some Bmul | Lexer.SLASH -> Some Bdiv
  | Lexer.PERCENT -> Some Bmod
  | Lexer.LT -> Some Blt | Lexer.LE -> Some Ble
  | Lexer.GT -> Some Bgt | Lexer.GE -> Some Bge
  | Lexer.EQ -> Some Beq | Lexer.NE -> Some Bne
  | Lexer.ANDAND -> Some Band | Lexer.OROR -> Some Bor
  | _ -> None

let rec parse_expr st = parse_ternary st

and parse_ternary st =
  let c = parse_binary st 1 in
  let t = peek st in
  if t.Lexer.tok = Lexer.QUESTION then begin
    ignore (advance st);
    let a = parse_ternary st in
    ignore (expect st Lexer.COLON);
    let b = parse_ternary st in
    mk_expr ~loc:(Loc.merge c.eloc b.eloc) (Eternary (c, a, b))
  end
  else c

and parse_binary st min_prec =
  let lhs = ref (parse_unary st) in
  let continue_ = ref true in
  while !continue_ do
    let t = peek st in
    match binop_of_token t.Lexer.tok with
    | Some op when prec_of_binop op >= min_prec ->
        ignore (advance st);
        let rhs = parse_binary st (prec_of_binop op + 1) in
        lhs := mk_expr ~loc:(Loc.merge !lhs.eloc rhs.eloc) (Ebinop (op, !lhs, rhs))
    | _ -> continue_ := false
  done;
  !lhs

and parse_unary st =
  let t = peek st in
  match t.Lexer.tok with
  | Lexer.MINUS ->
      ignore (advance st);
      let e = parse_unary st in
      mk_expr ~loc:(Loc.merge t.Lexer.loc e.eloc) (Eunop (Uneg, e))
  | Lexer.BANG ->
      ignore (advance st);
      let e = parse_unary st in
      mk_expr ~loc:(Loc.merge t.Lexer.loc e.eloc) (Eunop (Unot, e))
  | _ -> parse_postfix st

and parse_postfix st =
  let t = peek st in
  match t.Lexer.tok with
  | Lexer.INT n -> ignore (advance st); mk_expr ~loc:t.Lexer.loc (Eint n)
  | Lexer.FLOAT f -> ignore (advance st); mk_expr ~loc:t.Lexer.loc (Efloat f)
  | Lexer.LPAREN ->
      ignore (advance st);
      let e = parse_expr st in
      ignore (expect st Lexer.RPAREN);
      e
  | Lexer.IDENT name -> (
      ignore (advance st);
      let next = peek st in
      match next.Lexer.tok with
      | Lexer.LPAREN ->
          ignore (advance st);
          let args = parse_args st in
          let close = expect st Lexer.RPAREN in
          mk_expr ~loc:(Loc.merge t.Lexer.loc close.Lexer.loc) (Ecall (name, args))
      | Lexer.LBRACKET ->
          let indices = parse_indices st in
          mk_expr ~loc:t.Lexer.loc (Eindex (name, indices))
      | _ -> mk_expr ~loc:t.Lexer.loc (Evar name))
  | other -> error_at t.Lexer.loc "expected an expression but found %s" (Lexer.token_name other)

and parse_args st =
  if (peek st).Lexer.tok = Lexer.RPAREN then []
  else
    let rec go acc =
      let e = parse_expr st in
      if (peek st).Lexer.tok = Lexer.COMMA then begin
        ignore (advance st);
        go (e :: acc)
      end
      else List.rev (e :: acc)
    in
    go []

and parse_indices st =
  let rec go acc =
    if (peek st).Lexer.tok = Lexer.LBRACKET then begin
      ignore (advance st);
      let e = parse_expr st in
      ignore (expect st Lexer.RBRACKET);
      go (e :: acc)
    end
    else List.rev acc
  in
  go []

(* ------------------------------------------------------------------ *)
(* Statements                                                           *)

let parse_for_header st =
  ignore (expect st Lexer.LPAREN);
  ignore (expect st Lexer.KW_INT);
  let index, _ = expect_ident st in
  ignore (expect st Lexer.ASSIGN);
  let lo = parse_expr st in
  ignore (expect st Lexer.SEMI);
  let idx2, idx2_loc = expect_ident st in
  if not (String.equal idx2 index) then
    error_at idx2_loc "loop condition must test the loop variable %s" index;
  let cmp_tok = advance st in
  let cmp =
    match cmp_tok.Lexer.tok with
    | Lexer.LT -> Blt | Lexer.LE -> Ble | Lexer.GT -> Bgt | Lexer.GE -> Bge
    | other ->
        error_at cmp_tok.Lexer.loc
          "expected a comparison operator in loop condition, found %s"
          (Lexer.token_name other)
  in
  let bound = parse_expr st in
  ignore (expect st Lexer.SEMI);
  let idx3, idx3_loc = expect_ident st in
  if not (String.equal idx3 index) then
    error_at idx3_loc "loop increment must update the loop variable %s" index;
  let step_tok = advance st in
  let step =
    match step_tok.Lexer.tok with
    | Lexer.PLUSPLUS -> 1
    | Lexer.MINUSMINUS -> -1
    | Lexer.PLUSEQ -> (
        let t = peek st in
        match t.Lexer.tok with
        | Lexer.INT n -> ignore (advance st); n
        | other ->
            error_at t.Lexer.loc "expected a constant step, found %s"
              (Lexer.token_name other))
    | Lexer.MINUSEQ -> (
        let t = peek st in
        match t.Lexer.tok with
        | Lexer.INT n -> ignore (advance st); -n
        | other ->
            error_at t.Lexer.loc "expected a constant step, found %s"
              (Lexer.token_name other))
    | other ->
        error_at step_tok.Lexer.loc "expected '++', '--', '+=' or '-=', found %s"
          (Lexer.token_name other)
  in
  if step = 0 then error_at step_tok.Lexer.loc "loop step must be non-zero";
  ignore (expect st Lexer.RPAREN);
  { index; lo; cmp; bound; step }

let rec parse_stmt st : stmt =
  let t = peek st in
  match t.Lexer.tok with
  | Lexer.KW_FOR ->
      ignore (advance st);
      let header = parse_for_header st in
      let body = parse_stmt_or_block st in
      mk_stmt ~loc:t.Lexer.loc (Sfor (header, body))
  | Lexer.KW_IF ->
      ignore (advance st);
      ignore (expect st Lexer.LPAREN);
      let cond = parse_expr st in
      ignore (expect st Lexer.RPAREN);
      let then_ = parse_stmt_or_block st in
      let else_ =
        if (peek st).Lexer.tok = Lexer.KW_ELSE then begin
          ignore (advance st);
          parse_stmt_or_block st
        end
        else []
      in
      mk_stmt ~loc:t.Lexer.loc (Sif (cond, then_, else_))
  | Lexer.LBRACE -> mk_stmt ~loc:t.Lexer.loc (Sblock (parse_block st))
  | tok when is_ty tok ->
      let ty = parse_ty st in
      let name, _ = expect_ident st in
      let t2 = peek st in
      (match t2.Lexer.tok with
      | Lexer.SEMI ->
          ignore (advance st);
          mk_stmt ~loc:t.Lexer.loc (Sdecl_scalar (ty, name, None))
      | Lexer.ASSIGN ->
          ignore (advance st);
          let e = parse_expr st in
          ignore (expect st Lexer.SEMI);
          mk_stmt ~loc:t.Lexer.loc (Sdecl_scalar (ty, name, Some e))
      | Lexer.LBRACKET ->
          let dims = parse_indices st in
          ignore (expect st Lexer.SEMI);
          mk_stmt ~loc:t.Lexer.loc (Sdecl_array (ty, name, dims))
      | other ->
          error_at t2.Lexer.loc "expected ';', '=' or '[' in declaration, found %s"
            (Lexer.token_name other))
  | Lexer.IDENT base ->
      ignore (advance st);
      let indices = parse_indices st in
      let lv = { base; indices; lloc = t.Lexer.loc } in
      let op_tok = advance st in
      let op =
        match op_tok.Lexer.tok with
        | Lexer.ASSIGN -> Aset
        | Lexer.PLUSEQ -> Aadd
        | Lexer.MINUSEQ -> Asub
        | Lexer.STAREQ -> Amul
        | Lexer.SLASHEQ -> Adiv
        | other ->
            error_at op_tok.Lexer.loc "expected an assignment operator, found %s"
              (Lexer.token_name other)
      in
      let e = parse_expr st in
      ignore (expect st Lexer.SEMI);
      mk_stmt ~loc:t.Lexer.loc (Sassign (lv, op, e))
  | other ->
      error_at t.Lexer.loc "expected a statement but found %s" (Lexer.token_name other)

and parse_stmt_or_block st : stmt list =
  if (peek st).Lexer.tok = Lexer.LBRACE then parse_block st
  else [ parse_stmt st ]

and parse_block st : stmt list =
  ignore (expect st Lexer.LBRACE);
  let rec go acc =
    if (peek st).Lexer.tok = Lexer.RBRACE then begin
      ignore (advance st);
      List.rev acc
    end
    else go (parse_stmt st :: acc)
  in
  go []

(* ------------------------------------------------------------------ *)
(* Kernels and programs                                                 *)

let parse_param st =
  let ty = parse_ty st in
  let name, _ = expect_ident st in
  if (peek st).Lexer.tok = Lexer.LBRACKET then
    let dims = parse_indices st in
    Parray (ty, name, dims)
  else Pscalar (ty, name)

let parse_kernel st =
  let start = expect st Lexer.KW_VOID in
  let name, _ = expect_ident st in
  ignore (expect st Lexer.LPAREN);
  let params =
    if (peek st).Lexer.tok = Lexer.RPAREN then []
    else
      let rec go acc =
        let p = parse_param st in
        if (peek st).Lexer.tok = Lexer.COMMA then begin
          ignore (advance st);
          go (p :: acc)
        end
        else List.rev (p :: acc)
      in
      go []
  in
  ignore (expect st Lexer.RPAREN);
  let body = parse_block st in
  { name; params; body; kloc = start.Lexer.loc }

(** [parse_program ~source text] parses a whole source file. *)
let parse_program ?(source = "<string>") text : program =
  let st = { toks = Lexer.tokenize ~source text } in
  let rec go acc =
    if (peek st).Lexer.tok = Lexer.EOF then List.rev acc
    else go (parse_kernel st :: acc)
  in
  go []

(** [parse_kernel_string ~source text] parses exactly one kernel. *)
let parse_kernel_string ?(source = "<string>") text : kernel =
  match parse_program ~source text with
  | [ k ] -> k
  | [] -> Diag.errorf "no kernel found in %s" source
  | _ -> Diag.errorf "expected exactly one kernel in %s" source
