(** Semantic analysis for the kernel DSL: scoping, array ranks, int/double
    typing with C-style promotion. The checked result feeds both lowering
    paths. *)

type array_info = { elem_ty : Ast.ty; dims : Ast.expr list }

type binding =
  | Bparam_int  (** symbolic size parameter *)
  | Bparam_scalar of Ast.ty
  | Barray of array_info
  | Blocal_scalar of Ast.ty
  | Blocal_array of array_info
  | Bloop_index

type env = {
  kernel : Ast.kernel;
  bindings : binding Daisy_support.Util.SMap.t;
}

val is_intrinsic : string -> bool
val intrinsic_arity : string -> int

val infer_expr : binding Daisy_support.Util.SMap.t -> Ast.expr -> Ast.ty
(** @raise Daisy_support.Diag.Error on type/scope violations. *)

val check : Ast.kernel -> env
(** Run semantic analysis; raises {!Daisy_support.Diag.Error} on the first
    violation. *)

val size_params : env -> string list
val scalar_params : env -> string list
val array_params : env -> (string * array_info) list
