(** Hand-written lexer for the kernel DSL.

    Tokenizes a whole source string eagerly; positions are tracked per
    character so diagnostics point at exact spans. Comments are C-style
    ([//] line and [/* */] block). *)

open Daisy_support

type token =
  | INT of int
  | FLOAT of float
  | IDENT of string
  | KW_VOID | KW_INT | KW_DOUBLE | KW_FLOAT | KW_FOR | KW_IF | KW_ELSE
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA | QUESTION | COLON
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | ASSIGN | PLUSEQ | MINUSEQ | STAREQ | SLASHEQ
  | PLUSPLUS | MINUSMINUS
  | LT | LE | GT | GE | EQ | NE | ANDAND | OROR | BANG
  | EOF

let token_name = function
  | INT _ -> "integer" | FLOAT _ -> "float" | IDENT _ -> "identifier"
  | KW_VOID -> "'void'" | KW_INT -> "'int'" | KW_DOUBLE -> "'double'"
  | KW_FLOAT -> "'float'" | KW_FOR -> "'for'" | KW_IF -> "'if'"
  | KW_ELSE -> "'else'"
  | LPAREN -> "'('" | RPAREN -> "')'" | LBRACE -> "'{'" | RBRACE -> "'}'"
  | LBRACKET -> "'['" | RBRACKET -> "']'" | SEMI -> "';'" | COMMA -> "','"
  | QUESTION -> "'?'" | COLON -> "':'"
  | PLUS -> "'+'" | MINUS -> "'-'" | STAR -> "'*'" | SLASH -> "'/'"
  | PERCENT -> "'%'"
  | ASSIGN -> "'='" | PLUSEQ -> "'+='" | MINUSEQ -> "'-='"
  | STAREQ -> "'*='" | SLASHEQ -> "'/='"
  | PLUSPLUS -> "'++'" | MINUSMINUS -> "'--'"
  | LT -> "'<'" | LE -> "'<='" | GT -> "'>'" | GE -> "'>='"
  | EQ -> "'=='" | NE -> "'!='" | ANDAND -> "'&&'" | OROR -> "'||'"
  | BANG -> "'!'" | EOF -> "end of input"

type spanned = { tok : token; loc : Loc.t }

let keywords =
  [ ("void", KW_VOID); ("int", KW_INT); ("double", KW_DOUBLE);
    ("float", KW_FLOAT); ("for", KW_FOR); ("if", KW_IF); ("else", KW_ELSE) ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

(** [tokenize ~source text] lexes [text] into a token list ending with [EOF].
    Raises {!Diag.Error} on malformed input. *)
let tokenize ~source text =
  let n = String.length text in
  let pos = ref Loc.start_pos in
  let peek k = if !pos.Loc.offset + k < n then Some text.[!pos.Loc.offset + k] else None in
  let cur () = peek 0 in
  let bump () =
    match cur () with
    | Some c -> pos := Loc.advance !pos c
    | None -> ()
  in
  let tokens = ref [] in
  let emit start tok =
    tokens := { tok; loc = Loc.make ~source ~start ~stop:!pos } :: !tokens
  in
  let lex_error start fmt =
    Fmt.kstr
      (fun m ->
        Diag.errorf ~loc:(Loc.make ~source ~start ~stop:!pos) "%s" m)
      fmt
  in
  let rec skip_ws () =
    match cur () with
    | Some (' ' | '\t' | '\r' | '\n') -> bump (); skip_ws ()
    | Some '/' when peek 1 = Some '/' ->
        let rec to_eol () =
          match cur () with
          | Some '\n' | None -> ()
          | Some _ -> bump (); to_eol ()
        in
        to_eol (); skip_ws ()
    | Some '/' when peek 1 = Some '*' ->
        let start = !pos in
        bump (); bump ();
        let rec to_close () =
          match (cur (), peek 1) with
          | Some '*', Some '/' -> bump (); bump ()
          | Some _, _ -> bump (); to_close ()
          | None, _ -> lex_error start "unterminated block comment"
        in
        to_close (); skip_ws ()
    | _ -> ()
  in
  let lex_number start =
    let buf = Buffer.create 16 in
    let rec digits () =
      match cur () with
      | Some c when is_digit c -> Buffer.add_char buf c; bump (); digits ()
      | _ -> ()
    in
    digits ();
    let is_float = ref false in
    (match cur () with
    | Some '.' when (match peek 1 with Some c -> is_digit c | None -> false) ->
        is_float := true;
        Buffer.add_char buf '.'; bump (); digits ()
    | Some '.' ->
        is_float := true;
        Buffer.add_char buf '.'; bump ()
    | _ -> ());
    (match cur () with
    | Some ('e' | 'E') ->
        is_float := true;
        Buffer.add_char buf 'e'; bump ();
        (match cur () with
        | Some (('+' | '-') as c) -> Buffer.add_char buf c; bump ()
        | _ -> ());
        (match cur () with
        | Some c when is_digit c -> digits ()
        | _ -> lex_error start "malformed float exponent")
    | _ -> ());
    let s = Buffer.contents buf in
    if !is_float then emit start (FLOAT (float_of_string s))
    else emit start (INT (int_of_string s))
  in
  let lex_ident start =
    let buf = Buffer.create 16 in
    let rec go () =
      match cur () with
      | Some c when is_ident_char c -> Buffer.add_char buf c; bump (); go ()
      | _ -> ()
    in
    go ();
    let s = Buffer.contents buf in
    match List.assoc_opt s keywords with
    | Some kw -> emit start kw
    | None -> emit start (IDENT s)
  in
  let two start a = bump (); bump (); emit start a in
  let one start a = bump (); emit start a in
  let rec loop () =
    skip_ws ();
    let start = !pos in
    match cur () with
    | None -> emit start EOF
    | Some c when is_digit c -> lex_number start; loop ()
    | Some c when is_ident_start c -> lex_ident start; loop ()
    | Some '.' when (match peek 1 with Some c -> is_digit c | None -> false) ->
        lex_number start; loop ()
    | Some '+' when peek 1 = Some '+' -> two start PLUSPLUS; loop ()
    | Some '+' when peek 1 = Some '=' -> two start PLUSEQ; loop ()
    | Some '+' -> one start PLUS; loop ()
    | Some '-' when peek 1 = Some '-' -> two start MINUSMINUS; loop ()
    | Some '-' when peek 1 = Some '=' -> two start MINUSEQ; loop ()
    | Some '-' -> one start MINUS; loop ()
    | Some '*' when peek 1 = Some '=' -> two start STAREQ; loop ()
    | Some '*' -> one start STAR; loop ()
    | Some '/' when peek 1 = Some '=' -> two start SLASHEQ; loop ()
    | Some '/' -> one start SLASH; loop ()
    | Some '%' -> one start PERCENT; loop ()
    | Some '<' when peek 1 = Some '=' -> two start LE; loop ()
    | Some '<' -> one start LT; loop ()
    | Some '>' when peek 1 = Some '=' -> two start GE; loop ()
    | Some '>' -> one start GT; loop ()
    | Some '=' when peek 1 = Some '=' -> two start EQ; loop ()
    | Some '=' -> one start ASSIGN; loop ()
    | Some '!' when peek 1 = Some '=' -> two start NE; loop ()
    | Some '!' -> one start BANG; loop ()
    | Some '&' when peek 1 = Some '&' -> two start ANDAND; loop ()
    | Some '|' when peek 1 = Some '|' -> two start OROR; loop ()
    | Some '(' -> one start LPAREN; loop ()
    | Some ')' -> one start RPAREN; loop ()
    | Some '{' -> one start LBRACE; loop ()
    | Some '}' -> one start RBRACE; loop ()
    | Some '[' -> one start LBRACKET; loop ()
    | Some ']' -> one start RBRACKET; loop ()
    | Some ';' -> one start SEMI; loop ()
    | Some ',' -> one start COMMA; loop ()
    | Some '?' -> one start QUESTION; loop ()
    | Some ':' -> one start COLON; loop ()
    | Some c -> lex_error start "unexpected character %C" c
  in
  loop ();
  List.rev !tokens
