lib/lang/ast.ml: Daisy_support Float Fmt Loc String
