lib/lang/lexer.ml: Buffer Daisy_support Diag Fmt List Loc String
