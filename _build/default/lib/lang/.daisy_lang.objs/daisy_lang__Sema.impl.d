lib/lang/sema.ml: Ast Daisy_support Diag List Option Util
