lib/lang/lower.mli: Ast Daisy_loopir Daisy_poly Sema
