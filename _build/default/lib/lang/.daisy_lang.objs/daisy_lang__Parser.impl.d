lib/lang/parser.ml: Ast Daisy_support Diag Lexer List Loc String
