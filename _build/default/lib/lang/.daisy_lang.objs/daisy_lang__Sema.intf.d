lib/lang/sema.mli: Ast Daisy_support
