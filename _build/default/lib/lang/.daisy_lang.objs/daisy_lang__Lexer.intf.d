lib/lang/lexer.mli: Daisy_support
