lib/lang/lower.ml: Ast Daisy_loopir Daisy_poly Daisy_support Diag List Parser Sema Util
