(** Direct lowering from the checked DSL AST to loopir — the "semantic"
    path used to cross-check the lifting pipeline (AST -> lir -> lift). *)

val int_expr : Ast.expr -> Daisy_poly.Expr.t
(** Convert an integer-typed AST expression to a symbolic expression;
    raises {!Daisy_support.Diag.Error} on non-integer constructs. *)

val lower : Sema.env -> Daisy_loopir.Ir.program

val program_of_string : ?source:string -> string -> Daisy_loopir.Ir.program
(** Parse + check + lower in one call. *)
