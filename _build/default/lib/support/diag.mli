(** Diagnostics: structured errors and warnings carrying a {!Loc.t}. All
    user-facing failures are raised as {!exception:Error}. *)

type severity = Err | Warn | Note

type t = { severity : severity; loc : Loc.t; message : string }

exception Error of t

val pp_severity : severity Fmt.t
val pp : t Fmt.t
val to_string : t -> string

val make :
  ?severity:severity -> ?loc:Loc.t -> ('a, Format.formatter, unit, t) format4 -> 'a

val errorf : ?loc:Loc.t -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!exception:Error} with a formatted message. *)
