(** Source locations for the DSL frontend and diagnostics.

    A location is a half-open span [(start, stop))] within a named source
    (usually a file name or ["<string>"] for in-memory programs). *)

type pos = {
  line : int;  (** 1-based line number *)
  col : int;  (** 1-based column number *)
  offset : int;  (** 0-based byte offset *)
}

type t = { source : string; start : pos; stop : pos }

let start_pos = { line = 1; col = 1; offset = 0 }

let dummy =
  { source = "<none>"; start = start_pos; stop = start_pos }

let make ~source ~start ~stop = { source; start; stop }

(** [advance p c] is the position after reading character [c] at [p]. *)
let advance p c =
  if Char.equal c '\n' then
    { line = p.line + 1; col = 1; offset = p.offset + 1 }
  else { p with col = p.col + 1; offset = p.offset + 1 }

(** [merge a b] spans from the start of [a] to the stop of [b]. *)
let merge a b = { a with stop = b.stop }

let pp ppf { source; start; stop } =
  if start.line = stop.line then
    Fmt.pf ppf "%s:%d:%d-%d" source start.line start.col stop.col
  else
    Fmt.pf ppf "%s:%d:%d-%d:%d" source start.line start.col stop.line stop.col

let to_string t = Fmt.str "%a" pp t
