(** Small general-purpose helpers shared across the toolchain. *)

module SMap : Map.S with type key = string
module SSet : Set.S with type elt = string
module IMap : Map.S with type key = int
module ISet : Set.S with type elt = int

val gcd : int -> int -> int
val lcm : int -> int -> int

val pow : int -> int -> int
(** [pow base e] for non-negative [e]. *)

val permutations : 'a list -> 'a list list
(** All permutations (intended for small lists). *)

val pairs : 'a list -> ('a * 'a) list
(** All unordered pairs of distinct positions. *)

val sum_by : ('a -> int) -> 'a list -> int
val sum_byf : ('a -> float) -> 'a list -> float
val geomean : float list -> float
val mean : float list -> float
val take : int -> 'a list -> 'a list
val drop : int -> 'a list -> 'a list
val span : ('a -> bool) -> 'a list -> 'a list * 'a list
val list_index_of : ('a -> 'b -> bool) -> 'a -> 'b list -> int option

val dedup : eq:('a -> 'a -> bool) -> 'a list -> 'a list
(** Remove duplicates, keeping first occurrences (O(n^2)). *)

val fresh_name : string -> SSet.t -> string
(** [fresh_name base taken] — [base], or [base_0], [base_1], ... *)

val pp_si : float Fmt.t
(** Engineering-friendly float formatting for report tables. *)
