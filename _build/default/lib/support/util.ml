(** Small general-purpose helpers shared across the toolchain. *)

module SMap = Map.Make (String)
module SSet = Set.Make (String)
module IMap = Map.Make (Int)
module ISet = Set.Make (Int)

let rec gcd a b =
  let a = abs a and b = abs b in
  if b = 0 then a else gcd b (a mod b)

let lcm a b = if a = 0 || b = 0 then 0 else abs (a * b) / gcd a b

(** [pow base e] for non-negative [e]. *)
let rec pow base e =
  if e < 0 then invalid_arg "Util.pow"
  else if e = 0 then 1
  else
    let h = pow base (e / 2) in
    if e mod 2 = 0 then h * h else h * h * base

(** [permutations xs] enumerates all permutations of [xs] (lexicographic in
    input order). Intended for small lists (stride-minimization search). *)
let rec permutations = function
  | [] -> [ [] ]
  | xs ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y != x) xs in
          List.map (fun p -> x :: p) (permutations rest))
        xs

(** [pairs xs] is all unordered pairs of distinct positions in [xs]. *)
let pairs xs =
  let rec go = function
    | [] -> []
    | x :: rest -> List.map (fun y -> (x, y)) rest @ go rest
  in
  go xs

let sum_by f xs = List.fold_left (fun acc x -> acc + f x) 0 xs
let sum_byf f xs = List.fold_left (fun acc x -> acc +. f x) 0.0 xs

let geomean xs =
  match xs with
  | [] -> nan
  | _ ->
      let n = float_of_int (List.length xs) in
      exp (List.fold_left (fun acc x -> acc +. log x) 0.0 xs /. n)

let mean xs =
  match xs with
  | [] -> nan
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

(** [take n xs] is the first [n] elements of [xs] (or all of them). *)
let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let rec drop n = function
  | xs when n <= 0 -> xs
  | [] -> []
  | _ :: rest -> drop (n - 1) rest

(** [span p xs] splits [xs] into the longest prefix satisfying [p] and the
    remainder. *)
let span p xs =
  let rec go acc = function
    | x :: rest when p x -> go (x :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  go [] xs

let list_index_of eq x xs =
  let rec go i = function
    | [] -> None
    | y :: rest -> if eq x y then Some i else go (i + 1) rest
  in
  go 0 xs

(** [dedup ~eq xs] removes duplicates, keeping first occurrences. O(n^2);
    fine for the short lists used here. *)
let dedup ~eq xs =
  List.fold_left
    (fun acc x -> if List.exists (eq x) acc then acc else x :: acc)
    [] xs
  |> List.rev

(** Fresh-name generation: [fresh_name base taken] returns [base] or
    [base_0], [base_1], ... — the first not in [taken]. *)
let fresh_name base taken =
  if not (SSet.mem base taken) then base
  else
    let rec go i =
      let candidate = Printf.sprintf "%s_%d" base i in
      if SSet.mem candidate taken then go (i + 1) else candidate
    in
    go 0

(** Format a float with engineering-friendly precision for report tables. *)
let pp_si ppf v =
  let a = Float.abs v in
  if a = 0.0 then Fmt.pf ppf "0"
  else if a >= 1e9 then Fmt.pf ppf "%.2fG" (v /. 1e9)
  else if a >= 1e6 then Fmt.pf ppf "%.2fM" (v /. 1e6)
  else if a >= 1e3 then Fmt.pf ppf "%.2fk" (v /. 1e3)
  else if a >= 1.0 then Fmt.pf ppf "%.2f" v
  else if a >= 1e-3 then Fmt.pf ppf "%.2fm" (v *. 1e3)
  else Fmt.pf ppf "%.2fu" (v *. 1e6)
