(** Imperative union-find with path compression and union by rank. *)

type t

val create : int -> t
val find : t -> int -> int
val union : t -> int -> int -> unit
val same : t -> int -> int -> bool
val n_classes : t -> int

val groups : t -> int list list
(** Equivalence classes as sorted member lists, ordered by smallest
    member. *)
