(** Source locations: half-open spans within a named source. *)

type pos = { line : int; col : int; offset : int }

type t = { source : string; start : pos; stop : pos }

val start_pos : pos
val dummy : t
val make : source:string -> start:pos -> stop:pos -> t

val advance : pos -> char -> pos
(** Position after reading one character. *)

val merge : t -> t -> t
(** Span from the start of the first to the stop of the second. *)

val pp : t Fmt.t
val to_string : t -> string
