(** Diagnostics: structured errors and warnings carrying a {!Loc.t}.

    All user-facing failures in the toolchain are raised as {!exception:Error}
    so drivers can render them uniformly. *)

type severity = Err | Warn | Note

type t = { severity : severity; loc : Loc.t; message : string }

exception Error of t

let pp_severity ppf = function
  | Err -> Fmt.string ppf "error"
  | Warn -> Fmt.string ppf "warning"
  | Note -> Fmt.string ppf "note"

let pp ppf { severity; loc; message } =
  Fmt.pf ppf "%a: %a: %s" Loc.pp loc pp_severity severity message

let to_string t = Fmt.str "%a" pp t

let make ?(severity = Err) ?(loc = Loc.dummy) fmt =
  Fmt.kstr (fun message -> { severity; loc; message }) fmt

(** [errorf ~loc fmt ...] raises {!exception:Error} with a formatted message. *)
let errorf ?(loc = Loc.dummy) fmt =
  Fmt.kstr (fun message -> raise (Error { severity = Err; loc; message })) fmt

let () =
  Printexc.register_printer (function
    | Error d -> Some (to_string d)
    | _ -> None)
