lib/support/diag.ml: Fmt Loc Printexc
