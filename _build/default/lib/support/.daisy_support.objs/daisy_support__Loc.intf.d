lib/support/loc.mli: Fmt
