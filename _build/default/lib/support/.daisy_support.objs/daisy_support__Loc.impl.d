lib/support/loc.ml: Char Fmt
