lib/support/diag.mli: Fmt Format Loc
