lib/support/rng.mli:
