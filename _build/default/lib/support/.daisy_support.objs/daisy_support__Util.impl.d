lib/support/util.ml: Float Fmt Int List Map Printf Set String
