lib/support/util.mli: Fmt Map Set
