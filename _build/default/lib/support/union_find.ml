(** Imperative union-find with path compression and union by rank.

    Used by the fission pass to group computations into atomic clusters and
    by the SESE analysis for cycle equivalence classes. *)

type t = { parent : int array; rank : int array; mutable classes : int }

let create n =
  { parent = Array.init n (fun i -> i); rank = Array.make n 0; classes = n }

let rec find t i =
  let p = t.parent.(i) in
  if p = i then i
  else begin
    let r = find t p in
    t.parent.(i) <- r;
    r
  end

let union t i j =
  let ri = find t i and rj = find t j in
  if ri <> rj then begin
    t.classes <- t.classes - 1;
    if t.rank.(ri) < t.rank.(rj) then t.parent.(ri) <- rj
    else if t.rank.(ri) > t.rank.(rj) then t.parent.(rj) <- ri
    else begin
      t.parent.(rj) <- ri;
      t.rank.(ri) <- t.rank.(ri) + 1
    end
  end

let same t i j = find t i = find t j
let n_classes t = t.classes

(** [groups t] lists the equivalence classes, each as a sorted list of
    members, ordered by smallest member. *)
let groups t =
  let n = Array.length t.parent in
  let tbl = Hashtbl.create 16 in
  for i = n - 1 downto 0 do
    let r = find t i in
    let cur = try Hashtbl.find tbl r with Not_found -> [] in
    Hashtbl.replace tbl r (i :: cur)
  done;
  Hashtbl.fold (fun _ members acc -> members :: acc) tbl []
  |> List.sort (fun a b -> compare (List.hd a) (List.hd b))
