lib/arraylang/lower.mli: Alang Daisy_loopir
