lib/arraylang/lower.ml: Alang Daisy_loopir Daisy_poly Daisy_support List Printf Util
