lib/arraylang/alang.ml: Daisy_loopir Daisy_poly Daisy_support Float Fmt List String
