(** Lowering arraylang programs to loopir under a framework policy. *)

type policy = {
  per_op_temps : bool;
      (** NumPy's eager evaluation: every operator materializes a temp *)
  blas_dot : bool;
      (** [np.dot] on whole arrays becomes a library call; sliced operands
          always fall back to contraction loops *)
}

val numpy_policy : policy
val fused_policy : policy

val frontend_policy : policy
(** The daisy frontend path: fused statements, no framework BLAS (idiom
    detection finds the BLAS nests after normalization). *)

val lower : policy -> Alang.program -> Daisy_loopir.Ir.program
