(** Lowering arraylang programs to loopir under a framework policy.

    - [per_op_temps]: every elementwise operator materializes its result
      into a fresh temporary before the next operator consumes it — NumPy's
      eager evaluation. With it off, each statement becomes one fused loop
      nest (what a JIT like Numba or a dataflow frontend like DaCe's
      produces per statement).
    - [blas_dot]: [np.dot] on whole arrays becomes a tuned library call;
      sliced operands always fall back to contraction loops (this is why
      frameworks lose on syrk/syr2k, whose NPBench code slices — paper
      Fig. 9). *)

open Daisy_support
module Ir = Daisy_loopir.Ir
module Expr = Daisy_poly.Expr
open Alang

type policy = { per_op_temps : bool; blas_dot : bool }

let numpy_policy = { per_op_temps = true; blas_dot = true }
let fused_policy = { per_op_temps = false; blas_dot = true }

(** The daisy frontend path: fused statements, no framework BLAS (idiom
    detection will find the BLAS nests itself after normalization). *)
let frontend_policy = { per_op_temps = false; blas_dot = false }

type state = {
  policy : policy;
  env : env;
  mutable temps : (string * Expr.t list) list;  (** reversed *)
  mutable counter : int;
  mutable bounds : (Expr.t * Expr.t) Util.SMap.t;
      (** python-for variables -> (lo, hi exclusive), for temp sizing *)
}

let fresh st prefix =
  let k = st.counter in
  st.counter <- k + 1;
  Printf.sprintf "%s%d" prefix k

(* A temp array allocated outside any python-for loop: dimensions that
   reference loop variables are maximized over the loop range (affine dims
   attain their extremum at a corner, so the max of the two corner
   substitutions is exact). *)
let new_temp st (shape : Expr.t list) : string =
  let maximize e =
    Util.SMap.fold
      (fun v (lo, hi) e ->
        let at_lo = Expr.subst1 v lo e in
        let at_hi = Expr.subst1 v (Expr.sub hi Expr.one) e in
        Expr.max_ at_lo at_hi)
      st.bounds e
  in
  let dims = List.map maximize shape in
  let name = fresh st "_tmp" in
  st.temps <- (name, dims) :: st.temps;
  name

let full_env st : env =
  {
    dims_of =
      (fun name ->
        match List.assoc_opt name st.temps with
        | Some dims -> dims
        | None -> st.env.dims_of name);
  }

(* ------------------------------------------------------------------ *)
(* Elementwise compilation                                              *)

(* iters: one symbolic iterator expression per result dimension *)
let view_access st (name : string) (idx : tindex list) (iters : Expr.t list) :
    Ir.access =
  let dims = (full_env st).dims_of name in
  let idx = if idx = [] then List.map (fun _ -> full) dims else idx in
  let rec go idx iters =
    match (idx, iters) with
    | [], _ -> []
    | Ipoint e :: rest, iters -> e :: go rest iters
    | Islice { start; _ } :: rest, it :: iters ->
        Expr.add start it :: go rest iters
    | Islice _ :: _, [] -> shape_error "view rank exceeds loop rank"
  in
  { Ir.array = name; indices = go idx iters }

let rec compile_ew st (e : texpr) (iters : Expr.t list) : Ir.vexpr =
  let env = full_env st in
  let rank0 x = shape env x = [] in
  (* NumPy trailing-dimension broadcasting: a lower-rank operand aligns
     with the last dimensions of the context *)
  let align x =
    let r = List.length (shape env x) in
    Util.drop (List.length iters - r) iters
  in
  match e with
  | Tconst f -> Ir.Vfloat f
  | Tint ie -> Ir.Vint ie
  | Tscalar s -> Ir.Vscalar s
  | Tview (name, idx) ->
      ignore rank0;
      Ir.Vread (view_access st name idx (align e))
  | Ttranspose name -> (
      match align e with
      | [ a; b ] -> Ir.Vread { Ir.array = name; indices = [ b; a ] }
      | _ -> shape_error "transpose outside a 2-D context")
  | Tneg a -> Ir.Vneg (compile_ew st a iters)
  | Tbin (op, a, b) ->
      Ir.Vbin (op, compile_ew st a (align a), compile_ew st b (align b))
  | Tcall (f, args) ->
      Ir.Vcall (f, List.map (fun a -> compile_ew st a (align a)) args)
  | Tdot _ | Touter _ | Treduce _ ->
      shape_error "contraction not materialized before elementwise compilation"

(* ------------------------------------------------------------------ *)
(* Nest builders                                                        *)

(** [nest_over st shape f] — perfect nest over [shape] with body [f iters]. *)
let nest_over st (shape : Expr.t list) (f : Expr.t list -> Ir.node list) :
    Ir.node list =
  let iters = List.map (fun _ -> fresh st "a") shape in
  let body = f (List.map Expr.var iters) in
  List.fold_right2
    (fun it extent inner ->
      [ Ir.Nloop
          (Ir.mk_loop ~iter:it ~lo:Expr.zero ~hi:(Expr.sub extent Expr.one)
             inner) ])
    iters shape body

let zero_init st (name : string) (shape : Expr.t list) : Ir.node list =
  nest_over st shape (fun iters ->
      [ Ir.Ncomp
          (Ir.mk_comp (Ir.Darray { Ir.array = name; indices = iters })
             (Ir.Vfloat 0.0)) ])

(* ------------------------------------------------------------------ *)
(* Contraction materialization                                          *)

(* a "full" operand for BLAS: an unsliced array view or transpose *)
let blas_operand (e : texpr) : (string * bool) option =
  match e with
  | Tview (name, []) -> Some (name, false)
  | Ttranspose name -> Some (name, true)
  | _ -> None

let rec materialize st (e : texpr) : texpr * Ir.node list =
  match e with
  | Tconst _ | Tint _ | Tscalar _ | Tview _ | Ttranspose _ -> (e, [])
  | Tneg a ->
      let a', n = materialize st a in
      maybe_op_temp st (Tneg a') n
  | Tbin (op, a, b) ->
      let a', na = materialize st a in
      let b', nb = materialize st b in
      maybe_op_temp st (Tbin (op, a', b')) (na @ nb)
  | Tcall (f, args) ->
      let args', nests =
        List.fold_left
          (fun (args, nests) a ->
            let a', n = materialize st a in
            (args @ [ a' ], nests @ n))
          ([], []) args
      in
      maybe_op_temp st (Tcall (f, args')) nests
  | Touter (a, b) ->
      let a', na = materialize st a in
      let b', nb = materialize st b in
      let env = full_env st in
      let m = List.hd (shape env a') and n = List.hd (shape env b') in
      let t = new_temp st [ m; n ] in
      let nest =
        nest_over st [ m; n ] (fun iters ->
            match iters with
            | [ i; j ] ->
                [ Ir.Ncomp
                    (Ir.mk_comp
                       (Ir.Darray { Ir.array = t; indices = [ i; j ] })
                       (Ir.Vbin
                          (Ir.Vmul, compile_ew st a' [ i ], compile_ew st b' [ j ]))) ]
            | _ -> assert false)
      in
      (Tview (t, []), na @ nb @ nest)
  | Treduce (`Sum, axis, a) ->
      let a', na = materialize st a in
      let env = full_env st in
      let s = shape env a' in
      let out_shape = List.filteri (fun i _ -> i <> axis) s in
      let t = new_temp st out_shape in
      let init = zero_init st t out_shape in
      let nest =
        nest_over st s (fun iters ->
            let out_iters = List.filteri (fun i _ -> i <> axis) iters in
            let tgt = { Ir.array = t; indices = out_iters } in
            [ Ir.Ncomp
                (Ir.mk_comp (Ir.Darray tgt)
                   (Ir.Vbin (Ir.Vadd, Ir.Vread tgt, compile_ew st a' iters))) ])
      in
      (Tview (t, []), na @ init @ nest)
  | Tdot (a, b) ->
      let a', na = materialize st a in
      let b', nb = materialize st b in
      let env = full_env st in
      let sa = shape env a' and sb = shape env b' in
      let out_shape =
        match (sa, sb) with
        | [ m; _ ], [ _; n ] -> [ m; n ]
        | [ m; _ ], [ _ ] -> [ m ]
        | [ _ ], [ _; n ] -> [ n ]
        | [ _ ], [ _ ] -> []
        | _ -> shape_error "dot ranks"
      in
      let t = new_temp st (if out_shape = [] then [ Expr.one ] else out_shape) in
      let t_view =
        if out_shape = [] then Tview (t, [ pt Expr.zero ]) else Tview (t, [])
      in
      let init = zero_init st t (if out_shape = [] then [ Expr.one ] else out_shape) in
      let blas =
        if not st.policy.blas_dot then None
        else
          match (blas_operand a', blas_operand b', sa, sb) with
          | Some (an, false), Some (bn, false), [ m; k ], [ _; n ] ->
              Some
                (Ir.Ncall
                   {
                     Ir.kid = Ir.fresh_id ();
                     kernel = "gemm";
                     args = [ t; an; bn ];
                     scalar_args = [ Ir.Vfloat 1.0 ];
                     dims = [ m; n; k ];
                     writes_to = [ t ];
                   })
          | Some (an, false), Some (bn, false), [ m; n ], [ _ ] ->
              Some
                (Ir.Ncall
                   {
                     Ir.kid = Ir.fresh_id ();
                     kernel = "gemv";
                     args = [ t; an; bn ];
                     scalar_args = [ Ir.Vfloat 1.0 ];
                     dims = [ m; n ];
                     writes_to = [ t ];
                   })
          | Some (an, false), Some (bn, false), [ m ], [ _; _ ] ->
              (* x @ A: y[j] += A[i][j] * x[i] *)
              let n = List.hd out_shape in
              Some
                (Ir.Ncall
                   {
                     Ir.kid = Ir.fresh_id ();
                     kernel = "gemvt";
                     args = [ t; bn; an ];
                     scalar_args = [ Ir.Vfloat 1.0 ];
                     dims = [ m; n ];
                     writes_to = [ t ];
                   })
          | Some (an, true), Some (bn, false), [ _; _ ], [ m ] ->
              (* dot(A.T, x): y[j] += A[i][j] * x[i] *)
              let n = List.hd out_shape in
              Some
                (Ir.Ncall
                   {
                     Ir.kid = Ir.fresh_id ();
                     kernel = "gemvt";
                     args = [ t; an; bn ];
                     scalar_args = [ Ir.Vfloat 1.0 ];
                     dims = [ m; n ];
                     writes_to = [ t ];
                   })
          | _ -> None
      in
      let work =
        match blas with
        | Some call -> [ call ]
        | None ->
            (* generic contraction loops *)
            let contraction =
              match (sa, sb) with
              | [ m; k ], [ _; n ] ->
                  nest_over st [ m; k; n ] (fun iters ->
                      match iters with
                      | [ i; kk; j ] ->
                          let tgt = { Ir.array = t; indices = [ i; j ] } in
                          [ Ir.Ncomp
                              (Ir.mk_comp (Ir.Darray tgt)
                                 (Ir.Vbin
                                    ( Ir.Vadd,
                                      Ir.Vread tgt,
                                      Ir.Vbin
                                        ( Ir.Vmul,
                                          compile_ew st a' [ i; kk ],
                                          compile_ew st b' [ kk; j ] ) ))) ]
                      | _ -> assert false)
              | [ m; k ], [ _ ] ->
                  nest_over st [ m; k ] (fun iters ->
                      match iters with
                      | [ i; kk ] ->
                          let tgt = { Ir.array = t; indices = [ i ] } in
                          [ Ir.Ncomp
                              (Ir.mk_comp (Ir.Darray tgt)
                                 (Ir.Vbin
                                    ( Ir.Vadd,
                                      Ir.Vread tgt,
                                      Ir.Vbin
                                        ( Ir.Vmul,
                                          compile_ew st a' [ i; kk ],
                                          compile_ew st b' [ kk ] ) ))) ]
                      | _ -> assert false)
              | [ k ], [ _; n ] ->
                  nest_over st [ k; n ] (fun iters ->
                      match iters with
                      | [ kk; j ] ->
                          let tgt = { Ir.array = t; indices = [ j ] } in
                          [ Ir.Ncomp
                              (Ir.mk_comp (Ir.Darray tgt)
                                 (Ir.Vbin
                                    ( Ir.Vadd,
                                      Ir.Vread tgt,
                                      Ir.Vbin
                                        ( Ir.Vmul,
                                          compile_ew st a' [ kk ],
                                          compile_ew st b' [ kk; j ] ) ))) ]
                      | _ -> assert false)
              | [ k ], [ _ ] ->
                  nest_over st [ k ] (fun iters ->
                      let tgt = { Ir.array = t; indices = [ Expr.zero ] } in
                      [ Ir.Ncomp
                          (Ir.mk_comp (Ir.Darray tgt)
                             (Ir.Vbin
                                ( Ir.Vadd,
                                  Ir.Vread tgt,
                                  Ir.Vbin
                                    ( Ir.Vmul,
                                      compile_ew st a' iters,
                                      compile_ew st b' iters ) ))) ])
              | _ -> shape_error "dot ranks"
            in
            contraction
      in
      (t_view, na @ nb @ init @ work)

(* NumPy policy: each elementwise operator materializes a temp. *)
and maybe_op_temp st (e : texpr) (prelude : Ir.node list) :
    texpr * Ir.node list =
  if not st.policy.per_op_temps then (e, prelude)
  else
    let env = full_env st in
    let s = shape env e in
    if s = [] then (e, prelude) (* scalar expressions stay in registers *)
    else begin
      let t = new_temp st s in
      let nest =
        nest_over st s (fun iters ->
            [ Ir.Ncomp
                (Ir.mk_comp (Ir.Darray { Ir.array = t; indices = iters })
                   (compile_ew st e iters)) ])
      in
      (Tview (t, []), prelude @ nest)
    end

(* ------------------------------------------------------------------ *)
(* Statements                                                           *)

let rec lower_stmt st (s : stmt) : Ir.node list =
  match s with
  | Assign ((name, idx), e) | Aug (_, (name, idx), e) -> (
      let e', prelude = materialize st e in
      let tgt_shape = view_access_shape st name idx in
      let combine tgt rhs =
        match s with
        | Assign _ -> rhs
        | Aug (op, _, _) -> Ir.Vbin (op, Ir.Vread tgt, rhs)
        | For _ -> assert false
      in
      match tgt_shape with
      | [] ->
          let tgt = view_access st name idx [] in
          prelude
          @ [ Ir.Ncomp
                (Ir.mk_comp (Ir.Darray tgt) (combine tgt (compile_ew st e' []))) ]
      | shape ->
          prelude
          @ nest_over st shape (fun iters ->
                let tgt = view_access st name idx iters in
                let env = full_env st in
                let rhs_iters = if Alang.shape env e' = [] then [] else iters in
                [ Ir.Ncomp
                    (Ir.mk_comp (Ir.Darray tgt)
                       (combine tgt (compile_ew st e' rhs_iters))) ]))
  | For (var, lo, hi, body) ->
      let saved = st.bounds in
      st.bounds <- Util.SMap.add var (lo, hi) st.bounds;
      let nodes = List.concat_map (lower_stmt st) body in
      st.bounds <- saved;
      [ Ir.Nloop
          (Ir.mk_loop ~iter:var ~lo ~hi:(Expr.sub hi Expr.one) nodes) ]

and view_access_shape st name idx =
  view_shape (full_env st) name idx

(** [lower policy p] — lower an arraylang program to loopir. *)
let lower (policy : policy) (p : program) : Ir.program =
  let env = { dims_of = (fun name ->
      match List.assoc_opt name p.arrays with
      | Some dims -> dims
      | None -> shape_error "unknown array %s" name) }
  in
  let st = { policy; env; temps = []; counter = 0; bounds = Util.SMap.empty } in
  let body = List.concat_map (lower_stmt st) p.body in
  let arrays =
    List.map
      (fun (name, dims) ->
        { Ir.name; elem = Ir.Fdouble; dims; storage = Ir.Sparam })
      p.arrays
    @ List.rev_map
        (fun (name, dims) ->
          { Ir.name; elem = Ir.Fdouble; dims; storage = Ir.Slocal })
        st.temps
  in
  {
    Ir.pname = p.name;
    size_params = p.size_params;
    scalar_params = p.scalar_params;
    arrays;
    local_scalars = [];
    body;
  }
