(** A NumPy-style tensor-statement language ("arraylang").

    This is the substrate for the paper's §4.3 cross-language experiment:
    the NPBench implementations use array slices, [np.dot], transposes and
    whole-array arithmetic instead of explicit loops. Different frameworks
    lower the same statements differently ({!Lower.policy}), which is
    exactly what distinguishes NumPy, Numba and DaCe in Figure 9.

    Shapes are symbolic ({!Daisy_poly.Expr}); slicing is half-open
    [[start, stop)]. Broadcasting is limited to scalars (rank 0) against
    anything — all the benchmarks need. *)

module Expr = Daisy_poly.Expr

type slice = { start : Expr.t; stop : Expr.t }

type tindex =
  | Ipoint of Expr.t  (** [a[i]] — drops the dimension *)
  | Islice of slice  (** [a[lo:hi]] *)

type texpr =
  | Tview of string * tindex list  (** array view *)
  | Ttranspose of string  (** 2-D transposed view, [A.T] *)
  | Tconst of float
  | Tint of Expr.t  (** integer expression used as a value (e.g. [/ n]) *)
  | Tscalar of string  (** scalar parameter *)
  | Tbin of Daisy_loopir.Ir.vbinop * texpr * texpr  (** elementwise *)
  | Tneg of texpr
  | Tcall of string * texpr list  (** elementwise intrinsic *)
  | Tdot of texpr * texpr  (** matrix/vector product *)
  | Touter of texpr * texpr  (** outer product of two vectors *)
  | Treduce of [ `Sum ] * int * texpr  (** reduction along one axis *)

type stmt =
  | Assign of (string * tindex list) * texpr
  | Aug of Daisy_loopir.Ir.vbinop * (string * tindex list) * texpr
  | For of string * Expr.t * Expr.t * stmt list
      (** [for v in range(lo, hi)] (hi exclusive) *)

type program = {
  name : string;
  size_params : string list;
  scalar_params : string list;
  arrays : (string * Expr.t list) list;  (** parameter arrays *)
  body : stmt list;
}

(* Convenience constructors *)
let full = Islice { start = Expr.zero; stop = Expr.zero }
(* [full] is resolved against the array's declared dimension at lowering:
   stop = 0 is the marker for "whole dimension". *)

let sl ?(start = Expr.zero) stop = Islice { start; stop }
let pt e = Ipoint e
let v ?(idx = []) name = Tview (name, idx)
let ( *: ) a b = Tbin (Daisy_loopir.Ir.Vmul, a, b)
let ( +: ) a b = Tbin (Daisy_loopir.Ir.Vadd, a, b)
let ( -: ) a b = Tbin (Daisy_loopir.Ir.Vsub, a, b)
let ( /: ) a b = Tbin (Daisy_loopir.Ir.Vdiv, a, b)
let c f = Tconst f
let sc s = Tscalar s

(* ------------------------------------------------------------------ *)
(* Shape inference                                                      *)

exception Shape_error of string

let shape_error fmt = Fmt.kstr (fun m -> raise (Shape_error m)) fmt

type env = { dims_of : string -> Expr.t list }

let view_shape (env : env) (name : string) (idx : tindex list) : Expr.t list =
  let dims = env.dims_of name in
  let idx =
    if idx = [] then List.map (fun _ -> full) dims (* bare name = whole array *)
    else idx
  in
  if List.length idx <> List.length dims then
    shape_error "view of %s has %d indices for rank %d" name (List.length idx)
      (List.length dims);
  List.concat
    (List.map2
       (fun i d ->
         match i with
         | Ipoint _ -> []
         | Islice { start; stop } ->
             let stop = if Expr.equal stop Expr.zero then d else stop in
             [ Expr.sub stop start ])
       idx dims)

let rec shape (env : env) (e : texpr) : Expr.t list =
  match e with
  | Tview (name, idx) -> view_shape env name idx
  | Ttranspose name -> (
      match env.dims_of name with
      | [ a; b ] -> [ b; a ]
      | _ -> shape_error "transpose of non-matrix %s" name)
  | Tconst _ | Tint _ | Tscalar _ -> []
  | Tneg a -> shape env a
  | Tcall (_, args) -> (
      let shapes = List.map (shape env) args in
      match List.find_opt (fun s -> s <> []) shapes with
      | Some s -> s
      | None -> [])
  | Tbin (_, a, b) -> (
      (* trailing-dimension broadcasting, NumPy style *)
      match (shape env a, shape env b) with
      | [], s | s, [] -> s
      | sa, sb -> if List.length sa >= List.length sb then sa else sb)
  | Tdot (a, b) -> (
      match (shape env a, shape env b) with
      | [ m; _k ], [ _k'; n ] -> [ m; n ]
      | [ m; _k ], [ _k' ] -> [ m ]
      | [ _k ], [ _k'; n ] -> [ n ]
      | [ _k ], [ _k' ] -> []
      | _ -> shape_error "dot of tensors with unsupported ranks")
  | Touter (a, b) -> (
      match (shape env a, shape env b) with
      | [ m ], [ n ] -> [ m; n ]
      | _ -> shape_error "outer of non-vectors")
  | Treduce (_, axis, a) ->
      let s = shape env a in
      if axis < 0 || axis >= List.length s then shape_error "bad reduce axis";
      List.filteri (fun i _ -> i <> axis) s

(* statements that the program writes to (for documentation/testing) *)
let rec written_arrays (stmts : stmt list) : string list =
  List.concat_map
    (function
      | Assign ((a, _), _) | Aug (_, (a, _), _) -> [ a ]
      | For (_, _, _, body) -> written_arrays body)
    stmts
  |> Daisy_support.Util.dedup ~eq:String.equal

(* ------------------------------------------------------------------ *)
(* Pretty-printing (NumPy-like surface syntax)                          *)

let pp_index env name ppf (idx : tindex list) =
  if idx = [] then ()
  else begin
    let dims = try env.dims_of name with _ -> List.map (fun _ -> Expr.zero) idx in
    Fmt.pf ppf "[%a]"
      (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (i, d) ->
           match i with
           | Ipoint e -> Expr.pp ppf e
           | Islice { start; stop } ->
               let stop = if Expr.equal stop Expr.zero then d else stop in
               if Expr.equal start Expr.zero && Expr.equal stop d then
                 Fmt.string ppf ":"
               else if Expr.equal stop d then Fmt.pf ppf "%a:" Expr.pp start
               else if Expr.equal start Expr.zero then
                 Fmt.pf ppf ":%a" Expr.pp stop
               else Fmt.pf ppf "%a:%a" Expr.pp start Expr.pp stop))
      (List.combine idx dims)
  end

let rec pp_texpr env ppf (e : texpr) =
  match e with
  | Tview (name, idx) -> Fmt.pf ppf "%s%a" name (pp_index env name) idx
  | Ttranspose name -> Fmt.pf ppf "%s.T" name
  | Tconst f ->
      if Float.is_integer f && Float.abs f < 1e15 then Fmt.pf ppf "%.1f" f
      else Fmt.pf ppf "%.17g" f
  | Tint ie -> Expr.pp ppf ie
  | Tscalar s -> Fmt.string ppf s
  | Tbin (op, a, b) ->
      let s =
        match op with
        | Daisy_loopir.Ir.Vadd -> "+"
        | Daisy_loopir.Ir.Vsub -> "-"
        | Daisy_loopir.Ir.Vmul -> "*"
        | Daisy_loopir.Ir.Vdiv -> "/"
      in
      Fmt.pf ppf "(%a %s %a)" (pp_texpr env) a s (pp_texpr env) b
  | Tneg a -> Fmt.pf ppf "(-%a)" (pp_texpr env) a
  | Tcall (f, args) ->
      Fmt.pf ppf "np.%s(%a)" f (Fmt.list ~sep:(Fmt.any ", ") (pp_texpr env)) args
  | Tdot (a, b) -> Fmt.pf ppf "(%a @@ %a)" (pp_texpr env) a (pp_texpr env) b
  | Touter (a, b) ->
      Fmt.pf ppf "np.outer(%a, %a)" (pp_texpr env) a (pp_texpr env) b
  | Treduce (`Sum, axis, a) ->
      Fmt.pf ppf "np.sum(%a, axis=%d)" (pp_texpr env) a axis

let rec pp_stmt env ind ppf (s : stmt) =
  let pad = String.make (4 * ind) ' ' in
  match s with
  | Assign ((name, idx), e) ->
      Fmt.pf ppf "%s%s%a = %a" pad name (pp_index env name) idx (pp_texpr env) e
  | Aug (op, (name, idx), e) ->
      let so =
        match op with
        | Daisy_loopir.Ir.Vadd -> "+="
        | Daisy_loopir.Ir.Vsub -> "-="
        | Daisy_loopir.Ir.Vmul -> "*="
        | Daisy_loopir.Ir.Vdiv -> "/="
      in
      Fmt.pf ppf "%s%s%a %s %a" pad name (pp_index env name) idx so
        (pp_texpr env) e
  | For (v, lo, hi, body) ->
      if Expr.equal lo Expr.zero then
        Fmt.pf ppf "%sfor %s in range(%a):@,%a" pad v Expr.pp hi
          (Fmt.list ~sep:Fmt.cut (pp_stmt env (ind + 1)))
          body
      else
        Fmt.pf ppf "%sfor %s in range(%a, %a):@,%a" pad v Expr.pp lo Expr.pp hi
          (Fmt.list ~sep:Fmt.cut (pp_stmt env (ind + 1)))
          body

let pp_program ppf (p : program) =
  let env = { dims_of = (fun name -> List.assoc name p.arrays) } in
  Fmt.pf ppf "@[<v>def %s(%a):@,%a@]" p.name
    (Fmt.list ~sep:(Fmt.any ", ") Fmt.string)
    (p.size_params @ p.scalar_params
    @ List.map fst p.arrays)
    (Fmt.list ~sep:Fmt.cut (pp_stmt env 1))
    p.body

let program_to_string p = Fmt.str "%a" pp_program p
