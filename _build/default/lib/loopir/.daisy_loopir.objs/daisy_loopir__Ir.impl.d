lib/loopir/ir.ml: Daisy_poly Daisy_support Float Fmt Hashtbl List Option Printf String Util
