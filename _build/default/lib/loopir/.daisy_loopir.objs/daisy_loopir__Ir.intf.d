lib/loopir/ir.mli: Daisy_poly Daisy_support Fmt
