(** Textual parser for lir — the inverse of {!Ir.pp_func}.

    Lets low-level IR be written or stored directly (like .ll files) and
    gives the test suite printer/parser roundtrips. The syntax is exactly
    what the printer emits:

    {v
    define f(n, m | alpha) {
    entry:
      %r0 = mov 0
      br %header0
    header0:
      %r1 = icmp slt %r0, @n
      br %r1, %body0, %exit0
    ...
    }
    v}

    Array declarations are passed separately ([~arrays]) since the printed
    form does not include shapes. *)

exception Parse_error of string

let fail fmt = Fmt.kstr (fun m -> raise (Parse_error m)) fmt

type tok =
  | Tword of string  (** bare identifier or keyword *)
  | Treg of int
  | Tsym of string  (** [@name] *)
  | Tscalar of string  (** [$name] *)
  | Tlabel_ref of string  (** [%name] that is not a register *)
  | Tint of int
  | Tfloat of float
  | Tcomma | Teq | Tlparen | Trparen | Tlbrace | Trbrace | Tbar | Tcolon

let tokenize_line (line : string) : tok list =
  let n = String.length line in
  let toks = ref [] in
  let i = ref 0 in
  let is_ident c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_' || c = '.'
  in
  let read_while p =
    let start = !i in
    while !i < n && p line.[!i] do incr i done;
    String.sub line start (!i - start)
  in
  while !i < n do
    match line.[!i] with
    | ' ' | '\t' -> incr i
    | ',' -> incr i; toks := Tcomma :: !toks
    | '=' -> incr i; toks := Teq :: !toks
    | '(' -> incr i; toks := Tlparen :: !toks
    | ')' -> incr i; toks := Trparen :: !toks
    | '{' -> incr i; toks := Tlbrace :: !toks
    | '}' -> incr i; toks := Trbrace :: !toks
    | '|' -> incr i; toks := Tbar :: !toks
    | ':' -> incr i; toks := Tcolon :: !toks
    | '%' ->
        incr i;
        let w = read_while is_ident in
        if String.length w > 1 && w.[0] = 'r'
           && String.for_all (fun c -> c >= '0' && c <= '9')
                (String.sub w 1 (String.length w - 1))
        then toks := Treg (int_of_string (String.sub w 1 (String.length w - 1))) :: !toks
        else toks := Tlabel_ref w :: !toks
    | '@' ->
        incr i;
        toks := Tsym (read_while is_ident) :: !toks
    | '$' ->
        incr i;
        toks := Tscalar (read_while is_ident) :: !toks
    | c when (c >= '0' && c <= '9') || c = '-' ->
        let w =
          read_while (fun c ->
              (c >= '0' && c <= '9') || c = '-' || c = '.' || c = 'e' || c = '+')
        in
        if String.contains w '.' || String.contains w 'e' then
          toks := Tfloat (float_of_string w) :: !toks
        else toks := Tint (int_of_string w) :: !toks
    | c when is_ident c ->
        toks := Tword (read_while is_ident) :: !toks
    | c -> fail "unexpected character %C in %S" c line
  done;
  List.rev !toks

let operand_of = function
  | Treg r -> Ir.Oreg r
  | Tint n -> Ir.Oint n
  | Tfloat f -> Ir.Ofloat f
  | Tsym s -> Ir.Osym s
  | Tscalar s -> Ir.Oscalar s
  | _ -> fail "expected an operand"

let rec operands_of = function
  | [] -> []
  | [ x ] -> [ operand_of x ]
  | x :: Tcomma :: rest -> operand_of x :: operands_of rest
  | _ -> fail "malformed operand list"

let ibinop_of = function
  | "add" -> Ir.Iadd | "sub" -> Ir.Isub | "mul" -> Ir.Imul
  | "sdiv" -> Ir.Idiv | "srem" -> Ir.Irem
  | w -> fail "unknown integer op %s" w

let fbinop_of = function
  | "fadd" -> Ir.Fadd | "fsub" -> Ir.Fsub | "fmul" -> Ir.Fmul
  | "fdiv" -> Ir.Fdiv
  | w -> fail "unknown float op %s" w

let icmp_of = function
  | "slt" -> Ir.Slt | "sle" -> Ir.Sle | "sgt" -> Ir.Sgt | "sge" -> Ir.Sge
  | "eq" -> Ir.Ieq | "ne" -> Ir.Ine
  | w -> fail "unknown icmp predicate %s" w

let fcmp_of = function
  | "olt" -> Ir.Folt | "ole" -> Ir.Fole | "ogt" -> Ir.Fogt | "oge" -> Ir.Foge
  | "oeq" -> Ir.Foeq | "one" -> Ir.Fone
  | w -> fail "unknown fcmp predicate %s" w

(* parse the right-hand side of "%rN = ..." *)
let inst_of_def (r : int) (toks : tok list) : Ir.inst =
  match toks with
  | Tword "mov" :: rest -> Ir.Mov (r, operand_of (List.hd rest))
  | Tword "fneg" :: rest -> Ir.Fneg (r, operand_of (List.hd rest))
  | Tword "sitofp" :: rest -> Ir.Sitofp (r, operand_of (List.hd rest))
  | Tword "load" :: rest -> Ir.Load (r, operand_of (List.hd rest))
  | Tword (("add" | "sub" | "mul" | "sdiv" | "srem") as op) :: rest -> (
      match operands_of rest with
      | [ a; b ] -> Ir.Bin (r, ibinop_of op, a, b)
      | _ -> fail "binary op arity")
  | Tword (("fadd" | "fsub" | "fmul" | "fdiv") as op) :: rest -> (
      match operands_of rest with
      | [ a; b ] -> Ir.Fbin (r, fbinop_of op, a, b)
      | _ -> fail "float op arity")
  | Tword "icmp" :: Tword pred :: rest -> (
      match operands_of rest with
      | [ a; b ] -> Ir.Icmp (r, icmp_of pred, a, b)
      | _ -> fail "icmp arity")
  | Tword "fcmp" :: Tword pred :: rest -> (
      match operands_of rest with
      | [ a; b ] -> Ir.Fcmp (r, fcmp_of pred, a, b)
      | _ -> fail "fcmp arity")
  | Tword "select" :: rest -> (
      match operands_of rest with
      | [ c; a; b ] -> Ir.Select (r, c, a, b)
      | _ -> fail "select arity")
  | Tword "getelementptr" :: Tsym base :: Tcomma :: rest ->
      Ir.Gep (r, base, operands_of rest)
  | Tword "call" :: Tsym f :: Tlparen :: rest -> (
      match List.rev rest with
      | Trparen :: rev_args ->
          Ir.Call (r, f, operands_of (List.rev rev_args))
      | _ -> fail "call syntax")
  | Tword "and" :: rest -> Ir.BoolOp (r, `And, operands_of rest)
  | Tword "or" :: rest -> Ir.BoolOp (r, `Or, operands_of rest)
  | Tword "not" :: rest -> Ir.BoolOp (r, `Not, operands_of rest)
  | _ -> fail "unrecognized instruction"

type pline =
  | Plabel of string
  | Pinst of Ir.inst
  | Pterm of Ir.terminator
  | Pheader of string * string list * string list  (** name, sizes, scalars *)
  | Pclose

let parse_line (line : string) : pline option =
  let toks = tokenize_line line in
  match toks with
  | [] -> None
  | [ Trbrace ] -> Some Pclose
  | Tword "define" :: Tword name :: Tlparen :: rest ->
      let rec split_params acc_sizes acc_scalars in_scalars = function
        | Trparen :: _ -> (List.rev acc_sizes, List.rev acc_scalars)
        | Tbar :: rest -> split_params acc_sizes acc_scalars true rest
        | Tword w :: rest ->
            if in_scalars then split_params acc_sizes (w :: acc_scalars) true rest
            else split_params (w :: acc_sizes) acc_scalars false rest
        | Tcomma :: rest -> split_params acc_sizes acc_scalars in_scalars rest
        | _ -> fail "malformed parameter list"
      in
      let sizes, scalars = split_params [] [] false rest in
      Some (Pheader (name, sizes, scalars))
  | [ Tword l; Tcolon ] -> Some (Plabel l)
  | Treg r :: Teq :: rest -> Some (Pinst (inst_of_def r rest))
  | Tword "store" :: rest -> (
      match operands_of rest with
      | [ v; a ] -> Some (Pinst (Ir.Store (a, v)))
      | _ -> fail "store arity")
  | [ Tword "ret" ] -> Some (Pterm Ir.Ret)
  | [ Tword "br"; Tlabel_ref l ] -> Some (Pterm (Ir.Br l))
  | [ Tword "br"; c; Tcomma; Tlabel_ref t; Tcomma; Tlabel_ref f ] ->
      Some (Pterm (Ir.CondBr (operand_of c, t, f)))
  | _ -> fail "cannot parse line %S" line

(** [parse ~arrays ?local_arrays text] — parse a printed lir function.
    Shapes of parameter (and local) arrays must be supplied, since the
    textual form omits them. *)
let parse ~(arrays : (string * Daisy_poly.Expr.t list) list)
    ?(local_arrays : (string * Daisy_poly.Expr.t list) list = [])
    (text : string) : Ir.func =
  let lines = String.split_on_char '\n' text in
  let header = ref None in
  let blocks = ref [] in
  let cur_label = ref None in
  let cur_insts = ref [] in
  let finish term =
    match !cur_label with
    | None -> fail "terminator outside a block"
    | Some label ->
        blocks := { Ir.label; insts = List.rev !cur_insts; term } :: !blocks;
        cur_label := None;
        cur_insts := []
  in
  List.iter
    (fun line ->
      match parse_line line with
      | None -> ()
      | Some (Pheader (name, sizes, scalars)) ->
          header := Some (name, sizes, scalars)
      | Some (Plabel l) ->
          if !cur_label <> None then fail "label inside an open block";
          cur_label := Some l
      | Some (Pinst i) -> cur_insts := i :: !cur_insts
      | Some (Pterm t) -> finish t
      | Some Pclose -> ())
    lines;
  match !header with
  | None -> fail "missing function header"
  | Some (name, sizes, scalars) ->
      {
        Ir.fname = name;
        size_params = sizes;
        scalar_params = scalars;
        arrays;
        local_arrays;
        blocks = List.rev !blocks;
      }

(** Roundtrip helper: [reparse f] prints and re-parses [f]. *)
let reparse (f : Ir.func) : Ir.func =
  parse ~arrays:f.Ir.arrays ~local_arrays:f.Ir.local_arrays
    (Ir.func_to_string f)
