(** Textual parser for lir — the inverse of {!Ir.pp_func}, enabling
    [.ll]-style files and printer/parser roundtrips. Array shapes must be
    supplied since the textual form omits them. *)

exception Parse_error of string

val parse :
  arrays:(string * Daisy_poly.Expr.t list) list ->
  ?local_arrays:(string * Daisy_poly.Expr.t list) list ->
  string ->
  Ir.func

val reparse : Ir.func -> Ir.func
(** Print and re-parse (roundtrip helper). *)
