(** Control-flow analyses over lir functions: CFG, dominators
    (Cooper–Harvey–Kennedy), natural-loop detection and SESE-region
    checking — the static analyses the lifting pass builds on (paper §3.1;
    Polly's SCoPs are maximal SESE regions). *)

open Daisy_support

type t = {
  func : Ir.func;
  labels : string array;  (** reverse postorder *)
  index : (string, int) Hashtbl.t;
  succs : int list array;
  preds : int list array;
  idom : int array;  (** immediate dominator; entry maps to itself *)
}

let build (f : Ir.func) : t =
  let n_blocks = List.length f.Ir.blocks in
  let tbl = Hashtbl.create n_blocks in
  List.iter (fun (b : Ir.block) -> Hashtbl.replace tbl b.Ir.label b) f.Ir.blocks;
  (* reverse postorder via DFS *)
  let visited = Hashtbl.create n_blocks in
  let order = ref [] in
  let rec dfs l =
    if not (Hashtbl.mem visited l) then begin
      Hashtbl.replace visited l ();
      let b = Hashtbl.find tbl l in
      List.iter dfs (Ir.successors b);
      order := l :: !order
    end
  in
  dfs (Ir.entry_label f);
  let labels = Array.of_list !order in
  let n = Array.length labels in
  let index = Hashtbl.create n in
  Array.iteri (fun i l -> Hashtbl.replace index l i) labels;
  let succs = Array.make n [] in
  let preds = Array.make n [] in
  Array.iteri
    (fun i l ->
      let b = Hashtbl.find tbl l in
      let ss =
        List.filter_map (fun s -> Hashtbl.find_opt index s) (Ir.successors b)
      in
      succs.(i) <- ss;
      List.iter (fun s -> preds.(s) <- i :: preds.(s)) ss)
    labels;
  (* Cooper-Harvey-Kennedy iterative dominators; blocks are in RPO *)
  let idom = Array.make n (-1) in
  idom.(0) <- 0;
  let rec intersect a b =
    if a = b then a
    else if a > b then intersect idom.(a) b
    else intersect a idom.(b)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 1 to n - 1 do
      let processed = List.filter (fun p -> idom.(p) >= 0) preds.(i) in
      match processed with
      | [] -> ()
      | first :: rest ->
          let new_idom = List.fold_left intersect first rest in
          if idom.(i) <> new_idom then begin
            idom.(i) <- new_idom;
            changed := true
          end
    done
  done;
  { func = f; labels; index; succs; preds; idom }

let n_blocks (cfg : t) = Array.length cfg.labels

let block_at (cfg : t) i = Ir.block cfg.func cfg.labels.(i)

let index_of (cfg : t) l =
  match Hashtbl.find_opt cfg.index l with
  | Some i -> i
  | None -> invalid_arg ("unreachable or unknown block " ^ l)

(** [dominates cfg a b] — does block [a] dominate block [b]? *)
let dominates (cfg : t) a b =
  let rec up x = if x = a then true else if x = 0 then a = 0 else up cfg.idom.(x) in
  up b

type natural_loop = {
  header : int;
  latch : int;
  body : Util.ISet.t;  (** block indices, including header and latch *)
}

(** Natural loops from back edges ([latch -> header] with header dominating
    latch). *)
let natural_loops (cfg : t) : natural_loop list =
  let loops = ref [] in
  Array.iteri
    (fun src ss ->
      List.iter
        (fun dst ->
          if dominates cfg dst src then begin
            (* collect body: reverse reachability from latch, stopping at
               the header *)
            let body = ref (Util.ISet.of_list [ dst; src ]) in
            let rec grow x =
              List.iter
                (fun p ->
                  if not (Util.ISet.mem p !body) then begin
                    body := Util.ISet.add p !body;
                    grow p
                  end)
                cfg.preds.(x)
            in
            if src <> dst then grow src;
            loops := { header = dst; latch = src; body = !body } :: !loops
          end)
        ss)
    cfg.succs;
  (* order outermost first: by body size descending *)
  List.sort
    (fun a b -> compare (Util.ISet.cardinal b.body) (Util.ISet.cardinal a.body))
    !loops

(** A loop region is SESE when the header has exactly one entry edge from
    outside (the preheader) and exactly one edge leaves the loop body. *)
let loop_is_sese (cfg : t) (l : natural_loop) : bool =
  let outside_preds =
    List.filter (fun p -> not (Util.ISet.mem p l.body)) cfg.preds.(l.header)
  in
  let exits =
    Util.ISet.fold
      (fun b acc ->
        List.fold_left
          (fun acc s -> if Util.ISet.mem s l.body then acc else (b, s) :: acc)
          acc cfg.succs.(b))
      l.body []
  in
  List.length outside_preds = 1 && List.length (Util.dedup ~eq:( = ) exits) = 1
