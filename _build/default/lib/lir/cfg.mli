(** Control-flow analyses over lir functions: CFG, dominators
    (Cooper–Harvey–Kennedy), natural loops, SESE checks — the analyses the
    lifting pass builds on (paper §3.1). *)

type t = {
  func : Ir.func;
  labels : string array;  (** blocks in reverse postorder *)
  index : (string, int) Hashtbl.t;
  succs : int list array;
  preds : int list array;
  idom : int array;  (** immediate dominators; entry maps to itself *)
}

val build : Ir.func -> t
val n_blocks : t -> int
val block_at : t -> int -> Ir.block
val index_of : t -> string -> int
val dominates : t -> int -> int -> bool

type natural_loop = {
  header : int;
  latch : int;
  body : Daisy_support.Util.ISet.t;
}

val natural_loops : t -> natural_loop list
(** From back edges, outermost (largest body) first. *)

val loop_is_sese : t -> natural_loop -> bool
(** One entry edge into the header and one edge leaving the body. *)
