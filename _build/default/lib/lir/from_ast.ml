(** Lowering the checked DSL AST to lir — the "clang" of this reproduction.

    Loops become branch-connected basic blocks (preheader / header / body /
    latch / exit), conditionals become diamonds, array accesses become
    GEP + load/store chains, and local scalars become mutable registers.
    The lifting pass ({!Daisy_lift.Lift}) must recover the loop tree from
    exactly this low-level soup. *)

open Daisy_support
open Daisy_lang
module A = Ast

type builder = {
  mutable done_blocks : Ir.block list;  (** reversed *)
  mutable cur_label : Ir.label;
  mutable cur_insts : Ir.inst list;  (** reversed *)
  mutable next_reg : int;
  mutable next_label : int;
  mutable vars : Ir.operand Util.SMap.t;
      (** loop indices and local scalars -> registers *)
  env : Sema.env;
}

let fresh_reg b =
  let r = b.next_reg in
  b.next_reg <- r + 1;
  r

let fresh_label b prefix =
  let n = b.next_label in
  b.next_label <- n + 1;
  Printf.sprintf "%s%d" prefix n

let emit b i = b.cur_insts <- i :: b.cur_insts

(** Close the current block with [term] and start a new one at [label]. *)
let seal b term ~next =
  b.done_blocks <-
    { Ir.label = b.cur_label; insts = List.rev b.cur_insts; term }
    :: b.done_blocks;
  b.cur_label <- next;
  b.cur_insts <- []

let is_int_name b v =
  match Util.SMap.find_opt v b.vars with
  | Some _ -> (
      (* a register: int iff it is a loop index *)
      match Util.SMap.find_opt v b.env.Sema.bindings with
      | Some Sema.Bloop_index -> true
      | Some Sema.Bparam_int -> true
      | _ -> false)
  | None -> (
      match Util.SMap.find_opt v b.env.Sema.bindings with
      | Some Sema.Bparam_int -> true
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Expressions                                                          *)

let rec lower_int b (e : A.expr) : Ir.operand =
  match e.A.desc with
  | A.Eint n -> Ir.Oint n
  | A.Evar v -> (
      match Util.SMap.find_opt v b.vars with
      | Some op -> op
      | None -> Ir.Osym v)
  | A.Eunop (A.Uneg, a) ->
      let x = lower_int b a in
      let r = fresh_reg b in
      emit b (Ir.Bin (r, Ir.Isub, Ir.Oint 0, x));
      Ir.Oreg r
  | A.Ebinop (op, x, y) ->
      let xo = lower_int b x and yo = lower_int b y in
      let iop =
        match op with
        | A.Badd -> Ir.Iadd
        | A.Bsub -> Ir.Isub
        | A.Bmul -> Ir.Imul
        | A.Bdiv -> Ir.Idiv
        | A.Bmod -> Ir.Irem
        | _ -> Diag.errorf ~loc:e.A.eloc "unsupported integer operator"
      in
      let r = fresh_reg b in
      emit b (Ir.Bin (r, iop, xo, yo));
      Ir.Oreg r
  | A.Ecall (("min" | "max"), [ _; _ ]) ->
      (* integer min/max via select would complicate lifting; the DSL only
         uses them in float contexts and tiling-produced bounds, which do
         not pass through lir *)
      Diag.errorf ~loc:e.A.eloc "integer min/max not supported in lir lowering"
  | _ -> Diag.errorf ~loc:e.A.eloc "expression is not an integer expression"

let rec lower_float b (e : A.expr) : Ir.operand =
  match e.A.desc with
  | A.Eint n -> Ir.Ofloat (float_of_int n)
  | A.Efloat f -> Ir.Ofloat f
  | A.Evar v ->
      if is_int_name b v then begin
        let x = lower_int b e in
        let r = fresh_reg b in
        emit b (Ir.Sitofp (r, x));
        Ir.Oreg r
      end
      else (
        match Util.SMap.find_opt v b.vars with
        | Some op -> op (* local scalar register *)
        | None -> Ir.Oscalar v (* scalar parameter *))
  | A.Eindex (arr, idx) ->
      let idx_ops = List.map (lower_int b) idx in
      let addr = fresh_reg b in
      emit b (Ir.Gep (addr, arr, idx_ops));
      let r = fresh_reg b in
      emit b (Ir.Load (r, Ir.Oreg addr));
      Ir.Oreg r
  | A.Eunop (A.Uneg, a) ->
      let x = lower_float b a in
      let r = fresh_reg b in
      emit b (Ir.Fneg (r, x));
      Ir.Oreg r
  | A.Eunop (A.Unot, _) ->
      Diag.errorf ~loc:e.A.eloc "logical negation in value position"
  | A.Ebinop ((A.Badd | A.Bsub | A.Bmul | A.Bdiv) as op, x, y) ->
      (* integer-typed arithmetic used as a value: compute in int *)
      let is_int =
        try Sema.infer_expr (all_scope b) e = A.Tint with _ -> false
      in
      if is_int then begin
        let v = lower_int b e in
        let r = fresh_reg b in
        emit b (Ir.Sitofp (r, v));
        Ir.Oreg r
      end
      else begin
        let xo = lower_float b x and yo = lower_float b y in
        let fop =
          match op with
          | A.Badd -> Ir.Fadd
          | A.Bsub -> Ir.Fsub
          | A.Bmul -> Ir.Fmul
          | _ -> Ir.Fdiv
        in
        let r = fresh_reg b in
        emit b (Ir.Fbin (r, fop, xo, yo));
        Ir.Oreg r
      end
  | A.Ebinop (A.Bmod, _, _) ->
      let v = lower_int b e in
      let r = fresh_reg b in
      emit b (Ir.Sitofp (r, v));
      Ir.Oreg r
  | A.Ebinop (_, _, _) ->
      Diag.errorf ~loc:e.A.eloc "comparison in value position; use a ternary"
  | A.Ecall (f, args) ->
      let f = match f with "fmin" -> "min" | "fmax" -> "max" | f -> f in
      let ops = List.map (lower_float b) args in
      let r = fresh_reg b in
      emit b (Ir.Call (r, f, ops));
      Ir.Oreg r
  | A.Eternary (c, x, y) ->
      let co = lower_cond b c in
      let xo = lower_float b x and yo = lower_float b y in
      let r = fresh_reg b in
      emit b (Ir.Select (r, co, xo, yo));
      Ir.Oreg r

and lower_cond b (e : A.expr) : Ir.operand =
  match e.A.desc with
  | A.Ebinop ((A.Blt | A.Ble | A.Bgt | A.Bge | A.Beq | A.Bne) as op, x, y) ->
      let int_cmp =
        try
          Sema.infer_expr (all_scope b) x = A.Tint
          && Sema.infer_expr (all_scope b) y = A.Tint
        with _ -> false
      in
      let r = fresh_reg b in
      if int_cmp then begin
        let xo = lower_int b x and yo = lower_int b y in
        let c =
          match op with
          | A.Blt -> Ir.Slt | A.Ble -> Ir.Sle | A.Bgt -> Ir.Sgt
          | A.Bge -> Ir.Sge | A.Beq -> Ir.Ieq | _ -> Ir.Ine
        in
        emit b (Ir.Icmp (r, c, xo, yo))
      end
      else begin
        let xo = lower_float b x and yo = lower_float b y in
        let c =
          match op with
          | A.Blt -> Ir.Folt | A.Ble -> Ir.Fole | A.Bgt -> Ir.Fogt
          | A.Bge -> Ir.Foge | A.Beq -> Ir.Foeq | _ -> Ir.Fone
        in
        emit b (Ir.Fcmp (r, c, xo, yo))
      end;
      Ir.Oreg r
  | A.Ebinop (A.Band, x, y) ->
      let xo = lower_cond b x and yo = lower_cond b y in
      let r = fresh_reg b in
      emit b (Ir.BoolOp (r, `And, [ xo; yo ]));
      Ir.Oreg r
  | A.Ebinop (A.Bor, x, y) ->
      let xo = lower_cond b x and yo = lower_cond b y in
      let r = fresh_reg b in
      emit b (Ir.BoolOp (r, `Or, [ xo; yo ]));
      Ir.Oreg r
  | A.Eunop (A.Unot, x) ->
      let xo = lower_cond b x in
      let r = fresh_reg b in
      emit b (Ir.BoolOp (r, `Not, [ xo ]));
      Ir.Oreg r
  | _ -> Diag.errorf ~loc:e.A.eloc "expected a condition"

and all_scope b : Sema.binding Util.SMap.t = b.env.Sema.bindings

(* ------------------------------------------------------------------ *)
(* Statements                                                           *)

let rec lower_stmt b (s : A.stmt) : unit =
  match s.A.sdesc with
  | A.Sassign (lv, op, rhs) ->
      if lv.A.indices = [] then begin
        (* scalar target: a mutable register *)
        let reg =
          match Util.SMap.find_opt lv.A.base b.vars with
          | Some (Ir.Oreg r) -> r
          | _ ->
              Diag.errorf ~loc:lv.A.lloc
                "assignment to %s which is not a local scalar" lv.A.base
        in
        let rhs_op = lower_float b rhs in
        let value =
          match op with
          | A.Aset -> rhs_op
          | _ ->
              let fop =
                match op with
                | A.Aadd -> Ir.Fadd | A.Asub -> Ir.Fsub
                | A.Amul -> Ir.Fmul | _ -> Ir.Fdiv
              in
              let r = fresh_reg b in
              emit b (Ir.Fbin (r, fop, Ir.Oreg reg, rhs_op));
              Ir.Oreg r
        in
        emit b (Ir.Mov (reg, value))
      end
      else begin
        let idx_ops = List.map (lower_int b) lv.A.indices in
        let addr = fresh_reg b in
        emit b (Ir.Gep (addr, lv.A.base, idx_ops));
        let value =
          match op with
          | A.Aset -> lower_float b rhs
          | _ ->
              let old = fresh_reg b in
              emit b (Ir.Load (old, Ir.Oreg addr));
              let rhs_op = lower_float b rhs in
              let fop =
                match op with
                | A.Aadd -> Ir.Fadd | A.Asub -> Ir.Fsub
                | A.Amul -> Ir.Fmul | _ -> Ir.Fdiv
              in
              let r = fresh_reg b in
              emit b (Ir.Fbin (r, fop, Ir.Oreg old, rhs_op));
              Ir.Oreg r
        in
        emit b (Ir.Store (Ir.Oreg addr, value))
      end
  | A.Sdecl_scalar (A.Tdouble, name, init) ->
      let r = fresh_reg b in
      b.vars <- Util.SMap.add name (Ir.Oreg r) b.vars;
      (match init with
      | Some e ->
          let v = lower_float b e in
          emit b (Ir.Mov (r, v))
      | None -> ())
  | A.Sdecl_scalar (A.Tint, name, _) ->
      Diag.errorf ~loc:s.A.sloc "local int %s not supported" name
  | A.Sdecl_array _ ->
      () (* recorded at the function level by [lower_kernel] *)
  | A.Sfor (h, body) ->
      let header = fresh_label b "header" in
      let body_l = fresh_label b "body" in
      let latch = fresh_label b "latch" in
      let exit = fresh_label b "exit" in
      (* preheader: initialize the induction variable *)
      let iv = fresh_reg b in
      let lo = lower_int b h.A.lo in
      emit b (Ir.Mov (iv, lo));
      let saved_vars = b.vars in
      b.vars <- Util.SMap.add h.A.index (Ir.Oreg iv) b.vars;
      seal b (Ir.Br header) ~next:header;
      (* header: test *)
      let bound = lower_int b h.A.bound in
      let c = fresh_reg b in
      let cmp =
        match h.A.cmp with
        | A.Blt -> Ir.Slt | A.Ble -> Ir.Sle | A.Bgt -> Ir.Sgt | A.Bge -> Ir.Sge
        | _ -> assert false
      in
      emit b (Ir.Icmp (c, cmp, Ir.Oreg iv, bound));
      seal b (Ir.CondBr (Ir.Oreg c, body_l, exit)) ~next:body_l;
      (* body *)
      List.iter (lower_stmt b) body;
      seal b (Ir.Br latch) ~next:latch;
      (* latch: step *)
      let stepped = fresh_reg b in
      emit b (Ir.Bin (stepped, Ir.Iadd, Ir.Oreg iv, Ir.Oint h.A.step));
      emit b (Ir.Mov (iv, Ir.Oreg stepped));
      seal b (Ir.Br header) ~next:exit;
      b.vars <- saved_vars
  | A.Sif (cond, then_, else_) ->
      let c = lower_cond b cond in
      let then_l = fresh_label b "then" in
      let else_l = fresh_label b "else" in
      let merge = fresh_label b "merge" in
      let has_else = else_ <> [] in
      seal b (Ir.CondBr (c, then_l, (if has_else then else_l else merge)))
        ~next:then_l;
      List.iter (lower_stmt b) then_;
      seal b (Ir.Br merge) ~next:(if has_else then else_l else merge);
      if has_else then begin
        List.iter (lower_stmt b) else_;
        seal b (Ir.Br merge) ~next:merge
      end
  | A.Sblock body -> List.iter (lower_stmt b) body

(* Collect local array declarations (any nesting level). *)
let rec local_arrays_of_stmts env stmts =
  List.concat_map
    (fun (s : A.stmt) ->
      match s.A.sdesc with
      | A.Sdecl_array (_, name, dims) -> [ (name, List.map Lower.int_expr dims) ]
      | A.Sfor (_, body) | A.Sblock body -> local_arrays_of_stmts env body
      | A.Sif (_, t, e) ->
          local_arrays_of_stmts env t @ local_arrays_of_stmts env e
      | _ -> [])
    stmts

(** [lower env] — lower a checked kernel to a lir function. *)
let lower (env : Sema.env) : Ir.func =
  let k = env.Sema.kernel in
  let b =
    {
      done_blocks = [];
      cur_label = "entry";
      cur_insts = [];
      next_reg = 0;
      next_label = 0;
      vars = Util.SMap.empty;
      env;
    }
  in
  List.iter (lower_stmt b) k.A.body;
  seal b Ir.Ret ~next:"unreachable";
  let arrays =
    List.map
      (fun (name, (info : Sema.array_info)) ->
        (name, List.map Lower.int_expr info.Sema.dims))
      (Sema.array_params env)
  in
  {
    Ir.fname = k.A.name;
    size_params = Sema.size_params env;
    scalar_params = Sema.scalar_params env;
    arrays;
    local_arrays = local_arrays_of_stmts env k.A.body;
    blocks = List.rev b.done_blocks;
  }

(** Parse + check + lower a kernel source string to lir. *)
let func_of_string ?(source = "<string>") text : Ir.func =
  lower (Sema.check (Parser.parse_kernel_string ~source text))
