(** The low-level IR ("lir") — an LLVM-IR-like three-address representation.

    Instructions operate on virtual registers grouped into basic blocks
    connected by (conditional) branches; loops and memory accesses exist
    only as branch patterns and GEP/load/store instructions, exactly the
    situation the paper's §3 lifting confronts: "all high-level information,
    such as array shapes, loop relations, and data dependencies, must be
    inferred through static analysis".

    Arrays are addressed by multi-index GEPs (the form clang emits for
    statically-shaped arrays); registers are mutable (post-reg2mem style),
    so no phi nodes are needed. *)

type reg = int

type label = string

type operand =
  | Oreg of reg
  | Oint of int
  | Ofloat of float
  | Osym of string  (** integer size parameter *)
  | Oscalar of string  (** floating scalar parameter or named local *)

type ibinop = Iadd | Isub | Imul | Idiv | Irem

type fbinop = Fadd | Fsub | Fmul | Fdiv

type icmp = Slt | Sle | Sgt | Sge | Ieq | Ine

type fcmp = Folt | Fole | Fogt | Foge | Foeq | Fone

type inst =
  | Bin of reg * ibinop * operand * operand  (** integer arithmetic *)
  | Fbin of reg * fbinop * operand * operand  (** float arithmetic *)
  | Fneg of reg * operand
  | Call of reg * string * operand list  (** intrinsic (sqrt, exp, ...) *)
  | Icmp of reg * icmp * operand * operand
  | Fcmp of reg * fcmp * operand * operand
  | Select of reg * operand * operand * operand  (** cond, then, else *)
  | Gep of reg * string * operand list  (** array base + one index per dim *)
  | Load of reg * operand  (** from an address produced by Gep *)
  | Store of operand * operand  (** address, value *)
  | Mov of reg * operand
  | Sitofp of reg * operand  (** int -> double *)
  | BoolOp of reg * [ `And | `Or | `Not ] * operand list

type terminator =
  | Br of label
  | CondBr of operand * label * label
  | Ret

type block = { label : label; insts : inst list; term : terminator }

type func = {
  fname : string;
  size_params : string list;
  scalar_params : string list;
  arrays : (string * Daisy_poly.Expr.t list) list;  (** name, dims *)
  local_arrays : (string * Daisy_poly.Expr.t list) list;
  blocks : block list;  (** entry first *)
}

let entry_label (f : func) =
  match f.blocks with [] -> invalid_arg "empty function" | b :: _ -> b.label

let block (f : func) (l : label) : block =
  match List.find_opt (fun b -> String.equal b.label l) f.blocks with
  | Some b -> b
  | None -> invalid_arg ("unknown block " ^ l)

(** Registers written by an instruction. *)
let def_of = function
  | Bin (r, _, _, _) | Fbin (r, _, _, _) | Fneg (r, _) | Call (r, _, _)
  | Icmp (r, _, _, _) | Fcmp (r, _, _, _) | Select (r, _, _, _)
  | Gep (r, _, _) | Load (r, _) | Mov (r, _) | Sitofp (r, _)
  | BoolOp (r, _, _) -> Some r
  | Store _ -> None

let successors (b : block) : label list =
  match b.term with
  | Br l -> [ l ]
  | CondBr (_, t, f) -> [ t; f ]
  | Ret -> []

(* ------------------------------------------------------------------ *)
(* Printing                                                             *)

let pp_operand ppf = function
  | Oreg r -> Fmt.pf ppf "%%r%d" r
  | Oint n -> Fmt.int ppf n
  | Ofloat f -> Fmt.pf ppf "%g" f
  | Osym s -> Fmt.pf ppf "@%s" s
  | Oscalar s -> Fmt.pf ppf "$%s" s

let string_of_ibinop = function
  | Iadd -> "add" | Isub -> "sub" | Imul -> "mul" | Idiv -> "sdiv" | Irem -> "srem"

let string_of_fbinop = function
  | Fadd -> "fadd" | Fsub -> "fsub" | Fmul -> "fmul" | Fdiv -> "fdiv"

let string_of_icmp = function
  | Slt -> "slt" | Sle -> "sle" | Sgt -> "sgt" | Sge -> "sge"
  | Ieq -> "eq" | Ine -> "ne"

let string_of_fcmp = function
  | Folt -> "olt" | Fole -> "ole" | Fogt -> "ogt" | Foge -> "oge"
  | Foeq -> "oeq" | Fone -> "one"

let pp_inst ppf = function
  | Bin (r, op, a, b) ->
      Fmt.pf ppf "%%r%d = %s %a, %a" r (string_of_ibinop op) pp_operand a
        pp_operand b
  | Fbin (r, op, a, b) ->
      Fmt.pf ppf "%%r%d = %s %a, %a" r (string_of_fbinop op) pp_operand a
        pp_operand b
  | Fneg (r, a) -> Fmt.pf ppf "%%r%d = fneg %a" r pp_operand a
  | Call (r, f, args) ->
      Fmt.pf ppf "%%r%d = call @%s(%a)" r f
        (Fmt.list ~sep:(Fmt.any ", ") pp_operand)
        args
  | Icmp (r, c, a, b) ->
      Fmt.pf ppf "%%r%d = icmp %s %a, %a" r (string_of_icmp c) pp_operand a
        pp_operand b
  | Fcmp (r, c, a, b) ->
      Fmt.pf ppf "%%r%d = fcmp %s %a, %a" r (string_of_fcmp c) pp_operand a
        pp_operand b
  | Select (r, c, a, b) ->
      Fmt.pf ppf "%%r%d = select %a, %a, %a" r pp_operand c pp_operand a
        pp_operand b
  | Gep (r, base, idx) ->
      Fmt.pf ppf "%%r%d = getelementptr @%s, %a" r base
        (Fmt.list ~sep:(Fmt.any ", ") pp_operand)
        idx
  | Load (r, a) -> Fmt.pf ppf "%%r%d = load %a" r pp_operand a
  | Store (a, v) -> Fmt.pf ppf "store %a, %a" pp_operand v pp_operand a
  | Mov (r, a) -> Fmt.pf ppf "%%r%d = mov %a" r pp_operand a
  | Sitofp (r, a) -> Fmt.pf ppf "%%r%d = sitofp %a" r pp_operand a
  | BoolOp (r, `And, args) ->
      Fmt.pf ppf "%%r%d = and %a" r (Fmt.list ~sep:(Fmt.any ", ") pp_operand) args
  | BoolOp (r, `Or, args) ->
      Fmt.pf ppf "%%r%d = or %a" r (Fmt.list ~sep:(Fmt.any ", ") pp_operand) args
  | BoolOp (r, `Not, args) ->
      Fmt.pf ppf "%%r%d = not %a" r (Fmt.list ~sep:(Fmt.any ", ") pp_operand) args

let pp_terminator ppf = function
  | Br l -> Fmt.pf ppf "br %%%s" l
  | CondBr (c, t, f) -> Fmt.pf ppf "br %a, %%%s, %%%s" pp_operand c t f
  | Ret -> Fmt.string ppf "ret"

let pp_block ppf (b : block) =
  Fmt.pf ppf "@[<v>%s:@,%a%a@]" b.label
    (Fmt.list ~sep:Fmt.nop (fun ppf i -> Fmt.pf ppf "  %a@," pp_inst i))
    b.insts
    (fun ppf t -> Fmt.pf ppf "  %a" pp_terminator t)
    b.term

let pp_func ppf (f : func) =
  Fmt.pf ppf "@[<v>define %s(%a | %a) {@,%a@,}@]" f.fname
    (Fmt.list ~sep:(Fmt.any ", ") Fmt.string)
    f.size_params
    (Fmt.list ~sep:(Fmt.any ", ") Fmt.string)
    f.scalar_params
    (Fmt.list ~sep:Fmt.cut pp_block)
    f.blocks

let func_to_string f = Fmt.str "%a" pp_func f
