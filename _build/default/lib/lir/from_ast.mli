(** Lowering the checked DSL AST to lir — the "clang" of this
    reproduction: loops become branch-connected blocks, conditionals become
    diamonds, accesses become GEP + load/store, scalars become mutable
    registers. *)

val lower : Daisy_lang.Sema.env -> Ir.func

val func_of_string : ?source:string -> string -> Ir.func
(** Parse + check + lower a kernel source string. *)
