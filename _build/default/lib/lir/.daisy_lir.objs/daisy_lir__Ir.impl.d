lib/lir/ir.ml: Daisy_poly Fmt List String
