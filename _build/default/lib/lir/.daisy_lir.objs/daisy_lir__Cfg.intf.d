lib/lir/cfg.mli: Daisy_support Hashtbl Ir
