lib/lir/cfg.ml: Array Daisy_support Hashtbl Ir List Util
