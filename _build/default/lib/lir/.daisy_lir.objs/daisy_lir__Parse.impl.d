lib/lir/parse.ml: Daisy_poly Fmt Ir List String
