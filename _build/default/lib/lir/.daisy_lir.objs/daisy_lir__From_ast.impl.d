lib/lir/from_ast.ml: Ast Daisy_lang Daisy_support Diag Ir List Lower Parser Printf Sema Util
