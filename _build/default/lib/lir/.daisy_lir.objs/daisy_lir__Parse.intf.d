lib/lir/parse.mli: Daisy_poly Ir
