lib/lir/from_ast.mli: Daisy_lang Ir
