(** Stride minimization (paper §2.2): replace each loop nest's perfect band
    with the legal permutation minimizing total memory-access distance. *)

type criterion =
  | Sum_of_strides of int Daisy_support.Util.SMap.t
      (** exact criterion under concrete problem sizes: sum over accesses
          and band levels of [advances(level) * |stride(access, level)|] *)
  | Out_of_order
      (** symbolic fallback: count subscript positions whose iterator order
          disagrees with the array dimension order *)

val stride_cap : float
(** Non-affine accesses are treated as this pessimal stride. *)

val trip_estimates :
  sizes:int Daisy_support.Util.SMap.t ->
  Daisy_loopir.Ir.loop list ->
  float list
(** Estimated trip count per band loop, outer to inner (iterators in inner
    bounds are estimated at half their trip). *)

val access_stride :
  sizes:int Daisy_support.Util.SMap.t ->
  Daisy_loopir.Ir.array_decl list ->
  Daisy_loopir.Ir.access ->
  string ->
  float
(** Elements skipped by one step of the iterator in the access. *)

val order_cost :
  criterion ->
  arrays:Daisy_loopir.Ir.array_decl list ->
  Daisy_loopir.Ir.loop list ->
  Daisy_loopir.Ir.node list ->
  float
(** Cost of executing the band loops in the given order over the body. *)

val expressible : Daisy_loopir.Ir.loop list -> bool
(** No loop bound references an iterator later in the order. *)

val rebuild_band :
  Daisy_loopir.Ir.loop list -> Daisy_loopir.Ir.node list -> Daisy_loopir.Ir.loop
(** Rebuild a nest from band loops in a new order over the same body. *)

type result = {
  nest : Daisy_loopir.Ir.loop;
  permuted : bool;
  cost_before : float;
  cost_after : float;
}

val minimize_nest :
  ?max_enumerate:int ->
  criterion ->
  arrays:Daisy_loopir.Ir.array_decl list ->
  outer:Daisy_loopir.Ir.loop list ->
  Daisy_loopir.Ir.loop ->
  result
(** Find and apply the minimal-stride legal permutation of the nest's
    perfect band; bands longer than [max_enumerate] (default 6) use the
    greedy group-sort approximation. *)

val run :
  ?max_enumerate:int ->
  criterion ->
  Daisy_loopir.Ir.program ->
  Daisy_loopir.Ir.program * int
(** Minimize every nest of the program; returns the count of permuted
    nests. *)
