(** Iterator normalization: rewrite every loop to run from 0 upward with
    step 1 (a prerequisite for the other normalization passes). *)

val normalize_loop : Daisy_loopir.Ir.loop -> Daisy_loopir.Ir.loop
(** Normalize one loop, substituting the reindexed iterator through its
    body and inner-loop bounds. *)

val run : Daisy_loopir.Ir.program -> Daisy_loopir.Ir.program
(** Normalize every loop of the program (bottom-up). *)

val is_normalized : Daisy_loopir.Ir.program -> bool
