(** Scalar expansion: turn loop-local scalar temporaries into arrays indexed
    by the enclosing loop's iterator.

    This is the transformation that unlocks maximal fission on CLOUDSC-style
    code (paper §5.1, Fig. 10): scalars like [ZQP] or [ZCOND] written and
    read within one iteration of the [JL] loop serialize the whole body; as
    arrays [ZQP_0[JL]] the computations separate into atomic loop nests.

    Expansion of scalar [s] over loop [L] (the deepest loop enclosing every
    access to [s]) is applied when:
    - [s] is a local scalar of the program (never a parameter);
    - all accesses to [s] are inside [L]'s subtree;
    - the first access in execution (in-order) position within [L]'s body is
      an unguarded write — so no iteration reads a value produced by an
      earlier iteration, and nothing after [L] reads [s];
    - [s] is used by at least two distinct units of [L]'s body (otherwise
      expansion cannot help fission).

    Loops are assumed to execute at least one iteration (the standard
    polyhedral context assumption); programs are iterator-normalized first,
    so the expansion subscript is just [L]'s iterator and the array extent
    is [hi + 1]. *)

open Daisy_support
module Ir = Daisy_loopir.Ir
module Expr = Daisy_poly.Expr

type occurrence = {
  path : int list;  (** lids of enclosing loops, outermost first *)
  unit_of_loop : (int * int) list;  (** (lid, child index within that loop) *)
  is_write : bool;
  guarded : bool;
}

(* Collect occurrences of every local scalar, in execution (in-order)
   order. *)
let collect_occurrences (p : Ir.program) : (string, occurrence list) Hashtbl.t =
  let tbl : (string, occurrence list) Hashtbl.t = Hashtbl.create 16 in
  let locals = Util.SSet.of_list p.Ir.local_scalars in
  let add s occ =
    if Util.SSet.mem s locals then
      Hashtbl.replace tbl s (occ :: (try Hashtbl.find tbl s with Not_found -> []))
  in
  let rec go path units nodes =
    List.iteri
      (fun child n ->
        match n with
        | Ir.Ncomp c ->
            let mk is_write guarded =
              { path; unit_of_loop = units child; is_write; guarded }
            in
            List.iter (fun s -> add s (mk false (c.Ir.guard <> None)))
              (Ir.comp_scalar_reads c);
            List.iter (fun s -> add s (mk true (c.Ir.guard <> None)))
              (Ir.comp_scalar_writes c)
        | Ir.Ncall k ->
            List.iter
              (fun e ->
                List.iter
                  (fun s ->
                    add s { path; unit_of_loop = units child; is_write = false; guarded = false })
                  (Ir.vexpr_scalars e))
              k.Ir.scalar_args
        | Ir.Nloop l ->
            go (path @ [ l.Ir.lid ])
              (fun gc -> units child @ [ (l.Ir.lid, gc) ])
              l.Ir.body)
      nodes
  in
  go [] (fun _ -> []) p.Ir.body;
  Hashtbl.iter (fun s occs -> Hashtbl.replace tbl s (List.rev occs)) tbl;
  tbl

let rec common_prefix a b =
  match (a, b) with
  | x :: a', y :: b' when x = y -> x :: common_prefix a' b'
  | _ -> []

(** Decide the expansion of scalar [s]: [Some lid] of the loop to expand
    over, or [None]. *)
let expansion_target (occs : occurrence list) : int option =
  match occs with
  | [] -> None
  | first :: _ ->
      let common =
        List.fold_left (fun acc o -> common_prefix acc o.path) first.path occs
      in
      (match List.rev common with
      | [] -> None (* not all inside a common loop *)
      | target :: _ ->
          (* first in-order access must be an unguarded write *)
          if not (first.is_write && not first.guarded) then None
          else
            (* used by >= 2 units of the target loop's body *)
            let unit_in_target o = List.assoc_opt target o.unit_of_loop in
            let units =
              List.filter_map unit_in_target occs |> Util.dedup ~eq:( = )
            in
            if List.length units >= 2 then Some target else None)

(* Rewrite the subtree of the target loop, mapping the scalar to an array
   access indexed by the loop's iterator. *)
let rewrite_comp mapping (c : Ir.comp) : Ir.comp =
  let dest =
    match c.Ir.dest with
    | Ir.Dscalar s -> (
        match Util.SMap.find_opt s mapping with
        | Some access -> Ir.Darray access
        | None -> c.Ir.dest)
    | d -> d
  in
  {
    c with
    Ir.dest = dest;
    rhs = Ir.vexpr_scalar_to_array mapping c.Ir.rhs;
    guard = Option.map (Ir.pred_scalar_to_array mapping) c.Ir.guard;
  }

(** [run p] expands every eligible local scalar; returns the new program and
    the list of [(scalar, new_array)] expansions performed. *)
let run (p : Ir.program) : Ir.program * (string * string) list =
  let occs = collect_occurrences p in
  (* choose target loop per scalar *)
  let targets : (int, (string * string) list) Hashtbl.t = Hashtbl.create 8 in
  let taken =
    ref
      (Util.SSet.of_list
         (p.Ir.local_scalars @ p.Ir.scalar_params @ p.Ir.size_params
         @ List.map (fun (a : Ir.array_decl) -> a.Ir.name) p.Ir.arrays))
  in
  let expansions = ref [] in
  (* a loop is a valid expansion target only if its extent is a pure
     function of size parameters (the expanded array needs a static shape) *)
  let params = Util.SSet.of_list p.Ir.size_params in
  let valid_target lid =
    List.exists
      (fun (l : Ir.loop) ->
        l.Ir.lid = lid
        && Util.SSet.subset (Expr.free_vars l.Ir.hi) params
        && Expr.equal l.Ir.lo Expr.zero && l.Ir.step = 1)
      (Ir.loops_in p.Ir.body)
  in
  (* deterministic order: sort scalars by name *)
  let by_name =
    Hashtbl.fold (fun s o acc -> (s, o) :: acc) occs []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun (s, occ_list) ->
      match expansion_target occ_list with
      | Some lid when valid_target lid ->
          let fresh = Util.fresh_name (s ^ "_0") !taken in
          taken := Util.SSet.add fresh !taken;
          expansions := (s, fresh) :: !expansions;
          Hashtbl.replace targets lid
            ((s, fresh) :: (try Hashtbl.find targets lid with Not_found -> []))
      | _ -> ())
    by_name;
  if Hashtbl.length targets = 0 then (p, [])
  else begin
    let new_arrays = ref [] in
    let rec rewrite mapping nodes =
      List.map
        (fun n ->
          match n with
          | Ir.Ncomp c -> Ir.Ncomp (rewrite_comp mapping c)
          | Ir.Ncall k ->
              Ir.Ncall
                {
                  k with
                  Ir.scalar_args =
                    List.map (Ir.vexpr_scalar_to_array mapping) k.Ir.scalar_args;
                }
          | Ir.Nloop l ->
              let mapping =
                match Hashtbl.find_opt targets l.Ir.lid with
                | None -> mapping
                | Some pairs ->
                    List.fold_left
                      (fun m (s, fresh) ->
                        new_arrays :=
                          {
                            Ir.name = fresh;
                            elem = Ir.Fdouble;
                            dims = [ Expr.add l.Ir.hi Expr.one ];
                            storage = Ir.Slocal;
                          }
                          :: !new_arrays;
                        Util.SMap.add s
                          { Ir.array = fresh; indices = [ Expr.var l.Ir.iter ] }
                          m)
                      mapping pairs
              in
              Ir.Nloop { l with Ir.body = rewrite mapping l.Ir.body })
        nodes
    in
    let body = rewrite Util.SMap.empty p.Ir.body in
    let expanded = List.map fst !expansions in
    ( {
        p with
        Ir.body;
        arrays = p.Ir.arrays @ List.rev !new_arrays;
        local_scalars =
          List.filter (fun s -> not (List.mem s expanded)) p.Ir.local_scalars;
      },
      !expansions )
  end
