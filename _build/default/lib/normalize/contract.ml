(** Array contraction — the inverse of scalar expansion.

    Scalar expansion materializes loop-local temporaries as arrays so that
    maximal fission can split computations apart; after producer-consumer
    fusion has pulled the producing and consuming computations back into a
    single loop, the expanded array's whole lifetime fits one iteration
    again and it can be contracted back to a scalar, removing its memory
    traffic entirely.

    A rank-1 local array [T] is contracted when:
    - every access to [T] lies in one single loop [L] (the same loop node);
    - every subscript is exactly [L]'s iterator;
    - the first in-order access within [L]'s body is an unguarded write
      (no value flows between iterations and nothing reads [T] after [L]).

    This pass is an extension beyond the paper's pipeline (its Fig. 10b
    keeps the expanded arrays); the ablation bench measures its effect. *)

open Daisy_support
module Ir = Daisy_loopir.Ir
module Expr = Daisy_poly.Expr

type occurrence = {
  loop_lid : int;  (** innermost enclosing loop *)
  iter : string;  (** that loop's iterator *)
  subscript_is_iter : bool;
  is_write : bool;
  guarded : bool;
}

(* Collect in-order occurrences of rank-1 local arrays. *)
let collect (p : Ir.program) : (string, occurrence list) Hashtbl.t =
  let locals =
    List.filter_map
      (fun (a : Ir.array_decl) ->
        if a.Ir.storage = Ir.Slocal && List.length a.Ir.dims = 1 then
          Some a.Ir.name
        else None)
      p.Ir.arrays
    |> Util.SSet.of_list
  in
  let tbl : (string, occurrence list) Hashtbl.t = Hashtbl.create 8 in
  let add name occ =
    if Util.SSet.mem name locals then
      Hashtbl.replace tbl name
        (occ :: (try Hashtbl.find tbl name with Not_found -> []))
  in
  let rec go (ctx : Ir.loop list) nodes =
    List.iter
      (fun n ->
        match n with
        | Ir.Nloop l -> go (l :: ctx) l.Ir.body
        | Ir.Ncall k ->
            (* calls touch whole arrays: poison by recording a mismatching
               occurrence *)
            List.iter
              (fun a ->
                add a
                  { loop_lid = -1; iter = ""; subscript_is_iter = false;
                    is_write = true; guarded = true })
              (k.Ir.args @ k.Ir.writes_to)
        | Ir.Ncomp c ->
            let lid, iter =
              match ctx with
              | l :: _ -> (l.Ir.lid, l.Ir.iter)
              | [] -> (-1, "")
            in
            let occ_of (a : Ir.access) is_write =
              {
                loop_lid = lid;
                iter;
                subscript_is_iter =
                  (match a.Ir.indices with
                  | [ Expr.Var v ] -> String.equal v iter
                  | _ -> false);
                is_write;
                guarded = c.Ir.guard <> None;
              }
            in
            (* reads before the write, matching execution order *)
            List.iter
              (fun (a : Ir.access) -> add a.Ir.array (occ_of a false))
              (Ir.comp_array_reads c);
            List.iter
              (fun (a : Ir.access) -> add a.Ir.array (occ_of a true))
              (Ir.comp_array_writes c))
      nodes
  in
  go [] p.Ir.body;
  Hashtbl.iter (fun k v -> Hashtbl.replace tbl k (List.rev v)) tbl;
  tbl

let contractible (occs : occurrence list) : bool =
  match occs with
  | [] -> false
  | first :: _ ->
      first.is_write
      && (not first.guarded)
      && first.loop_lid >= 0
      && List.for_all
           (fun o ->
             o.loop_lid = first.loop_lid && o.subscript_is_iter)
           occs

(** [run p] — contract every eligible expanded array back to a scalar;
    returns the new program and the [(array, scalar)] contractions. *)
let run (p : Ir.program) : Ir.program * (string * string) list =
  let occs = collect p in
  let taken =
    ref
      (Util.SSet.of_list
         (p.Ir.local_scalars @ p.Ir.scalar_params @ p.Ir.size_params
         @ List.map (fun (a : Ir.array_decl) -> a.Ir.name) p.Ir.arrays))
  in
  let plan = ref [] in
  let by_name =
    Hashtbl.fold (fun s o acc -> (s, o) :: acc) occs []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun (name, occ_list) ->
      if contractible occ_list then begin
        let scalar = Util.fresh_name (name ^ "_s") !taken in
        taken := Util.SSet.add scalar !taken;
        plan := (name, scalar) :: !plan
      end)
    by_name;
  if !plan = [] then (p, [])
  else begin
    let mapping =
      List.fold_left
        (fun m (arr, sc) -> Util.SMap.add arr sc m)
        Util.SMap.empty !plan
    in
    let rewrite_access (a : Ir.access) : Ir.dest option =
      match Util.SMap.find_opt a.Ir.array mapping with
      | Some sc -> Some (Ir.Dscalar sc)
      | None -> None
    in
    let rec rw_vexpr (e : Ir.vexpr) : Ir.vexpr =
      match e with
      | Ir.Vread a -> (
          match Util.SMap.find_opt a.Ir.array mapping with
          | Some sc -> Ir.Vscalar sc
          | None -> e)
      | Ir.Vfloat _ | Ir.Vint _ | Ir.Vscalar _ -> e
      | Ir.Vbin (op, a, b) -> Ir.Vbin (op, rw_vexpr a, rw_vexpr b)
      | Ir.Vneg a -> Ir.Vneg (rw_vexpr a)
      | Ir.Vcall (f, args) -> Ir.Vcall (f, List.map rw_vexpr args)
      | Ir.Vselect (pr, a, b) -> Ir.Vselect (rw_pred pr, rw_vexpr a, rw_vexpr b)
    and rw_pred (pr : Ir.pred) : Ir.pred =
      match pr with
      | Ir.Pcmp (op, a, b) -> Ir.Pcmp (op, rw_vexpr a, rw_vexpr b)
      | Ir.Pand (a, b) -> Ir.Pand (rw_pred a, rw_pred b)
      | Ir.Por (a, b) -> Ir.Por (rw_pred a, rw_pred b)
      | Ir.Pnot a -> Ir.Pnot (rw_pred a)
    in
    let rec rw_nodes nodes =
      List.map
        (fun n ->
          match n with
          | Ir.Nloop l -> Ir.Nloop { l with Ir.body = rw_nodes l.Ir.body }
          | Ir.Ncall k -> Ir.Ncall k
          | Ir.Ncomp c ->
              let dest =
                match c.Ir.dest with
                | Ir.Darray a -> (
                    match rewrite_access a with
                    | Some d -> d
                    | None -> c.Ir.dest)
                | d -> d
              in
              Ir.Ncomp
                {
                  c with
                  Ir.dest;
                  rhs = rw_vexpr c.Ir.rhs;
                  guard = Option.map rw_pred c.Ir.guard;
                })
        nodes
    in
    let contracted = List.map fst !plan in
    ( {
        p with
        Ir.body = rw_nodes p.Ir.body;
        arrays =
          List.filter
            (fun (a : Ir.array_decl) -> not (List.mem a.Ir.name contracted))
            p.Ir.arrays;
        local_scalars = p.Ir.local_scalars @ List.map snd !plan;
      },
      List.rev !plan )
  end
