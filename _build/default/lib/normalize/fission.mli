(** Maximal loop fission (paper §2.1): distribute every loop over the
    strongly connected components of its body's dependence graph, yielding
    a sequence of "atomic" loop nests. *)

val distribute :
  outer:Daisy_loopir.Ir.loop list ->
  Daisy_loopir.Ir.loop ->
  Daisy_loopir.Ir.node list
(** Distribute one loop over its atomic groups. *)

val run : Daisy_loopir.Ir.program -> Daisy_loopir.Ir.program
(** One bottom-up fission pass over the whole program. *)

val run_fixpoint : ?max_iters:int -> Daisy_loopir.Ir.program -> Daisy_loopir.Ir.program
(** Iterate {!run} until the structure stops changing. *)

val is_maximal : Daisy_loopir.Ir.program -> bool
