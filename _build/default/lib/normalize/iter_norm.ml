(** Iterator normalization: rewrite every loop to run from 0 upward with
    step 1.

    A loop [for i in lo .. hi step s] becomes [for i in 0 .. (hi-lo)/s]
    (floor division), with [i] replaced by [lo + s*i] throughout the body
    and the bounds of inner loops. This is a prerequisite for the other
    normalization passes: trip counts become [hi + 1], subscript stride
    analysis sees the raw per-iteration coefficient, and scalar expansion
    can use the iterator directly as the expansion subscript. *)

open Daisy_support
module Ir = Daisy_loopir.Ir
module Expr = Daisy_poly.Expr

let normalize_loop (l : Ir.loop) : Ir.loop =
  if Expr.equal l.Ir.lo Expr.zero && l.Ir.step = 1 then l
  else begin
    let trips_minus_1 =
      if l.Ir.step > 0 then Expr.div (Expr.sub l.Ir.hi l.Ir.lo) (Expr.const l.Ir.step)
      else Expr.div (Expr.sub l.Ir.lo l.Ir.hi) (Expr.const (-l.Ir.step))
    in
    (* i_old = lo + step * i_new (same name: substitution is simultaneous) *)
    let replacement =
      Expr.add l.Ir.lo (Expr.mul (Expr.const l.Ir.step) (Expr.var l.Ir.iter))
    in
    let env = Util.SMap.singleton l.Ir.iter replacement in
    let rec subst_nodes nodes =
      List.map
        (fun n ->
          match n with
          | Ir.Ncomp c -> Ir.Ncomp (Ir.comp_subst_idx env c)
          | Ir.Ncall k ->
              Ir.Ncall
                {
                  k with
                  Ir.dims = List.map (Expr.subst env) k.Ir.dims;
                  scalar_args = List.map (Ir.vexpr_subst_idx env) k.Ir.scalar_args;
                }
          | Ir.Nloop inner ->
              Ir.Nloop
                {
                  inner with
                  Ir.lo = Expr.subst env inner.Ir.lo;
                  hi = Expr.subst env inner.Ir.hi;
                  body = subst_nodes inner.Ir.body;
                })
        nodes
    in
    {
      l with
      Ir.lid = Ir.fresh_id ();
      lo = Expr.zero;
      hi = trips_minus_1;
      step = 1;
      body = subst_nodes l.Ir.body;
    }
  end

(** Normalize every loop of the program (bottom-up). *)
let run (p : Ir.program) : Ir.program =
  { p with Ir.body = Ir.map_loops normalize_loop p.Ir.body }

(** A program is iterator-normalized when every loop starts at 0 with
    step 1. *)
let is_normalized (p : Ir.program) : bool =
  List.for_all
    (fun (l : Ir.loop) -> Expr.equal l.Ir.lo Expr.zero && l.Ir.step = 1)
    (Ir.loops_in p.Ir.body)
