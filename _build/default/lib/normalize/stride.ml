(** Stride minimization (paper §2.2).

    For each loop nest, find the legal permutation of its perfect band that
    minimizes the total distance between subsequent memory accesses, and
    replace the nest with that permutation. Two criteria are provided, as in
    the paper:

    - {!Sum_of_strides}: with known (or assumed) problem sizes, the cost of
      a loop order is [sum over accesses, over band levels, of
      advances(level) * |stride(access, level)|], where [advances(level)] is
      how often that iterator ticks during the whole execution — exactly
      "the sum of all distances between two subsequent accesses to all
      arrays over all computations".
    - {!Out_of_order}: when dimensions are symbolic, count subscript
      positions whose iterator order disagrees with the array dimension
      order (the paper's fallback criterion).

    Permutations are found by exhaustive enumeration up to
    [max_enumerate] band loops; deeper bands use the greedy group-sort
    approximation. *)

open Daisy_support
module Ir = Daisy_loopir.Ir
module Expr = Daisy_poly.Expr
module Affine = Daisy_poly.Affine
module Legality = Daisy_dependence.Legality

type criterion =
  | Sum_of_strides of int Util.SMap.t  (** concrete problem sizes *)
  | Out_of_order

(** Stride values are capped so one non-affine or gigantic-stride access
    cannot erase the signal from the others. *)
let stride_cap = 1.0e7

(* ------------------------------------------------------------------ *)
(* Trip counts and element strides                                      *)

(** Estimated trip count of each band loop (outer to inner), under a size
    assignment; iterators appearing in inner bounds (triangular nests) are
    estimated at half their own trip count. *)
let trip_estimates ~sizes (band : Ir.loop list) : float list =
  let env = ref sizes in
  List.map
    (fun (l : Ir.loop) ->
      let trip_expr = Expr.add (Expr.sub l.Ir.hi l.Ir.lo) Expr.one in
      let trip =
        match Expr.eval !env trip_expr with
        | t -> float_of_int (max 1 t)
        | exception _ -> 64.0
      in
      let t = max 1.0 (trip /. float_of_int (abs l.Ir.step)) in
      env := Util.SMap.add l.Ir.iter (int_of_float (t /. 2.0)) !env;
      t)
    band

(** Element strides of each dimension of an array (row-major): dimension
    [t]'s stride is the product of the extents of dimensions after [t]. *)
let dim_strides ~sizes (decl : Ir.array_decl) : float list =
  let extents =
    List.map
      (fun d ->
        match Expr.eval sizes d with
        | e -> float_of_int (max 1 e)
        | exception _ -> 64.0)
      decl.Ir.dims
  in
  let rec suffix_products = function
    | [] -> []
    | _ :: rest as l ->
        let s = List.fold_left ( *. ) 1.0 (List.tl l) in
        s :: suffix_products rest
  in
  suffix_products extents

(** [access_stride ~sizes arrays access iter] — elements skipped by one step
    of [iter] in [access]; [stride_cap] when a subscript is non-affine. *)
let access_stride ~sizes (arrays : Ir.array_decl list) (a : Ir.access)
    (iter : string) : float =
  match List.find_opt (fun (d : Ir.array_decl) -> d.Ir.name = a.Ir.array) arrays with
  | None -> 0.0 (* scalar or unknown container: no spatial stride *)
  | Some decl ->
      let strides = dim_strides ~sizes decl in
      let rec go indices strides acc =
        match (indices, strides) with
        | [], _ | _, [] -> acc
        | idx :: idxs, s :: ss -> (
            match Affine.of_expr idx with
            | None -> stride_cap (* non-affine: pessimal *)
            | Some aff ->
                let c = Affine.coeff iter aff in
                go idxs ss (acc +. (Float.abs (float_of_int c) *. s)))
      in
      Float.min stride_cap (go a.Ir.indices strides 0.0)

(* ------------------------------------------------------------------ *)
(* Cost of a band order                                                 *)

let accesses_of_body (body : Ir.node list) : Ir.access list =
  List.concat_map
    (fun n -> Ir.node_array_reads n @ Ir.node_array_writes n)
    body

(** Cost of executing the band loops in the given order. *)
let order_cost (crit : criterion) ~(arrays : Ir.array_decl list)
    (order : Ir.loop list) (body : Ir.node list) : float =
  let accesses = accesses_of_body body in
  match crit with
  | Sum_of_strides sizes ->
      let trips = trip_estimates ~sizes order in
      (* advances(k) = product of trips of levels 0..k *)
      let advances =
        List.rev
          (snd
             (List.fold_left
                (fun (prod, acc) t ->
                  let prod = prod *. t in
                  (prod, prod :: acc))
                (1.0, []) trips))
      in
      List.fold_left2
        (fun cost (l : Ir.loop) adv ->
          let level_strides =
            Util.sum_byf
              (fun a -> access_stride ~sizes arrays a l.Ir.iter)
              accesses
          in
          cost +. (adv *. level_strides))
        0.0 order advances
  | Out_of_order ->
      (* count (iterator position, dimension position) inversions *)
      let pos_of_iter =
        List.mapi (fun i (l : Ir.loop) -> (l.Ir.iter, i)) order
      in
      let inversions =
        Util.sum_by
          (fun (a : Ir.access) ->
            (* pairs (band position, dimension) used by this access *)
            let used =
              List.concat
                (List.mapi
                   (fun dim idx ->
                     match Affine.of_expr idx with
                     | None -> []
                     | Some aff ->
                         List.filter_map
                           (fun (it, p) ->
                             if Affine.coeff it aff <> 0 then Some (p, dim)
                             else None)
                           pos_of_iter)
                   a.Ir.indices)
            in
            Util.sum_by
              (fun ((p1, d1), (p2, d2)) ->
                if (p1 < p2 && d1 > d2) || (p1 > p2 && d1 < d2) then 1 else 0)
              (Util.pairs used))
          accesses
      in
      float_of_int inversions

(* ------------------------------------------------------------------ *)
(* Permutation search                                                   *)

(** A permutation is expressible when no loop bound references an iterator
    that would come later in the new order. *)
let expressible (order : Ir.loop list) : bool =
  let rec go seen = function
    | [] -> true
    | (l : Ir.loop) :: rest ->
        let fv = Util.SSet.union (Expr.free_vars l.Ir.lo) (Expr.free_vars l.Ir.hi) in
        let band_iters_later =
          List.exists (fun (l' : Ir.loop) -> Util.SSet.mem l'.Ir.iter fv) rest
        in
        (not band_iters_later)
        && (* bounds may reference earlier band iterators or params *)
        go (Util.SSet.add l.Ir.iter seen) rest
  in
  go Util.SSet.empty order

(** Rebuild a nest from band loops in a new order over the same body. *)
let rebuild_band (order : Ir.loop list) (body : Ir.node list) : Ir.loop =
  match List.rev order with
  | [] -> invalid_arg "rebuild_band: empty band"
  | innermost :: outers ->
      List.fold_left
        (fun inner (l : Ir.loop) ->
          { l with Ir.lid = Ir.fresh_id (); body = [ Ir.Nloop inner ] })
        { innermost with Ir.lid = Ir.fresh_id (); body }
        outers

type result = {
  nest : Ir.loop;
  permuted : bool;  (** did the order change? *)
  cost_before : float;
  cost_after : float;
}

(** Find and apply the minimal-stride legal permutation of [nest]'s perfect
    band. Bands longer than [max_enumerate] use the greedy sort. *)
let minimize_nest ?(max_enumerate = 6) (crit : criterion)
    ~(arrays : Ir.array_decl list) ~(outer : Ir.loop list) (nest : Ir.loop) :
    result =
  let band, body = Legality.perfect_band nest in
  let n = List.length band in
  let cost order = order_cost crit ~arrays order body in
  let original_cost = cost band in
  if n <= 1 then
    { nest; permuted = false; cost_before = original_cost; cost_after = original_cost }
  else begin
    let vectors = Legality.band_dep_vectors ~outer band body in
    let legal order =
      (* permutation as new-position -> old-position indices *)
      let perm =
        Array.of_list
          (List.map
             (fun (l : Ir.loop) ->
               match
                 Util.list_index_of
                   (fun a (b : Ir.loop) -> a.Ir.lid = b.Ir.lid)
                   l band
               with
               | Some i -> i
               | None -> assert false)
             order)
      in
      Legality.legal_permutation vectors perm && expressible order
    in
    let candidates =
      if n <= max_enumerate then
        List.filter legal (Util.permutations band)
      else begin
        (* group-sort approximation: order by descending per-iterator total
           stride (small strides innermost), keep original order on ties *)
        let key (l : Ir.loop) =
          let accesses = accesses_of_body body in
          match crit with
          | Sum_of_strides sizes ->
              -.Util.sum_byf
                  (fun a -> access_stride ~sizes arrays a l.Ir.iter)
                  accesses
          | Out_of_order ->
              (* use mean dimension position: lower = outer *)
              let positions =
                List.concat_map
                  (fun (a : Ir.access) ->
                    List.concat
                      (List.mapi
                         (fun dim idx ->
                           match Affine.of_expr idx with
                           | Some aff when Affine.coeff l.Ir.iter aff <> 0 ->
                               [ float_of_int dim ]
                           | _ -> [])
                         a.Ir.indices))
                  accesses
              in
              if positions = [] then 0.0 else -.Util.mean positions
        in
        let sorted =
          List.stable_sort (fun a b -> compare (key a) (key b)) band
        in
        List.filter legal [ sorted; band ]
      end
    in
    let best =
      List.fold_left
        (fun best order ->
          let c = cost order in
          match best with
          | Some (_, bc) when bc <= c -> best
          | _ -> Some (order, c))
        None candidates
    in
    match best with
    | Some (order, c)
      when c < original_cost
           && not
                (List.for_all2
                   (fun (a : Ir.loop) (b : Ir.loop) -> a.Ir.lid = b.Ir.lid)
                   order band) ->
        {
          nest = rebuild_band order body;
          permuted = true;
          cost_before = original_cost;
          cost_after = c;
        }
    | _ ->
        {
          nest;
          permuted = false;
          cost_before = original_cost;
          cost_after = original_cost;
        }
  end

(** Minimize every nest of the program: the outer band of each top-level
    nest, then recursively the nests below it. *)
let run ?(max_enumerate = 6) (crit : criterion) (p : Ir.program) :
    Ir.program * int =
  let count = ref 0 in
  let rec go ~outer nodes =
    List.map
      (fun n ->
        match n with
        | Ir.Ncomp _ | Ir.Ncall _ -> n
        | Ir.Nloop l ->
            let r = minimize_nest ~max_enumerate crit ~arrays:p.Ir.arrays ~outer l in
            if r.permuted then incr count;
            let nest = r.nest in
            (* recurse below the band *)
            let band, body = Legality.perfect_band nest in
            let inner_outer = outer @ band in
            let body' = go ~outer:inner_outer body in
            Ir.Nloop (rebuild_band band body'))
      nodes
  in
  let body = go ~outer:[] p.Ir.body in
  ({ p with Ir.body }, !count)
