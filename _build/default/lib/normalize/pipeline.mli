(** The a priori normalization pipeline (paper Fig. 5): iterator
    normalization, scalar expansion + maximal fission to a fixed point,
    then stride minimization per loop nest. *)

type report = {
  scalar_expansions : (string * string) list;
  fission_nests_before : int;
  fission_nests_after : int;
  permuted_nests : int;
}

val pp_report : report Fmt.t

type options = {
  fission : bool;  (** apply scalar expansion + maximal fission *)
  stride : bool;  (** apply stride minimization *)
  criterion : Stride.criterion;
}

val default_options : ?sizes:(string * int) list -> unit -> options
(** With [sizes], stride minimization uses the exact sum-of-strides
    criterion; without, the out-of-order fallback. *)

val run :
  ?options:options ->
  Daisy_loopir.Ir.program ->
  Daisy_loopir.Ir.program * report

val normalize :
  ?sizes:(string * int) list -> Daisy_loopir.Ir.program -> Daisy_loopir.Ir.program
(** Convenience wrapper around {!run} with {!default_options}. *)
