(** Maximal loop fission (paper §2.1).

    Every loop is distributed over the strongly connected components of its
    body's statement dependence graph (Kennedy-style loop distribution).
    The result is a sequence of "atomic" loop nests: loop bodies contain
    only computations and loops that cannot be separated without breaking a
    data dependence.

    The pass runs bottom-up and is iterated to a fixed point by the
    pipeline, as in the paper's "fixed-point pipeline until no more
    fissioning transformations apply". *)

module Ir = Daisy_loopir.Ir
module Graph = Daisy_dependence.Graph

(** Distribute one loop over its atomic groups. Returns the replacement
    nodes (one loop per group; the original loop if it is already atomic or
    has a single unit). *)
let distribute ~outer (l : Ir.loop) : Ir.node list =
  match l.Ir.body with
  | [] | [ _ ] -> [ Ir.Nloop l ]
  | body ->
      let groups = Graph.distribution_groups ~outer ~loop:l in
      if List.length groups <= 1 then [ Ir.Nloop l ]
      else
        let units = Array.of_list body in
        List.map
          (fun group ->
            Ir.Nloop
              {
                l with
                Ir.lid = Ir.fresh_id ();
                body = List.map (fun u -> units.(u)) group;
              })
          groups

(** One bottom-up fission pass over a node list. *)
let rec fission_nodes ~outer (nodes : Ir.node list) : Ir.node list =
  List.concat_map
    (fun n ->
      match n with
      | Ir.Ncomp _ | Ir.Ncall _ -> [ n ]
      | Ir.Nloop l ->
          let body = fission_nodes ~outer:(outer @ [ l ]) l.Ir.body in
          distribute ~outer { l with Ir.body = body })
    nodes

(** [run p] — one fission pass over the whole program. *)
let run (p : Ir.program) : Ir.program =
  { p with Ir.body = fission_nodes ~outer:[] p.Ir.body }

(** [run_fixpoint ?max_iters p] — iterate {!run} until the structure stops
    changing (compared via the canonical form). *)
let run_fixpoint ?(max_iters = 8) (p : Ir.program) : Ir.program =
  let rec go i p =
    if i >= max_iters then p
    else
      let p' = run p in
      if Ir.equal_structure p.Ir.body p'.Ir.body then p' else go (i + 1) p'
  in
  go 0 p

(** A program is maximally fissioned when re-running fission does not change
    it. *)
let is_maximal (p : Ir.program) : bool =
  Ir.equal_structure p.Ir.body (run p).Ir.body
