(** Loop-invariant code motion — an additional normalization criterion in
    the spirit of the paper's §6 discussion. Hoists unguarded computations
    whose value and destination are invariant in their innermost loop (and
    that are not accumulations), assuming non-zero-trip loops. Not part of
    the default pipeline; measured separately. *)

val run : Daisy_loopir.Ir.program -> Daisy_loopir.Ir.program * int
(** One bottom-up pass (hoisting cascades through perfectly nested
    invariant chains); returns the hoist count. *)
