(** Scalar expansion: turn loop-local scalar temporaries into arrays
    indexed by the enclosing loop's iterator — the transformation that
    unlocks maximal fission on CLOUDSC-style code (paper §5.1, Fig. 10).

    Requires an iterator-normalized program ({!Iter_norm.run}). *)

val run :
  Daisy_loopir.Ir.program ->
  Daisy_loopir.Ir.program * (string * string) list
(** Expand every eligible local scalar; returns the rewritten program and
    the [(scalar, new_array)] expansions performed. *)
