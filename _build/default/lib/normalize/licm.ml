(** Loop-invariant code motion as an additional normalization criterion.

    The paper's §6 opens "a research avenue in exploring normalization
    criteria"; hoisting loop-invariant computations is the natural third
    criterion after composition (fission) and permutation (stride): it
    removes redundant work {e and} shrinks loop bodies, which reduces the
    register pressure the CLOUDSC study fights.

    A computation is hoisted out of its innermost enclosing loop [L] when:
    - nothing it reads or writes varies with [L]'s iterator (subscripts,
      guard and [Vint]s are [L]-invariant, and it reads no container that
      any computation in [L]'s body writes with an [L]-varying subscript —
      conservatively: that [L]'s body writes at all, other than itself);
    - its own write is [L]-invariant (same cell every iteration), so
      executing it once preserves semantics {e provided the loop runs at
      least once} — the same non-zero-trip context assumption scalar
      expansion documents;
    - it is unguarded (a guarded hoist would change how often the guard's
      condition is evaluated — we keep the conservative line).

    The pass is {b not} part of the default pipeline (the paper's isn't
    either); the test suite validates it and it is available to recipes
    and drivers. *)

open Daisy_support
module Ir = Daisy_loopir.Ir
module Expr = Daisy_poly.Expr

(* does an expression mention the iterator? *)
let expr_varies iter e = Util.SSet.mem iter (Expr.free_vars e)

let access_varies iter (a : Ir.access) =
  List.exists (expr_varies iter) a.Ir.indices

let rec vexpr_varies iter (e : Ir.vexpr) =
  match e with
  | Ir.Vfloat _ | Ir.Vscalar _ -> false
  | Ir.Vint ie -> expr_varies iter ie
  | Ir.Vread a -> access_varies iter a
  | Ir.Vbin (_, a, b) -> vexpr_varies iter a || vexpr_varies iter b
  | Ir.Vneg a -> vexpr_varies iter a
  | Ir.Vcall (_, args) -> List.exists (vexpr_varies iter) args
  | Ir.Vselect (p, a, b) ->
      pred_varies iter p || vexpr_varies iter a || vexpr_varies iter b

and pred_varies iter (p : Ir.pred) =
  match p with
  | Ir.Pcmp (_, a, b) -> vexpr_varies iter a || vexpr_varies iter b
  | Ir.Pand (a, b) | Ir.Por (a, b) -> pred_varies iter a || pred_varies iter b
  | Ir.Pnot a -> pred_varies iter a

(* containers written by the body, except by the computation itself *)
let written_by_others (body : Ir.node list) (c : Ir.comp) : Util.SSet.t =
  List.fold_left
    (fun acc n ->
      let from_comp (c' : Ir.comp) acc =
        if c'.Ir.cid = c.Ir.cid then acc
        else
          let acc =
            List.fold_left
              (fun acc (a : Ir.access) -> Util.SSet.add a.Ir.array acc)
              acc (Ir.comp_array_writes c')
          in
          List.fold_left
            (fun acc s -> Util.SSet.add s acc)
            acc (Ir.comp_scalar_writes c')
      in
      match n with
      | Ir.Ncomp c' -> from_comp c' acc
      | Ir.Nloop l ->
          List.fold_left (fun acc c' -> from_comp c' acc) acc
            (Ir.comps_in l.Ir.body)
      | Ir.Ncall k ->
          List.fold_left
            (fun acc a -> Util.SSet.add a acc)
            acc k.Ir.writes_to)
    Util.SSet.empty body

let hoistable (l : Ir.loop) (c : Ir.comp) : bool =
  c.Ir.guard = None
  && (not (vexpr_varies l.Ir.iter c.Ir.rhs))
  && (match c.Ir.dest with
     | Ir.Dscalar _ -> true
     | Ir.Darray a -> not (access_varies l.Ir.iter a))
  &&
  (* nothing it reads may be written by the rest of the body *)
  let others = written_by_others l.Ir.body c in
  let reads =
    List.map (fun (a : Ir.access) -> a.Ir.array) (Ir.comp_array_reads c)
    @ Ir.comp_scalar_reads c
  in
  let own_write =
    match c.Ir.dest with Ir.Darray a -> a.Ir.array | Ir.Dscalar s -> s
  in
  List.for_all (fun r -> not (Util.SSet.mem r others)) reads
  (* and nobody else writes the same cell *)
  && (not (Util.SSet.mem own_write others))
  (* and it does not read its own destination: a self-read is an
     accumulation whose value changes every iteration even though nothing
     syntactically varies with the iterator *)
  && (not (List.mem own_write reads))
  &&
  (* no computation textually before this one reads the destination: at
     iteration 0 it would otherwise observe the hoisted value instead of
     the pre-loop one *)
  let rec no_earlier_reader nodes =
    match nodes with
    | [] -> true
    | n :: rest ->
        let comps =
          match n with
          | Ir.Ncomp c' -> [ c' ]
          | Ir.Nloop l' -> Ir.comps_in l'.Ir.body
          | Ir.Ncall _ -> []
        in
        if List.exists (fun (c' : Ir.comp) -> c'.Ir.cid = c.Ir.cid) comps then
          true
        else if
          List.exists
            (fun (c' : Ir.comp) ->
              List.exists
                (fun (a : Ir.access) -> String.equal a.Ir.array own_write)
                (Ir.comp_array_reads c')
              || List.mem own_write (Ir.comp_scalar_reads c'))
            comps
          || (match n with
             | Ir.Ncall k ->
                 List.mem own_write k.Ir.args
             | _ -> false)
        then false
        else no_earlier_reader rest
  in
  no_earlier_reader l.Ir.body

(** One bottom-up pass: hoist invariant computations out of their innermost
    loop. Returns the program and the number of hoisted computations. *)
let run (p : Ir.program) : Ir.program * int =
  let hoisted = ref 0 in
  let rec go nodes =
    List.concat_map
      (fun n ->
        match n with
        | Ir.Ncomp _ | Ir.Ncall _ -> [ n ]
        | Ir.Nloop l ->
            let body = go l.Ir.body in
            let l = { l with Ir.body } in
            let out, kept =
              List.partition
                (fun n ->
                  match n with
                  | Ir.Ncomp c -> hoistable l c
                  | _ -> false)
                l.Ir.body
            in
            if out = [] || kept = [] then [ Ir.Nloop l ]
            else begin
              hoisted := !hoisted + List.length out;
              out @ [ Ir.Nloop { l with Ir.lid = Ir.fresh_id (); body = kept } ]
            end)
      nodes
  in
  let body = go p.Ir.body in
  ({ p with Ir.body }, !hoisted)
