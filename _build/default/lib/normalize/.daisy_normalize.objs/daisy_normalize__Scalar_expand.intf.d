lib/normalize/scalar_expand.mli: Daisy_loopir
