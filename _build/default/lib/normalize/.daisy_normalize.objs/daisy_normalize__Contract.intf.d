lib/normalize/contract.mli: Daisy_loopir
