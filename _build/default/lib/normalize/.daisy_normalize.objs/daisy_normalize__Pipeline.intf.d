lib/normalize/pipeline.mli: Daisy_loopir Fmt Stride
