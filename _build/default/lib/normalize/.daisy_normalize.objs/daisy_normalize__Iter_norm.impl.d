lib/normalize/iter_norm.ml: Daisy_loopir Daisy_poly Daisy_support List Util
