lib/normalize/iter_norm.mli: Daisy_loopir
