lib/normalize/licm.mli: Daisy_loopir
