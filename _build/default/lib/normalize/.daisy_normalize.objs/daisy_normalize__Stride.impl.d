lib/normalize/stride.ml: Array Daisy_dependence Daisy_loopir Daisy_poly Daisy_support Float List Util
