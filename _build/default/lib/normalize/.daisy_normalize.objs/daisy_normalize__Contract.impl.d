lib/normalize/contract.ml: Daisy_loopir Daisy_poly Daisy_support Hashtbl List Option String Util
