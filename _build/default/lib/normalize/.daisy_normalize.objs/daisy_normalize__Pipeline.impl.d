lib/normalize/pipeline.ml: Daisy_loopir Daisy_support Fission Fmt Iter_norm List Scalar_expand Stride Util
