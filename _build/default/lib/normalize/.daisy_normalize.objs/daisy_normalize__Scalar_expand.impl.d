lib/normalize/scalar_expand.ml: Daisy_loopir Daisy_poly Daisy_support Hashtbl List Option Util
