lib/normalize/stride.mli: Daisy_loopir Daisy_support
