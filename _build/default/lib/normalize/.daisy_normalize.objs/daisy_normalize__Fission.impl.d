lib/normalize/fission.ml: Array Daisy_dependence Daisy_loopir List
