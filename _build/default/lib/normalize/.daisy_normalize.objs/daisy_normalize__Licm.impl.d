lib/normalize/licm.ml: Daisy_loopir Daisy_poly Daisy_support List String Util
