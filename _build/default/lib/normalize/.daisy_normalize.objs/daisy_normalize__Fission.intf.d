lib/normalize/fission.mli: Daisy_loopir
