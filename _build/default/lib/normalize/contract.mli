(** Array contraction — the inverse of scalar expansion: after
    producer-consumer fusion pulls an expanded temporary's producers and
    consumers back into one loop, the array contracts back to a scalar,
    removing its memory traffic. An extension beyond the paper's pipeline
    (its Fig. 10b keeps the arrays); measured in the ablation bench. *)

val run :
  Daisy_loopir.Ir.program ->
  Daisy_loopir.Ir.program * (string * string) list
(** Contract every eligible rank-1 local array; returns the rewritten
    program and the [(array, scalar)] contractions performed. *)
