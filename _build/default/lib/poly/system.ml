(** Conjunctions of affine equalities and inequalities, with a
    Fourier–Motzkin-based emptiness test and variable-bound extraction.

    This is the "isl-lite" the rest of the toolchain relies on. The emptiness
    test is exact over the rationals and strengthened for integers by
    coefficient-gcd tightening and gcd-divisibility tests on equalities;
    where integer reasoning remains incomplete the result errs on the side of
    "possibly non-empty", which is the conservative direction for dependence
    analysis (a spurious point only adds a spurious dependence). *)

open Daisy_support

type t = {
  eqs : Affine.t list;  (** each [a] means [a = 0] *)
  ineqs : Affine.t list;  (** each [a] means [a >= 0] *)
}

let empty_sys = { eqs = []; ineqs = [] }

let add_eq a t = { t with eqs = a :: t.eqs }
let add_ineq a t = { t with ineqs = a :: t.ineqs }

(** [ge a b] constrains [a >= b]. *)
let ge a b t = add_ineq (Affine.sub a b) t

(** [le a b] constrains [a <= b]. *)
let le a b t = add_ineq (Affine.sub b a) t

(** [lt a b] constrains [a < b], i.e. [a <= b - 1] over the integers. *)
let lt a b t = add_ineq (Affine.add (Affine.sub b a) (Affine.const (-1))) t

(** [gt a b] constrains [a > b]. *)
let gt a b t = lt b a t

let eq a b t = add_eq (Affine.sub a b) t

let conj a b = { eqs = a.eqs @ b.eqs; ineqs = a.ineqs @ b.ineqs }

let vars t =
  List.fold_left
    (fun acc a -> Util.SSet.union acc (Affine.vars a))
    Util.SSet.empty (t.eqs @ t.ineqs)

let rename f t =
  { eqs = List.map (Affine.rename f) t.eqs;
    ineqs = List.map (Affine.rename f) t.ineqs }

(* Integer tightening of an inequality a >= 0: divide by the gcd g of the
   variable coefficients and floor the constant: sum (c/g) x + floor(c0/g) >= 0
   is equivalent over the integers. Returns None if the (now constant)
   inequality is violated. *)
let tighten (a : Affine.t) : Affine.t option =
  match Affine.to_const a with
  | Some c -> if c >= 0 then None (* trivially true, drop *) else Some a
  | None ->
      let g = Affine.coeff_gcd a in
      if g <= 1 then Some a
      else
        let fdiv x y =
          let q = x / y and r = x mod y in
          if r <> 0 && (r < 0) <> (y < 0) then q - 1 else q
        in
        Some
          {
            Affine.terms = Util.SMap.map (fun c -> c / g) a.Affine.terms;
            const = fdiv a.Affine.const g;
          }

exception Infeasible

(* Check and simplify equalities:
   - constant equality must be 0;
   - gcd of coefficients must divide the constant (integer gcd test);
   - equalities with a unit-coefficient variable are used to substitute that
     variable away everywhere (exact over the integers). *)
let rec solve_eqs eqs ineqs =
  match eqs with
  | [] -> ([], ineqs)
  | a :: rest -> (
      match Affine.to_const a with
      | Some 0 -> solve_eqs rest ineqs
      | Some _ -> raise Infeasible
      | None ->
          let g = Affine.coeff_gcd a in
          if a.Affine.const mod g <> 0 then raise Infeasible
          else
            (* find a variable with coefficient +-1 *)
            let unit_var =
              Util.SMap.fold
                (fun v c acc ->
                  match acc with
                  | Some _ -> acc
                  | None -> if abs c = 1 then Some (v, c) else None)
                a.Affine.terms None
            in
            (match unit_var with
            | Some (v, c) ->
                (* c*v + r = 0  =>  v = -r/c; with |c| = 1, v = -c * r *)
                let r = { a with Affine.terms = Util.SMap.remove v a.Affine.terms } in
                let repl = Affine.scale (-c) r in
                let rest' = List.map (Affine.subst v repl) rest in
                let ineqs' = List.map (Affine.subst v repl) ineqs in
                solve_eqs rest' ineqs'
            | None ->
                (* keep as two inequalities *)
                solve_eqs rest (a :: Affine.neg a :: ineqs)))

(* Fourier–Motzkin elimination of variable [v] from inequalities. *)
let eliminate_var v ineqs =
  let lower, rest = List.partition (fun a -> Affine.coeff v a > 0) ineqs in
  let upper, neither = List.partition (fun a -> Affine.coeff v a < 0) rest in
  let combos =
    List.concat_map
      (fun lo ->
        let a = Affine.coeff v lo in
        List.map
          (fun up ->
            let b = -Affine.coeff v up in
            (* lo: a*v + f >= 0, up: -b*v + g >= 0 (a,b > 0)
               => b*f + a*g >= 0 after eliminating v *)
            Affine.add (Affine.scale b lo) (Affine.scale a up))
          upper)
      lower
  in
  let combos = List.map (fun a -> { a with Affine.terms = Util.SMap.remove v a.Affine.terms }) combos in
  combos @ neither

(* Process a list of inequalities: tighten each, detect constant violations. *)
let tighten_all ineqs =
  List.filter_map
    (fun a ->
      match Affine.to_const a with
      | Some c -> if c < 0 then raise Infeasible else None
      | None -> tighten a)
    ineqs

(** [is_empty t] is [true] when [t] has no rational solutions (and therefore
    no integer solutions), or when the gcd tests prove integer emptiness.
    [false] means "possibly non-empty". *)
let is_empty t =
  try
    let eqs_left, ineqs = solve_eqs t.eqs t.ineqs in
    assert (eqs_left = []);
    let ineqs = tighten_all ineqs in
    let vars =
      List.fold_left
        (fun acc a -> Util.SSet.union acc (Affine.vars a))
        Util.SSet.empty ineqs
    in
    let final =
      Util.SSet.fold
        (fun v ineqs -> tighten_all (eliminate_var v ineqs))
        vars ineqs
    in
    (* tighten_all raises Infeasible on violated constants; anything left is
       satisfiable over the rationals *)
    ignore final;
    false
  with Infeasible -> true

(** [const_bounds v t] is the best constant lower and upper bounds on [v]
    implied by [t] (over the rationals, tightened to integers), as
    [(lo, hi)] with [None] meaning unbounded. Assumes [t] non-empty. *)
let const_bounds v t =
  try
    (* keep equalities as inequality pairs so [v] is never substituted away *)
    let ineqs =
      t.ineqs @ List.concat_map (fun a -> [ a; Affine.neg a ]) t.eqs
    in
    let ineqs = tighten_all ineqs in
    let others = Util.SSet.remove v (
      List.fold_left (fun acc a -> Util.SSet.union acc (Affine.vars a))
        Util.SSet.empty ineqs) in
    let ineqs =
      Util.SSet.fold (fun u ineqs -> tighten_all (eliminate_var u ineqs)) others ineqs
    in
    (* remaining constraints mention only v (or are non-constant leftovers) *)
    let lo, hi =
      List.fold_left
        (fun (lo, hi) a ->
          let c = Affine.coeff v a in
          let k = a.Affine.const in
          if c > 0 then
            (* c*v + k >= 0 => v >= ceil(-k/c) *)
            let b = -k in
            let bound = if b >= 0 then (b + c - 1) / c else -((-b) / c) in
            let lo' = match lo with None -> Some bound | Some l -> Some (max l bound) in
            (lo', hi)
          else if c < 0 then
            (* c*v + k >= 0 => v <= floor(k/(-c)) *)
            let d = -c in
            let bound = if k >= 0 then k / d else -(((-k) + d - 1) / d) in
            let hi' = match hi with None -> Some bound | Some h -> Some (min h bound) in
            (lo, hi')
          else (lo, hi))
        (None, None) ineqs
    in
    (lo, hi)
  with Infeasible -> (Some 0, Some (-1))

(** Brute-force integer satisfiability over a bounding box — used by the
    property-based tests to validate {!is_empty}. *)
let has_point_in_box ~box t =
  let vars = Util.SSet.elements (vars t) in
  let rec go env = function
    | [] ->
        List.for_all (fun a -> Affine.eval env a = 0) t.eqs
        && List.for_all (fun a -> Affine.eval env a >= 0) t.ineqs
    | v :: rest ->
        let lo, hi = box in
        let rec try_val x = x <= hi && (go (Util.SMap.add v x env) rest || try_val (x + 1)) in
        try_val lo
  in
  go Util.SMap.empty vars

let pp ppf t =
  Fmt.pf ppf "{ %a%s%a }"
    (Fmt.list ~sep:(Fmt.any " and ") (fun ppf a -> Fmt.pf ppf "%a = 0" Affine.pp a))
    t.eqs
    (if t.eqs <> [] && t.ineqs <> [] then " and " else "")
    (Fmt.list ~sep:(Fmt.any " and ") (fun ppf a -> Fmt.pf ppf "%a >= 0" Affine.pp a))
    t.ineqs
