(** Symbolic integer expressions: loop bounds, array subscripts, strides.

    The dependence and normalization machinery mostly works on the affine
    restriction ({!Affine}); [min]/[max], division and modulo exist so that
    tiling and strip-mining can produce exact bounds. *)

type t =
  | Const of int
  | Var of string  (** loop iterator or symbolic parameter *)
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t  (** floor division *)
  | Mod of t * t  (** floor modulo *)
  | Neg of t
  | Min of t * t
  | Max of t * t

val equal : t -> t -> bool
val compare : t -> t -> int

(** {1 Smart constructors}

    All perform light constant folding so printed IR stays readable after
    repeated transformation. *)

val const : int -> t
val var : string -> t
val zero : t
val one : t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val div : t -> t -> t
(** Floor division. @raise Invalid_argument on a zero constant divisor. *)

val md : t -> t -> t
(** Floor modulo. @raise Invalid_argument on a zero constant divisor. *)

val neg : t -> t
val min_ : t -> t -> t
val max_ : t -> t -> t

(** {1 Queries and evaluation} *)

val free_vars : t -> Daisy_support.Util.SSet.t

val subst : t Daisy_support.Util.SMap.t -> t -> t
(** Simultaneous substitution of variables by expressions, re-folding
    constants. *)

val subst1 : string -> t -> t -> t
(** [subst1 v e' e] replaces [v] by [e'] in [e]. *)

val eval : int Daisy_support.Util.SMap.t -> t -> int
(** @raise Invalid_argument on unbound variables or division by zero. *)

val to_const : t -> int option
val is_const : t -> bool

(** {1 Printing} *)

val pp_prec : int -> t Fmt.t
(** Precedence-aware printer (0 = additive context, 2 = atom). *)

val pp : t Fmt.t
val to_string : t -> string
