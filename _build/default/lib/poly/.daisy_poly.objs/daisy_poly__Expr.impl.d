lib/poly/expr.ml: Daisy_support Fmt Printf Stdlib String Util
