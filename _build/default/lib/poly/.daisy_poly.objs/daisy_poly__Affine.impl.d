lib/poly/affine.ml: Daisy_support Expr Fmt Int Option Printf Util
