lib/poly/affine.mli: Daisy_support Expr Fmt
