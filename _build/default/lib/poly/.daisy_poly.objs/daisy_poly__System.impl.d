lib/poly/system.ml: Affine Daisy_support Fmt List Util
