lib/poly/system.mli: Affine Daisy_support Fmt
