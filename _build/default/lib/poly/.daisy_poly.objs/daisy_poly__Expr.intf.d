lib/poly/expr.mli: Daisy_support Fmt
