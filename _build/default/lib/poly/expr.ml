(** Symbolic integer expressions.

    These appear as loop bounds, array subscripts and strides throughout the
    toolchain. The normalization and dependence machinery mostly works on the
    affine restriction ({!Affine}), but the full language keeps [min]/[max],
    division and modulo so that tiling and strip-mining can produce exact
    bounds. *)

open Daisy_support

type t =
  | Const of int
  | Var of string  (** loop iterator or symbolic parameter *)
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t  (** floor division; divisor must evaluate non-zero *)
  | Mod of t * t
  | Neg of t
  | Min of t * t
  | Max of t * t

let rec equal a b =
  match (a, b) with
  | Const x, Const y -> x = y
  | Var x, Var y -> String.equal x y
  | Add (a1, a2), Add (b1, b2)
  | Sub (a1, a2), Sub (b1, b2)
  | Mul (a1, a2), Mul (b1, b2)
  | Div (a1, a2), Div (b1, b2)
  | Mod (a1, a2), Mod (b1, b2)
  | Min (a1, a2), Min (b1, b2)
  | Max (a1, a2), Max (b1, b2) -> equal a1 b1 && equal a2 b2
  | Neg a1, Neg b1 -> equal a1 b1
  | _ -> false

let compare = Stdlib.compare

(* Smart constructors perform light constant folding so printed IR stays
   readable after repeated transformation. *)

let const n = Const n
let var v = Var v
let zero = Const 0
let one = Const 1

let rec add a b =
  match (a, b) with
  | Const x, Const y -> Const (x + y)
  | Const 0, e | e, Const 0 -> e
  | Add (e, Const x), Const y | Const y, Add (e, Const x) -> add e (Const (x + y))
  | _ -> Add (a, b)

let rec sub a b =
  match (a, b) with
  | Const x, Const y -> Const (x - y)
  | e, Const 0 -> e
  | Sub (e, Const x), Const y -> sub e (Const (x + y))
  | _ when equal a b -> Const 0
  | _ -> Sub (a, b)

let mul a b =
  match (a, b) with
  | Const x, Const y -> Const (x * y)
  | Const 0, _ | _, Const 0 -> Const 0
  | Const 1, e | e, Const 1 -> e
  | _ -> Mul (a, b)

let div a b =
  match (a, b) with
  | _, Const 0 -> invalid_arg "Expr.div: division by zero"
  | Const x, Const y ->
      (* floor division *)
      let q = x / y and r = x mod y in
      Const (if r <> 0 && (r < 0) <> (y < 0) then q - 1 else q)
  | e, Const 1 -> e
  | _ -> Div (a, b)

let md a b =
  match (a, b) with
  | _, Const 0 -> invalid_arg "Expr.md: modulo by zero"
  | Const x, Const y ->
      let r = x mod y in
      Const (if r <> 0 && (r < 0) <> (y < 0) then r + y else r)
  | _, Const 1 -> Const 0
  | _ -> Mod (a, b)

let neg = function
  | Const x -> Const (-x)
  | Neg e -> e
  | e -> Neg e

let min_ a b =
  match (a, b) with
  | Const x, Const y -> Const (min x y)
  | _ when equal a b -> a
  | _ -> Min (a, b)

let max_ a b =
  match (a, b) with
  | Const x, Const y -> Const (max x y)
  | _ when equal a b -> a
  | _ -> Max (a, b)

let rec free_vars = function
  | Const _ -> Util.SSet.empty
  | Var v -> Util.SSet.singleton v
  | Neg e -> free_vars e
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) | Mod (a, b)
  | Min (a, b) | Max (a, b) ->
      Util.SSet.union (free_vars a) (free_vars b)

(** [subst env e] replaces variables by expressions, re-folding constants. *)
let rec subst env e =
  match e with
  | Const _ -> e
  | Var v -> ( match Util.SMap.find_opt v env with Some e' -> e' | None -> e)
  | Add (a, b) -> add (subst env a) (subst env b)
  | Sub (a, b) -> sub (subst env a) (subst env b)
  | Mul (a, b) -> mul (subst env a) (subst env b)
  | Div (a, b) -> div (subst env a) (subst env b)
  | Mod (a, b) -> md (subst env a) (subst env b)
  | Neg a -> neg (subst env a)
  | Min (a, b) -> min_ (subst env a) (subst env b)
  | Max (a, b) -> max_ (subst env a) (subst env b)

let subst1 v e' e = subst (Util.SMap.singleton v e') e

(** [eval env e] evaluates under an integer environment; raises
    [Not_found]-style failure on unbound variables. *)
let rec eval env e =
  match e with
  | Const n -> n
  | Var v -> (
      match Util.SMap.find_opt v env with
      | Some n -> n
      | None -> invalid_arg (Printf.sprintf "Expr.eval: unbound variable %s" v))
  | Add (a, b) -> eval env a + eval env b
  | Sub (a, b) -> eval env a - eval env b
  | Mul (a, b) -> eval env a * eval env b
  | Div (a, b) ->
      let x = eval env a and y = eval env b in
      if y = 0 then invalid_arg "Expr.eval: division by zero"
      else
        let q = x / y and r = x mod y in
        if r <> 0 && (r < 0) <> (y < 0) then q - 1 else q
  | Mod (a, b) ->
      let x = eval env a and y = eval env b in
      if y = 0 then invalid_arg "Expr.eval: modulo by zero"
      else
        let r = x mod y in
        if r <> 0 && (r < 0) <> (y < 0) then r + y else r
  | Neg a -> -eval env a
  | Min (a, b) -> min (eval env a) (eval env b)
  | Max (a, b) -> max (eval env a) (eval env b)

let to_const = function Const n -> Some n | _ -> None

let is_const e = to_const e <> None

(* Precedence-aware printer: 0 = additive, 1 = multiplicative, 2 = atom. *)
let rec pp_prec prec ppf e =
  let paren p body =
    if prec > p then Fmt.pf ppf "(%t)" body else body ppf
  in
  match e with
  | Const n -> Fmt.int ppf n
  | Var v -> Fmt.string ppf v
  | Add (a, b) -> paren 0 (fun ppf -> Fmt.pf ppf "%a + %a" (pp_prec 0) a (pp_prec 1) b)
  | Sub (a, b) -> paren 0 (fun ppf -> Fmt.pf ppf "%a - %a" (pp_prec 0) a (pp_prec 1) b)
  | Mul (a, b) -> paren 1 (fun ppf -> Fmt.pf ppf "%a * %a" (pp_prec 1) a (pp_prec 2) b)
  | Div (a, b) -> paren 1 (fun ppf -> Fmt.pf ppf "%a / %a" (pp_prec 1) a (pp_prec 2) b)
  | Mod (a, b) -> paren 1 (fun ppf -> Fmt.pf ppf "%a %% %a" (pp_prec 1) a (pp_prec 2) b)
  | Neg a -> paren 1 (fun ppf -> Fmt.pf ppf "-%a" (pp_prec 2) a)
  | Min (a, b) -> Fmt.pf ppf "min(%a, %a)" (pp_prec 0) a (pp_prec 0) b
  | Max (a, b) -> Fmt.pf ppf "max(%a, %a)" (pp_prec 0) a (pp_prec 0) b

let pp = pp_prec 0
let to_string e = Fmt.str "%a" pp e
