(** Conjunctions of affine equalities and inequalities with a
    Fourier–Motzkin-based emptiness test — the "isl-lite" the dependence
    analysis relies on.

    The emptiness test is exact over the rationals and strengthened for
    integers by coefficient-gcd tightening and gcd-divisibility tests on
    equalities. Where integer reasoning remains incomplete the answer errs
    toward "possibly non-empty", the conservative direction for dependence
    analysis. *)

type t = {
  eqs : Affine.t list;  (** each [a] constrains [a = 0] *)
  ineqs : Affine.t list;  (** each [a] constrains [a >= 0] *)
}

val empty_sys : t
(** The trivially satisfiable system. *)

(** {1 Building constraints} *)

val add_eq : Affine.t -> t -> t
val add_ineq : Affine.t -> t -> t
val ge : Affine.t -> Affine.t -> t -> t
val le : Affine.t -> Affine.t -> t -> t

val lt : Affine.t -> Affine.t -> t -> t
(** Strict inequality over the integers ([a <= b - 1]). *)

val gt : Affine.t -> Affine.t -> t -> t
val eq : Affine.t -> Affine.t -> t -> t
val conj : t -> t -> t

val vars : t -> Daisy_support.Util.SSet.t
val rename : (string -> string) -> t -> t

(** {1 Solving} *)

val is_empty : t -> bool
(** [true] means definitely no integer solutions; [false] means "possibly
    non-empty". *)

val const_bounds : string -> t -> int option * int option
(** Best constant lower/upper bounds on a variable implied by the system
    ([None] = unbounded in that direction). *)

val has_point_in_box : box:int * int -> t -> bool
(** Brute-force integer satisfiability with every variable restricted to
    the inclusive box — used by property tests to validate {!is_empty}. *)

val pp : t Fmt.t
