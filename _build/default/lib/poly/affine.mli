(** Affine forms [sum_i c_i * x_i + c0] with integer coefficients — the
    canonical representation for dependence testing and stride analysis. *)

type t = {
  terms : int Daisy_support.Util.SMap.t;  (** variable -> coefficient *)
  const : int;
}

val const : int -> t
val zero : t

val var : ?coeff:int -> string -> t

val is_const : t -> bool
val to_const : t -> int option

val coeff : string -> t -> int
(** Coefficient of a variable (0 when absent). *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : int -> t -> t

val equal : t -> t -> bool
val compare : t -> t -> int

val vars : t -> Daisy_support.Util.SSet.t

val rename : (string -> string) -> t -> t
(** [rename f t] renames every variable; [f] must be injective on the
    variables of [t]. *)

val subst : string -> t -> t -> t
(** [subst v a t] replaces variable [v] by the affine form [a]. *)

val of_expr : Expr.t -> t option
(** Partial lifting from {!Expr}; [None] on non-affine constructs
    ([min]/[max], variable products, inexact division, modulo) — exactly
    the condition that makes polyhedral lifting give up on a loop nest. *)

val to_expr : t -> Expr.t

val eval : int Daisy_support.Util.SMap.t -> t -> int

val coeff_gcd : t -> int
(** gcd of all variable coefficients (0 if there are none). *)

val pp : t Fmt.t
val to_string : t -> string
