(** Affine forms: [sum_i c_i * x_i + c0] with integer coefficients.

    The canonical data structure for dependence testing and stride analysis.
    [of_expr] is a partial lifting from {!Expr} — it fails on [min]/[max],
    non-constant multiplication, division and modulo, which is exactly the
    "non-affine" condition that makes the paper's lifting give up on a loop
    nest (see the correlation/covariance discussion in §4.1). *)

open Daisy_support

type t = { terms : int Util.SMap.t; const : int }

let const c = { terms = Util.SMap.empty; const = c }
let zero = const 0
let var ?(coeff = 1) v =
  if coeff = 0 then zero
  else { terms = Util.SMap.singleton v coeff; const = 0 }

let is_const t = Util.SMap.is_empty t.terms
let to_const t = if is_const t then Some t.const else None

let coeff v t = match Util.SMap.find_opt v t.terms with Some c -> c | None -> 0

let normalize terms = Util.SMap.filter (fun _ c -> c <> 0) terms

let add a b =
  {
    terms =
      normalize
        (Util.SMap.union (fun _ ca cb -> Some (ca + cb)) a.terms b.terms);
    const = a.const + b.const;
  }

let scale k a =
  if k = 0 then zero
  else { terms = Util.SMap.map (fun c -> k * c) a.terms; const = k * a.const }

let neg a = scale (-1) a
let sub a b = add a (neg b)

let equal a b =
  a.const = b.const && Util.SMap.equal Int.equal a.terms b.terms

let compare a b =
  let c = Int.compare a.const b.const in
  if c <> 0 then c else Util.SMap.compare Int.compare a.terms b.terms

let vars t = Util.SMap.fold (fun v _ acc -> Util.SSet.add v acc) t.terms Util.SSet.empty

(** [rename f t] renames every variable through [f]; [f] must be injective on
    the variables of [t]. *)
let rename f t =
  {
    t with
    terms =
      Util.SMap.fold
        (fun v c acc -> Util.SMap.add (f v) c acc)
        t.terms Util.SMap.empty;
  }

(** [subst v a t] replaces variable [v] by the affine form [a] in [t]. *)
let subst v a t =
  match Util.SMap.find_opt v t.terms with
  | None -> t
  | Some c ->
      let without = { t with terms = Util.SMap.remove v t.terms } in
      add without (scale c a)

let rec of_expr (e : Expr.t) : t option =
  match e with
  | Expr.Const n -> Some (const n)
  | Expr.Var v -> Some (var v)
  | Add (a, b) -> (
      match (of_expr a, of_expr b) with
      | Some a, Some b -> Some (add a b)
      | _ -> None)
  | Sub (a, b) -> (
      match (of_expr a, of_expr b) with
      | Some a, Some b -> Some (sub a b)
      | _ -> None)
  | Neg a -> Option.map neg (of_expr a)
  | Mul (a, b) -> (
      match (of_expr a, of_expr b) with
      | Some a, Some b -> (
          match (to_const a, to_const b) with
          | Some k, _ -> Some (scale k b)
          | _, Some k -> Some (scale k a)
          | None, None -> None)
      | _ -> None)
  | Div (a, b) -> (
      (* exact constant division only *)
      match (of_expr a, of_expr b) with
      | Some a, Some b -> (
          match to_const b with
          | Some k
            when k <> 0 && a.const mod k = 0
                 && Util.SMap.for_all (fun _ c -> c mod k = 0) a.terms ->
              Some (scale 1 { terms = Util.SMap.map (fun c -> c / k) a.terms;
                              const = a.const / k })
          | _ -> None)
      | _ -> None)
  | Mod _ | Min _ | Max _ -> None

let to_expr t =
  Util.SMap.fold
    (fun v c acc -> Expr.add acc (Expr.mul (Expr.const c) (Expr.var v)))
    t.terms (Expr.const t.const)

let eval env t =
  Util.SMap.fold
    (fun v c acc ->
      match Util.SMap.find_opt v env with
      | Some x -> acc + (c * x)
      | None -> invalid_arg (Printf.sprintf "Affine.eval: unbound variable %s" v))
    t.terms t.const

(** gcd of all variable coefficients (0 if there are none). *)
let coeff_gcd t = Util.SMap.fold (fun _ c acc -> Util.gcd c acc) t.terms 0

let pp ppf t =
  if is_const t then Fmt.int ppf t.const
  else begin
    let first = ref true in
    Util.SMap.iter
      (fun v c ->
        if !first then begin
          first := false;
          if c = 1 then Fmt.string ppf v
          else if c = -1 then Fmt.pf ppf "-%s" v
          else Fmt.pf ppf "%d*%s" c v
        end
        else if c = 1 then Fmt.pf ppf " + %s" v
        else if c = -1 then Fmt.pf ppf " - %s" v
        else if c > 0 then Fmt.pf ppf " + %d*%s" c v
        else Fmt.pf ppf " - %d*%s" (-c) v)
      t.terms;
    if t.const > 0 then Fmt.pf ppf " + %d" t.const
    else if t.const < 0 then Fmt.pf ppf " - %d" (-t.const)
  end

let to_string t = Fmt.str "%a" pp t
