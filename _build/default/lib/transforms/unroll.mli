(** Loop unrolling with body materialization (replication + remainder
    loop). Always legal; requires a normalized loop. *)

val materialize :
  Daisy_loopir.Ir.loop -> factor:int -> (Daisy_loopir.Ir.node list, string) result

val materialize_marked : Daisy_loopir.Ir.program -> Daisy_loopir.Ir.program
(** Replace the unroll {e attribute} of marked innermost loops with the
    explicit unrolled form. *)
