(** Scheduling transformations on loop nests: interchange, tiling,
    unrolling, parallel/vector marking.

    Each transformation validates legality via the dependence library and
    returns [Error reason] instead of producing an illegal nest. All
    transformations assume iterator-normalized input (lo = 0, step = 1) —
    the normalization pipeline guarantees this. *)

open Daisy_support
module Ir = Daisy_loopir.Ir
module Expr = Daisy_poly.Expr
module Legality = Daisy_dependence.Legality
module Test = Daisy_dependence.Test
module Stride = Daisy_normalize.Stride

type error = string

let errorf fmt = Fmt.kstr (fun m -> Error m) fmt

(* ------------------------------------------------------------------ *)
(* Interchange                                                          *)

(** [interchange ~outer nest perm] reorders the perfect band of [nest]
    according to [perm] (new position -> old band position). *)
let interchange ~outer (nest : Ir.loop) (perm : int array) :
    (Ir.loop, error) result =
  let band, body = Legality.perfect_band nest in
  let n = List.length band in
  if Array.length perm <> n then
    errorf "interchange: permutation has %d entries for a band of %d"
      (Array.length perm) n
  else begin
    let sorted = Array.copy perm in
    Array.sort compare sorted;
    if sorted <> Array.init n (fun i -> i) then
      errorf "interchange: not a permutation"
    else
      let vectors = Legality.band_dep_vectors ~outer band body in
      if not (Legality.legal_permutation vectors perm) then
        errorf "interchange: dependence violated"
      else
        let band_arr = Array.of_list band in
        let order = Array.to_list (Array.map (fun i -> band_arr.(i)) perm) in
        if not (Stride.expressible order) then
          errorf "interchange: bounds not expressible in this order"
        else Ok (Stride.rebuild_band order body)
  end

(* ------------------------------------------------------------------ *)
(* Tiling                                                               *)

(** Fully-permutable check: tiling a contiguous sub-band is legal iff every
    dependence vector is component-wise non-negative on that sub-band. *)
let fully_permutable vectors ~from_ ~len =
  List.for_all
    (fun v ->
      let sub = Util.take len (Util.drop from_ v) in
      List.for_all (fun d -> d <> Test.Gt) sub)
    vectors

(** [tile ~outer nest specs] tiles the perfect band of [nest].
    [specs] gives a tile size per band position ([0] = untiled). The tiled
    nest has all tile loops outside all point loops:
    [for it1_t .. for itk_t { for it1 in window .. for itk in window }]. *)
let tile ~outer (nest : Ir.loop) (specs : (int * int) list) :
    (Ir.loop, error) result =
  let band, body = Legality.perfect_band nest in
  let n = List.length band in
  let sizes = Array.make n 0 in
  match
    List.iter
      (fun (pos, ts) ->
        if pos < 0 || pos >= n then failwith "position out of range";
        if ts < 2 then failwith "tile size must be >= 2";
        sizes.(pos) <- ts)
      specs
  with
  | exception Failure m -> errorf "tile: %s" m
  | () ->
      let tiled_positions =
        List.filter (fun p -> sizes.(p) > 0) (List.init n (fun i -> i))
      in
      if tiled_positions = [] then Ok nest
      else begin
        let from_ = List.hd tiled_positions in
        let until = List.nth tiled_positions (List.length tiled_positions - 1) in
        let vectors = Legality.band_dep_vectors ~outer band body in
        (* the band segment spanning all tiled loops must be fully
           permutable, because tile loops move outside point loops *)
        if not (fully_permutable vectors ~from_ ~len:(until - from_ + 1)) then
          errorf "tile: band is not fully permutable"
        else begin
          let band_arr = Array.of_list band in
          (* bounds of point loops reference tile iterators; loops with
             iterator-dependent bounds cannot be tiled this way *)
          let ok_bounds =
            List.for_all
              (fun p ->
                let l = band_arr.(p) in
                Expr.equal l.Ir.lo Expr.zero && l.Ir.step = 1)
              tiled_positions
          in
          if not ok_bounds then errorf "tile: loops must be normalized"
          else begin
            let taken =
              ref
                (Util.SSet.of_list
                   (List.map (fun (l : Ir.loop) -> l.Ir.iter) band))
            in
            (* build tile headers and point headers *)
            let tile_loops = ref [] and point_loops = ref [] in
            Array.iteri
              (fun p (l : Ir.loop) ->
                if sizes.(p) = 0 then point_loops := !point_loops @ [ l ]
                else begin
                  let ts = sizes.(p) in
                  let tname = Util.fresh_name (l.Ir.iter ^ "_t") !taken in
                  taken := Util.SSet.add tname !taken;
                  let tile_hi = Expr.div l.Ir.hi (Expr.const ts) in
                  let tl =
                    Ir.mk_loop ~iter:tname ~lo:Expr.zero ~hi:tile_hi []
                  in
                  let point_lo =
                    Expr.mul (Expr.const ts) (Expr.var tname)
                  in
                  let point_hi =
                    Expr.min_ l.Ir.hi
                      (Expr.add point_lo (Expr.const (ts - 1)))
                  in
                  let pl =
                    { l with Ir.lid = Ir.fresh_id (); lo = point_lo; hi = point_hi }
                  in
                  tile_loops := !tile_loops @ [ tl ];
                  point_loops := !point_loops @ [ pl ]
                end)
              band_arr;
            let order = !tile_loops @ !point_loops in
            Ok (Stride.rebuild_band order body)
          end
        end
      end

(* ------------------------------------------------------------------ *)
(* Attribute marking                                                    *)

let set_attrs_at ~(pos : int) (nest : Ir.loop) (f : Ir.attrs -> Ir.attrs) :
    (Ir.loop, error) result =
  let band, body = Legality.perfect_band nest in
  if pos < 0 || pos >= List.length band then
    errorf "position %d out of band range %d" pos (List.length band)
  else
    let band =
      List.mapi
        (fun i (l : Ir.loop) ->
          if i = pos then { l with Ir.attrs = f l.Ir.attrs } else l)
        band
    in
    Ok (Stride.rebuild_band band body)

(** [parallelize ~outer nest pos] marks band position [pos] parallel when it
    carries no dependence; when [allow_atomic] (default), falls back to
    atomic-reduction parallelism when all carried dependences are reduction
    self-updates. *)
let parallelize ?(allow_atomic = true) ~outer (nest : Ir.loop) (pos : int) :
    (Ir.loop, error) result =
  let band, body = Legality.perfect_band nest in
  if pos < 0 || pos >= List.length band then
    errorf "parallelize: position %d out of range" pos
  else begin
    let vectors = Legality.band_dep_vectors ~outer band body in
    let parallel = Legality.parallel_positions vectors (List.length band) in
    if parallel.(pos) then
      set_attrs_at ~pos nest (fun a -> { a with Ir.parallel = true })
    else
      let l = List.nth band pos in
      let outer_of_l = outer @ Util.take pos band in
      if allow_atomic && Legality.carried_only_by_reductions ~outer:outer_of_l l
      then
        set_attrs_at ~pos nest (fun a ->
            { a with Ir.parallel = true; atomic = true })
      else errorf "parallelize: loop %s carries a dependence" l.Ir.iter
  end

(** [vectorize ~outer nest] marks the innermost band loop vectorized when it
    carries no dependence (reductions vectorize too: hardware reduction). *)
let vectorize ~outer (nest : Ir.loop) : (Ir.loop, error) result =
  let band, body = Legality.perfect_band nest in
  let pos = List.length band - 1 in
  let vectors = Legality.band_dep_vectors ~outer band body in
  let parallel = Legality.parallel_positions vectors (List.length band) in
  let l = List.nth band pos in
  let outer_of_l = outer @ Util.take pos band in
  if
    parallel.(pos)
    || Legality.carried_only_by_reductions ~outer:outer_of_l l
  then set_attrs_at ~pos nest (fun a -> { a with Ir.vectorized = true })
  else errorf "vectorize: innermost loop %s carries a dependence" l.Ir.iter

(** [unroll nest pos factor] — unrolling is always legal; it is recorded as
    an attribute the machine model interprets as extra ILP. *)
let unroll (nest : Ir.loop) (pos : int) (factor : int) :
    (Ir.loop, error) result =
  if factor < 2 then errorf "unroll: factor must be >= 2"
  else set_attrs_at ~pos nest (fun a -> { a with Ir.unroll = factor })
