(** Loop fusion.

    Two flavours are used by the schedulers:
    - {!fuse_producer_consumer}: the CLOUDSC optimization recipe (paper
      §5.1) — iteratively fuse adjacent loop nests connected by a
      producer-consumer array relation, shortening the lifetime of
      expanded temporaries and reducing L1 traffic.
    - {!fuse_greedy}: the Polly-like maximal fusion — fuse any legal
      adjacent pair.

    Fusing [for i ...: B1; for j ...: B2] (equal normalized ranges) is legal
    iff no conflict exists between an instance [B1@i] and an instance
    [B2@j] with [i > j]: those are exactly the pairs fusion reorders. *)

open Daisy_support
module Ir = Daisy_loopir.Ir
module Expr = Daisy_poly.Expr
module Test = Daisy_dependence.Test

type error = string

(** [fuse ~outer l1 l2] — fuse two adjacent normalized loops with equal
    ranges. *)
let fuse ~(outer : Ir.loop list) (l1 : Ir.loop) (l2 : Ir.loop) :
    (Ir.loop, error) result =
  if not (Expr.equal l1.Ir.lo l2.Ir.lo && Expr.equal l1.Ir.hi l2.Ir.hi
          && l1.Ir.step = l2.Ir.step) then
    Error "fuse: loop ranges differ"
  else begin
    (* alpha-rename l2's iterator to l1's *)
    let body2 =
      if String.equal l1.Ir.iter l2.Ir.iter then l2.Ir.body
      else
        Ir.subst_idx_nodes
          (Util.SMap.singleton l2.Ir.iter (Expr.var l1.Ir.iter))
          l2.Ir.body
    in
    let fused = { l1 with Ir.lid = Ir.fresh_id (); body = l1.Ir.body @ body2 } in
    (* legality: no conflict B1@i, B2@j with i > j *)
    let comps1 = Ir.comps_with_context l1.Ir.body in
    let comps2 = Ir.comps_with_context body2 in
    let common = outer @ [ fused ] in
    let n_outer = List.length outer in
    let violated =
      List.exists
        (fun (ictx, ci) ->
          List.exists
            (fun (jctx, cj) ->
              let src_ctx = common @ ictx and dst_ctx = common @ jctx in
              let vs =
                Test.comp_directions ~common (src_ctx, ci) (dst_ctx, cj)
              in
              List.exists
                (fun v ->
                  List.for_all (fun d -> d = Test.Eq) (Util.take n_outer v)
                  && List.nth v n_outer = Test.Gt)
                vs)
            comps2)
        comps1
    in
    if violated then Error "fuse: dependence violated"
    else Ok fused
  end

(** [l2 consumes from l1] — some array written in [l1] is read in [l2]. *)
let producer_consumer (l1 : Ir.loop) (l2 : Ir.loop) : bool =
  let written =
    List.map (fun (a : Ir.access) -> a.Ir.array)
      (Ir.node_array_writes (Ir.Nloop l1))
  in
  List.exists
    (fun (a : Ir.access) -> List.mem a.Ir.array written)
    (Ir.node_array_reads (Ir.Nloop l2))

(** One fusion sweep over a node list: try to fuse each adjacent pair of
    loops (optionally only producer-consumer pairs, optionally capped at
    [max_comps] computations per fused body — fusing further would recreate
    the register-pressure problem fission just solved); repeat until no
    pair fuses. Returns the new list and the number of fusions performed. *)
let fuse_adjacent ?(max_comps = max_int) ~outer
    ~(only_producer_consumer : bool) (nodes : Ir.node list) :
    Ir.node list * int =
  let count = ref 0 in
  let small (l1 : Ir.loop) (l2 : Ir.loop) =
    List.length (Ir.comps_in l1.Ir.body) + List.length (Ir.comps_in l2.Ir.body)
    <= max_comps
  in
  let rec sweep nodes =
    match nodes with
    | Ir.Nloop l1 :: Ir.Nloop l2 :: rest
      when ((not only_producer_consumer) || producer_consumer l1 l2)
           && small l1 l2 -> (
        match fuse ~outer l1 l2 with
        | Ok fused ->
            incr count;
            sweep (Ir.Nloop fused :: rest)
        | Error _ ->
            let rest' = sweep (Ir.Nloop l2 :: rest) in
            Ir.Nloop l1 :: rest')
    | n :: rest -> n :: sweep rest
    | [] -> []
  in
  let rec fixpoint nodes =
    let before = !count in
    let nodes = sweep nodes in
    if !count > before then fixpoint nodes else nodes
  in
  let nodes = fixpoint nodes in
  (nodes, !count)

(** The CLOUDSC recipe: fuse one-to-one producer-consumer loop nest
    relations at every level of the program, keeping bodies below
    [max_comps] computations. *)
let fuse_producer_consumer ?max_comps (p : Ir.program) : Ir.program * int =
  let total = ref 0 in
  let rec go ~outer nodes =
    let nodes =
      List.map
        (fun n ->
          match n with
          | Ir.Nloop l ->
              Ir.Nloop { l with Ir.body = go ~outer:(outer @ [ l ]) l.Ir.body }
          | other -> other)
        nodes
    in
    let nodes, c =
      fuse_adjacent ?max_comps ~outer ~only_producer_consumer:true nodes
    in
    total := !total + c;
    nodes
  in
  let body = go ~outer:[] p.Ir.body in
  ({ p with Ir.body }, !total)

(** Polly-like greedy maximal fusion at the top level. *)
let fuse_greedy (p : Ir.program) : Ir.program * int =
  let body, c = fuse_adjacent ~outer:[] ~only_producer_consumer:false p.Ir.body in
  ({ p with Ir.body }, c)
