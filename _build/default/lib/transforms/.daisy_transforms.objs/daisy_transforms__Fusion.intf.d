lib/transforms/fusion.mli: Daisy_loopir
