lib/transforms/loop_transforms.ml: Array Daisy_dependence Daisy_loopir Daisy_normalize Daisy_poly Daisy_support Fmt List Util
