lib/transforms/unroll.mli: Daisy_loopir
