lib/transforms/unroll.ml: Daisy_loopir Daisy_poly Daisy_support List Util
