lib/transforms/loop_transforms.mli: Daisy_dependence Daisy_loopir
