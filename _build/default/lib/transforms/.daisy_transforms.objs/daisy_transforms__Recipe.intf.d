lib/transforms/recipe.mli: Daisy_loopir Daisy_support Fmt
