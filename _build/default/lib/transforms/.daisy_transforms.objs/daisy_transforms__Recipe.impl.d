lib/transforms/recipe.ml: Array Daisy_loopir Daisy_support Fmt List Loop_transforms Rng Util
