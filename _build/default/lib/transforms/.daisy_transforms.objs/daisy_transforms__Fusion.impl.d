lib/transforms/fusion.ml: Daisy_dependence Daisy_loopir Daisy_poly Daisy_support List String Util
