(** Loop fusion: the CLOUDSC producer-consumer recipe (paper §5.1) and the
    Polly-like greedy maximal fusion. *)

type error = string

val fuse :
  outer:Daisy_loopir.Ir.loop list ->
  Daisy_loopir.Ir.loop ->
  Daisy_loopir.Ir.loop ->
  (Daisy_loopir.Ir.loop, error) result
(** Fuse two adjacent normalized loops with equal ranges; rejected when a
    conflict exists between an instance of the first body and an {e
    earlier} iteration of the second. *)

val producer_consumer : Daisy_loopir.Ir.loop -> Daisy_loopir.Ir.loop -> bool
(** Does the second loop read an array the first writes? *)

val fuse_adjacent :
  ?max_comps:int ->
  outer:Daisy_loopir.Ir.loop list ->
  only_producer_consumer:bool ->
  Daisy_loopir.Ir.node list ->
  Daisy_loopir.Ir.node list * int
(** One fusion sweep to fixpoint over a node list; [max_comps] caps fused
    body sizes so fusion does not recreate the register pressure fission
    just removed. *)

val fuse_producer_consumer :
  ?max_comps:int -> Daisy_loopir.Ir.program -> Daisy_loopir.Ir.program * int
(** The CLOUDSC recipe at every nesting level. *)

val fuse_greedy : Daisy_loopir.Ir.program -> Daisy_loopir.Ir.program * int
(** Polly-like maximal fusion at the top level. *)
