(** Loop unrolling with body materialization.

    {!Loop_transforms.unroll} only marks a loop with an unroll attribute
    (which the machine model prices as ILP + register pressure); this
    module performs the textbook transformation itself — replicating the
    body [factor] times plus a remainder loop — so the interpreter and the
    trace simulator can observe the unrolled form directly:

    {v
    for i in 0 .. T-1 { B(i) }
    ==>
    for iu in 0 .. T/f - 1 { B(f*iu); B(f*iu + 1); ... B(f*iu + f-1) }
    for i in f*(T/f) .. T-1 { B(i) }          (remainder)
    v}

    Always legal (iteration order is preserved). Requires a normalized
    loop (lo = 0, step 1). *)

open Daisy_support
module Ir = Daisy_loopir.Ir
module Expr = Daisy_poly.Expr

(** [materialize l ~factor] — returns the replacement nodes (main unrolled
    loop and, unless the trip count is known to divide evenly, a remainder
    loop). *)
let materialize (l : Ir.loop) ~(factor : int) : (Ir.node list, string) result =
  if factor < 2 then Error "unroll factor must be >= 2"
  else if not (Expr.equal l.Ir.lo Expr.zero && l.Ir.step = 1) then
    Error "unroll materialization requires a normalized loop"
  else begin
    let trip = Expr.add l.Ir.hi Expr.one in
    let main_trips = Expr.div trip (Expr.const factor) in
    let iu = l.Ir.iter ^ "_u" in
    let replica k =
      let base = Expr.mul (Expr.const factor) (Expr.var iu) in
      let env =
        Util.SMap.singleton l.Ir.iter (Expr.add base (Expr.const k))
      in
      Ir.subst_idx_nodes env l.Ir.body
    in
    let main_body = List.concat (List.init factor replica) in
    let main_loop =
      Ir.mk_loop ~attrs:l.Ir.attrs ~iter:iu ~lo:Expr.zero
        ~hi:(Expr.sub main_trips Expr.one)
        main_body
    in
    let remainder_lo = Expr.mul (Expr.const factor) main_trips in
    let exact =
      match Expr.to_const trip with
      | Some t -> t mod factor = 0
      | None -> false
    in
    let nodes =
      if exact then [ Ir.Nloop main_loop ]
      else
        [ Ir.Nloop main_loop;
          Ir.Nloop
            (Ir.mk_loop ~attrs:l.Ir.attrs ~iter:l.Ir.iter ~lo:remainder_lo
               ~hi:l.Ir.hi l.Ir.body) ]
    in
    Ok nodes
  end

(** Materialize the unroll attributes of every marked innermost loop of a
    program (used to cross-check the attribute-based cost model against
    the explicit form). *)
let materialize_marked (p : Ir.program) : Ir.program =
  let rec go nodes =
    List.concat_map
      (fun n ->
        match n with
        | Ir.Nloop l when l.Ir.attrs.Ir.unroll > 1 && Ir.loops_in l.Ir.body = []
          -> (
            let plain =
              { l with Ir.attrs = { l.Ir.attrs with Ir.unroll = 1 } }
            in
            match materialize plain ~factor:l.Ir.attrs.Ir.unroll with
            | Ok nodes -> nodes
            | Error _ -> [ Ir.Nloop l ])
        | Ir.Nloop l -> [ Ir.Nloop { l with Ir.body = go l.Ir.body } ]
        | other -> [ other ])
      nodes
  in
  { p with Ir.body = go p.Ir.body }
