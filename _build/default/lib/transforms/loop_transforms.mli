(** Scheduling transformations on loop nests, each legality-checked via the
    dependence library. All assume iterator-normalized input. *)

type error = string

val interchange :
  outer:Daisy_loopir.Ir.loop list ->
  Daisy_loopir.Ir.loop ->
  int array ->
  (Daisy_loopir.Ir.loop, error) result
(** Reorder the perfect band (new position -> old band position). *)

val fully_permutable :
  Daisy_dependence.Test.direction list list -> from_:int -> len:int -> bool
(** Every dependence vector is component-wise non-negative on the
    sub-band — the tiling legality condition. *)

val tile :
  outer:Daisy_loopir.Ir.loop list ->
  Daisy_loopir.Ir.loop ->
  (int * int) list ->
  (Daisy_loopir.Ir.loop, error) result
(** Tile band positions with the given sizes; tile loops move outside all
    point loops. *)

val parallelize :
  ?allow_atomic:bool ->
  outer:Daisy_loopir.Ir.loop list ->
  Daisy_loopir.Ir.loop ->
  int ->
  (Daisy_loopir.Ir.loop, error) result
(** Mark a band position parallel; with [allow_atomic] (default), falls
    back to atomic-reduction parallelism when every carried dependence is a
    reduction self-update. *)

val vectorize :
  outer:Daisy_loopir.Ir.loop list ->
  Daisy_loopir.Ir.loop ->
  (Daisy_loopir.Ir.loop, error) result
(** Mark the innermost band loop vectorized (reductions vectorize too). *)

val unroll :
  Daisy_loopir.Ir.loop -> int -> int -> (Daisy_loopir.Ir.loop, error) result
(** [unroll nest pos factor] — always legal; recorded as an attribute the
    machine model interprets as extra ILP (and register pressure). *)
