(** Open-loop load generator for daisyd (docs/serving.md, "Load
    testing").

    Open-loop means arrivals follow a fixed schedule — exponential
    inter-arrival times from a seeded stream — regardless of how fast
    the server answers, so queueing delay is actually observed rather
    than absorbed by a closed feedback loop. Each arrival is one fresh
    connection (the daemon's admission unit) submitting one kernel from
    a small mix, tagged round-robin with one of [clients] client ids.

    By default the generator boots an in-process server on a private
    Unix socket sized to be overloadable (small queue, low degrade
    depth) so the run exercises shedding and degradation, then stops it
    with the protocol [shutdown] verb. Set [DAISY_SERVE_SOCKET=path] to
    aim at an externally started daemon instead (the CI smoke script
    does this around a kill-and-restart); an external daemon is left
    running.

    Results go to BENCH_serve.json: latency percentiles over answered
    requests plus shed/degraded/retry counts from both the client's and
    the server's perspective. *)

module Serve = Daisy.Serve
module P = Serve.Protocol
module Client = Serve.Client
module Util = Daisy_support.Util
module Rng = Daisy_support.Rng

(* ------------------------------------------------------------------ *)
(* Kernel mix                                                          *)

let gemm_src =
  {|void f(int n, double C[n][n], double A[n][n], double B[n][n]) {
      for (int i = 0; i < n; i++)
        for (int k = 0; k < n; k++)
          for (int j = 0; j < n; j++)
            C[i][j] += A[i][k] * B[k][j];
    }|}

let stencil_src =
  {|void f(int n, double A[n][n], double B[n][n]) {
      for (int i = 1; i < n - 1; i++)
        for (int j = 1; j < n - 1; j++)
          B[i][j] = 0.2 * (A[i][j] + A[i][j-1] + A[i][j+1]
                           + A[i-1][j] + A[i+1][j]);
    }|}

let axpy_src =
  {|void f(int n, double y[n], double x[n]) {
      for (int i = 0; i < n; i++)
        y[i] = y[i] + 2.0 * x[i];
    }|}

let kernels =
  [ ("gemm", gemm_src); ("stencil", stencil_src); ("axpy", axpy_src) ]

(* ------------------------------------------------------------------ *)
(* Outcome accounting                                                  *)

type outcome =
  | Ok_reply of { latency_s : float; degraded : bool; retries : int }
  | Refused of P.error_code  (** structured server error (busy, ...) *)
  | Transport of string  (** connect/framing failure *)

type tally = {
  mutable outcomes : outcome list;
  lock : Mutex.t;
}

let record t o =
  Mutex.lock t.lock;
  t.outcomes <- o :: t.outcomes;
  Mutex.unlock t.lock

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1))

(* ------------------------------------------------------------------ *)
(* One load scenario                                                   *)

type scenario = {
  label : string;
  requests : int;
  rate_hz : float;  (** offered arrival rate *)
  clients : int;  (** distinct client ids, round-robin *)
  size : int;  (** value of every size parameter *)
}

type result = {
  scenario : scenario;
  answered : int;
  shed : int;
  quota_refused : int;
  other_refused : int;
  transport_errors : int;
  degraded : int;
  retried : int;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  mean_ms : float;
  wall_s : float;
}

let run_scenario ~(address : Serve.Server.address) (sc : scenario) : result =
  let tally = { outcomes = []; lock = Mutex.create () } in
  let rng = Rng.of_string ("loadgen-" ^ sc.label) in
  let one_request i () =
    let name, source = List.nth kernels (i mod List.length kernels) in
    ignore name;
    let started = Util.monotonic_s () in
    match
      Client.with_connection ~timeout_s:60.0 address (fun c ->
          Client.schedule c
            {
              P.client = Printf.sprintf "lg-%d" (i mod sc.clients);
              sizes = [ ("n", sc.size) ];
              budget = None;
              deadline_s = Some 30.0;
              source;
            })
    with
    | reply ->
        record tally
          (Ok_reply
             {
               latency_s = Util.monotonic_s () -. started;
               degraded = reply.P.degraded;
               retries = reply.P.retries;
             })
    | exception Client.Server_error (code, _) -> record tally (Refused code)
    | exception e -> record tally (Transport (Printexc.to_string e))
  in
  let t0 = Util.monotonic_s () in
  let threads = ref [] in
  for i = 0 to sc.requests - 1 do
    threads := Thread.create (one_request i) () :: !threads;
    (* exponential inter-arrival at the offered rate, independent of
       completions: the open loop *)
    let u = Rng.float rng in
    Thread.delay (-.log (1.0 -. u) /. sc.rate_hz)
  done;
  List.iter Thread.join !threads;
  let wall_s = Util.monotonic_s () -. t0 in
  let outcomes = tally.outcomes in
  let latencies =
    List.filter_map
      (function Ok_reply { latency_s; _ } -> Some latency_s | _ -> None)
      outcomes
    |> Array.of_list
  in
  Array.sort compare latencies;
  let count f = List.length (List.filter f outcomes) in
  let sum = Array.fold_left ( +. ) 0.0 latencies in
  {
    scenario = sc;
    answered = Array.length latencies;
    shed = count (function Refused P.Busy -> true | _ -> false);
    quota_refused = count (function Refused P.Quota -> true | _ -> false);
    other_refused =
      count (function
        | Refused (P.Busy | P.Quota) -> false
        | Refused _ -> true
        | _ -> false);
    transport_errors = count (function Transport _ -> true | _ -> false);
    degraded =
      count (function Ok_reply { degraded = true; _ } -> true | _ -> false);
    retried =
      count (function Ok_reply { retries; _ } -> retries > 0 | _ -> false);
    p50_ms = 1000.0 *. percentile latencies 0.50;
    p95_ms = 1000.0 *. percentile latencies 0.95;
    p99_ms = 1000.0 *. percentile latencies 0.99;
    mean_ms =
      (if Array.length latencies = 0 then 0.0
       else 1000.0 *. sum /. float_of_int (Array.length latencies));
    wall_s;
  }

(* ------------------------------------------------------------------ *)
(* JSON output                                                         *)

let write_json ~path (rows : result list) (server_stats : (string * int) list)
    =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n  \"bench\": \"serve\",\n  \"schema\": 1,\n  \"results\": [\n";
  List.iteri
    (fun i r ->
      out
        "    {\"scenario\": \"%s\", \"requests\": %d, \"rate_hz\": %.1f, \
         \"clients\": %d, \"answered\": %d, \"shed\": %d, \
         \"quota_refused\": %d, \"other_refused\": %d, \
         \"transport_errors\": %d, \"degraded\": %d, \"retried\": %d, \
         \"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f, \
         \"mean_ms\": %.3f, \"wall_s\": %.3f}%s\n"
        r.scenario.label r.scenario.requests r.scenario.rate_hz
        r.scenario.clients r.answered r.shed r.quota_refused r.other_refused
        r.transport_errors r.degraded r.retried r.p50_ms r.p95_ms r.p99_ms
        r.mean_ms r.wall_s
        (if i = List.length rows - 1 then "" else ","))
    rows;
  out "  ],\n  \"server\": {";
  List.iteri
    (fun i (k, v) ->
      out "%s\"%s\": %d" (if i = 0 then "" else ", ") k v)
    server_stats;
  out "}\n}\n";
  close_out oc

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)

let in_process_config socket =
  {
    (Serve.Server.default_config (`Unix socket)) with
    (* deliberately overloadable: one worker, a two-deep queue and an
       immediate degrade threshold, so the overload scenario actually
       sheds and degrades instead of absorbing the burst *)
    Serve.Server.jobs = 1;
    queue_capacity = 2;
    degrade_depth = 1;
    client_quota = 64;
    idle_timeout_s = 10.0;
  }

let pp_result r =
  Format.printf
    "  %-10s %4d req @ %5.1f/s (%d clients): %4d ok, %3d shed, %3d \
     degraded, %2d retried, p50 %.1f ms, p95 %.1f ms, p99 %.1f ms@."
    r.scenario.label r.scenario.requests r.scenario.rate_hz
    r.scenario.clients r.answered r.shed r.degraded r.retried r.p50_ms
    r.p95_ms r.p99_ms

let run_scenarios scenarios =
  let external_socket = Sys.getenv_opt "DAISY_SERVE_SOCKET" in
  let address, server_domain, own_server =
    match external_socket with
    | Some path -> (`Unix path, None, false)
    | None ->
        let socket =
          Filename.concat
            (Filename.get_temp_dir_name ())
            (Printf.sprintf "daisyd-bench-%d.sock" (Unix.getpid ()))
        in
        let ready = Atomic.make false in
        let config = in_process_config socket in
        let d =
          Domain.spawn (fun () ->
              Serve.Server.run ~on_ready:(fun () -> Atomic.set ready true)
                config)
        in
        let deadline = Util.monotonic_s () +. 10.0 in
        while (not (Atomic.get ready)) && Util.monotonic_s () < deadline do
          Thread.delay 0.01
        done;
        if not (Atomic.get ready) then failwith "in-process daisyd never bound";
        (`Unix socket, Some d, true)
  in
  let results = List.map (run_scenario ~address) scenarios in
  List.iter pp_result results;
  let server_stats =
    try Client.with_connection address Client.stats with _ -> []
  in
  (if own_server then
     try Client.with_connection address Client.shutdown with _ -> ());
  Option.iter (fun d -> ignore (Domain.join d)) server_domain;
  write_json ~path:"BENCH_serve.json" results server_stats;
  Format.printf "  [wrote BENCH_serve.json]@."

(** The full run: a moderate phase the server keeps up with, then an
    overload burst that must shed/degrade rather than collapse. *)
let serve_bench_full () =
  Format.printf "serve: open-loop load against daisyd@.";
  run_scenarios
    [
      { label = "steady"; requests = 60; rate_hz = 10.0; clients = 2; size = 48 };
      { label = "burst"; requests = 120; rate_hz = 200.0; clients = 3; size = 96 };
    ]

(** CI smoke: small enough for a shared runner, still two clients and a
    burst phase. *)
let serve_bench_smoke () =
  Format.printf "serve-smoke: open-loop load against daisyd (CI sizes)@.";
  run_scenarios
    [
      { label = "steady"; requests = 16; rate_hz = 8.0; clients = 2; size = 32 };
      { label = "burst"; requests = 40; rate_hz = 150.0; clients = 2; size = 96 };
    ]
