(** The experiment harness: reproduces every table and figure of the
    paper's evaluation. Run all experiments with [dune exec bench/main.exe]
    or a single one by name:

    {v dune exec bench/main.exe -- fig1 fig6 fig7 fig9 table1 fig11 fig12a
       fig12b ablation micro v} *)

let experiments =
  [
    ("fig1", "GEMM loop-structure variants across schedulers", Fig_polybench.fig1);
    ("fig6", "A/B robustness of auto-schedulers on 15 benchmarks", Fig_polybench.fig6);
    ("fig7", "ablation: normalization and transfer tuning in isolation", Fig_polybench.fig7);
    ("fig9", "Python frameworks on NPBench implementations", Fig_python.fig9);
    ("table1", "CLOUDSC erosion kernel before/after", Fig_cloudsc.table1);
    ("fig11", "CLOUDSC full model, sequential", Fig_cloudsc.fig11);
    ("fig12a", "CLOUDSC strong scaling", Fig_cloudsc.fig12a);
    ("fig12b", "CLOUDSC weak scaling", Fig_cloudsc.fig12b);
    ("ablation", "design-choice ablations", Ablation.run);
    ("micro", "toolchain micro-benchmarks (bechamel)", Micro.run);
    ("interp", "interpreter engines: tree vs closure vs bytecode (BENCH_interp.json)",
     Micro.interp_bench_full);
    ("interp-smoke", "interpreter engine comparison, tiny sizes (CI smoke)",
     Micro.interp_bench_smoke);
    ("trace", "trace engines: tree vs compiled vs bytecode vs sampled (BENCH_trace.json)",
     Micro.trace_bench_full);
    ("trace-smoke", "trace engine comparison, two kernels (CI smoke)",
     Micro.trace_bench_smoke);
    ("ann", "ANN index: query latency vs database size, 10^2..10^6 (BENCH_ann.json)",
     Micro.ann_bench_full);
    ("ann-smoke", "ANN index comparison up to 10^5 entries (CI smoke)",
     Micro.ann_bench_smoke);
    ("shard", "sharded warm store vs monolithic, 10^3..10^6 (BENCH_shard.json)",
     Micro.shard_bench_full);
    ("shard-smoke", "sharded warm store comparison up to 10^5 entries (CI smoke)",
     Micro.shard_bench_smoke);
    ("serve", "daisyd under open-loop load: latency percentiles + shed/degraded (BENCH_serve.json)",
     Loadgen.serve_bench_full);
    ("serve-smoke", "daisyd open-loop load, CI sizes (BENCH_serve.json)",
     Loadgen.serve_bench_smoke);
  ]

let () =
  (* strip --jobs N / --sample-outer N / --trace-engine E options (with
     their --opt=value spellings) before experiment names *)
  let opt_value ~prefix arg =
    let n = String.length prefix in
    if String.length arg > n && String.sub arg 0 n = prefix then
      Some (String.sub arg n (String.length arg - n))
    else None
  in
  let rec parse_args = function
    | [] -> []
    | ("--jobs" | "-j") :: v :: rest ->
        Harness.jobs := int_of_string v;
        parse_args rest
    | "--sample-outer" :: v :: rest ->
        Harness.sample := int_of_string v;
        parse_args rest
    | "--trace-engine" :: v :: rest ->
        Harness.engine := Daisy_machine.Cost.engine_of_string v;
        parse_args rest
    | "--checkpoint" :: v :: rest ->
        Harness.checkpoint := Some v;
        parse_args rest
    | arg :: rest -> (
        match opt_value ~prefix:"--jobs=" arg with
        | Some v ->
            Harness.jobs := int_of_string v;
            parse_args rest
        | None -> (
            match opt_value ~prefix:"--sample-outer=" arg with
            | Some v ->
                Harness.sample := int_of_string v;
                parse_args rest
            | None -> (
                match opt_value ~prefix:"--trace-engine=" arg with
                | Some v ->
                    Harness.engine := Daisy_machine.Cost.engine_of_string v;
                    parse_args rest
                | None -> (
                    match opt_value ~prefix:"--checkpoint=" arg with
                    | Some v ->
                        Harness.checkpoint := Some v;
                        parse_args rest
                    | None -> arg :: parse_args rest))))
  in
  let requested =
    match parse_args (List.tl (Array.to_list Sys.argv)) with
    | [] ->
        (* the smoke variants are CI-only sugar; "run everything" uses the
           full engine comparisons *)
        List.filter_map
          (fun (n, _, _) ->
            if
              n = "interp-smoke" || n = "trace-smoke" || n = "ann-smoke"
              || n = "shard-smoke"
            then None
            else Some n)
          experiments
    | names -> names
  in
  Format.printf
    "daisy experiment harness — reproduction of 'A Priori Loop Nest \
     Normalization' (CGO 2025)@.";
  Format.printf
    "All runtimes are simulated milliseconds on the scaled machine model \
     (see DESIGN.md).@.";
  (try
     List.iter
       (fun name ->
         match List.find_opt (fun (n, _, _) -> n = name) experiments with
         | Some (n, desc, f) ->
             Format.printf "@.=== %s: %s ===@." n desc;
             f ()
         | None ->
             Format.printf "unknown experiment %s (available: %s)@." name
               (String.concat ", " (List.map (fun (n, _, _) -> n) experiments)))
       requested
   with
   | Daisy_support.Diag.Error d ->
       Format.eprintf "%a@." Daisy_support.Diag.pp d;
       exit 1
   | Daisy_support.Checkpoint.Interrupted sg ->
       Format.eprintf
         "interrupted (signal %d); checkpoint saved — rerun with the same \
          --checkpoint to resume@."
         sg;
       exit (128 + sg));
  Format.printf "@.done.@."
