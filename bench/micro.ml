(** Bechamel micro-benchmarks of the toolchain itself: how fast the
    compiler machinery (parsing, dependence testing, normalization, cache
    simulation, scheduling) runs. One [Test.make] per component. *)

module Pb = Daisy_benchmarks.Polybench
module Pipeline = Daisy_normalize.Pipeline
module Cost = Daisy_machine.Cost
module Config = Daisy_machine.Config
open Bechamel
open Toolkit

let gemm_src = Pb.gemm.Pb.source

let test_parse =
  Test.make ~name:"frontend: parse+sema+lower gemm"
    (Staged.stage (fun () ->
         ignore (Daisy_lang.Lower.program_of_string gemm_src)))

let test_lift =
  Test.make ~name:"lift: gemm through lir"
    (Staged.stage (fun () ->
         ignore
           (Daisy_lift.Lift.lift (Daisy_lir.From_ast.func_of_string gemm_src))))

let program = Daisy_lang.Lower.program_of_string gemm_src

let test_dependence =
  let nest =
    match (Daisy_normalize.Iter_norm.run program).Daisy_loopir.Ir.body with
    | Daisy_loopir.Ir.Nloop l :: _ -> l
    | _ -> assert false
  in
  Test.make ~name:"dependence: band vectors of gemm nest"
    (Staged.stage (fun () ->
         let band, body = Daisy_dependence.Legality.perfect_band nest in
         ignore (Daisy_dependence.Legality.band_dep_vectors ~outer:[] band body)))

let test_normalize =
  Test.make ~name:"normalize: full pipeline on gemm"
    (Staged.stage (fun () ->
         ignore (Pipeline.normalize ~sizes:Pb.gemm.Pb.sim_sizes program)))

let test_simulate =
  Test.make ~name:"machine: simulate gemm (sampled)"
    (Staged.stage (fun () ->
         ignore
           (Cost.evaluate Config.default program ~sizes:Pb.gemm.Pb.sim_sizes
              ~sample_outer:8 ())))

let test_interp =
  Test.make ~name:"interp: execute gemm (tiny)"
    (Staged.stage (fun () ->
         ignore
           (Daisy_interp.Interp.run_fresh program ~sizes:Pb.gemm.Pb.test_sizes
              ())))

let benchmarks =
  [ test_parse; test_lift; test_dependence; test_normalize; test_simulate;
    test_interp ]

(* ------------------------------------------------------------------ *)
(* Parallel database seeding: wall-clock with 1 vs 4 worker domains     *)

let seed_kernels =
  [ Pb.gemm; Pb.two_mm; Pb.syrk; Pb.gemver; Pb.atax; Pb.bicg; Pb.mvt;
    Pb.jacobi_2d ]

let seed_wallclock ~jobs =
  let module S = Daisy_scheduler in
  let module Pool = Daisy_support.Pool in
  let t0 = Unix.gettimeofday () in
  Pool.with_pool ~jobs (fun pool ->
      Pool.map ?pool
        (fun (b : Pb.benchmark) ->
          let shard = S.Database.create () in
          let ctx =
            S.Common.make_ctx ~threads:12 ~sample_outer:12
              ~sizes:b.Pb.sim_sizes ()
          in
          S.Seed.seed_database ~epochs:3 ~population:8 ~iterations:3 ?pool ctx
            ~db:shard
            [ (b.Pb.name, Pb.program b) ];
          shard)
        seed_kernels
      |> List.map S.Database.entries)
  |> fun entries ->
  (Unix.gettimeofday () -. t0, List.concat entries)

let seed_speedup () =
  Format.printf "@.Database seeding wall-clock (%d kernels, 3 epochs)@."
    (List.length seed_kernels);
  let t1, e1 = seed_wallclock ~jobs:1 in
  let t4, e4 = seed_wallclock ~jobs:4 in
  Format.printf "  --jobs 1: %8.3f s@." t1;
  Format.printf "  --jobs 4: %8.3f s   (speedup %.2fx on %d cores)@." t4
    (t1 /. t4)
    (Domain.recommended_domain_count ());
  let identical =
    List.length e1 = List.length e4
    && List.for_all2
         (fun (a : Daisy_scheduler.Database.entry) b ->
           String.equal a.Daisy_scheduler.Database.source
             b.Daisy_scheduler.Database.source
           && Daisy_transforms.Recipe.equal a.Daisy_scheduler.Database.recipe
                b.Daisy_scheduler.Database.recipe)
         e1 e4
  in
  Format.printf "  parallel == sequential entries: %b@." identical

let run () =
  seed_speedup ();
  Format.printf "@.Toolchain micro-benchmarks (bechamel)@.";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let results =
        Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false
                       ~predictors:[| Measure.run |])
          Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] ->
              Format.printf "  %-45s %10.1f ns/run@." name est
          | _ -> Format.printf "  %-45s (no estimate)@." name)
        results)
    benchmarks
