(** Bechamel micro-benchmarks of the toolchain itself: how fast the
    compiler machinery (parsing, dependence testing, normalization, cache
    simulation, scheduling) runs. One [Test.make] per component. *)

module Pb = Daisy_benchmarks.Polybench
module Pipeline = Daisy_normalize.Pipeline
module Cost = Daisy_machine.Cost
module Config = Daisy_machine.Config
open Bechamel
open Toolkit

let gemm_src = Pb.gemm.Pb.source

let test_parse =
  Test.make ~name:"frontend: parse+sema+lower gemm"
    (Staged.stage (fun () ->
         ignore (Daisy_lang.Lower.program_of_string gemm_src)))

let test_lift =
  Test.make ~name:"lift: gemm through lir"
    (Staged.stage (fun () ->
         ignore
           (Daisy_lift.Lift.lift (Daisy_lir.From_ast.func_of_string gemm_src))))

let program = Daisy_lang.Lower.program_of_string gemm_src

let test_dependence =
  let nest =
    match (Daisy_normalize.Iter_norm.run program).Daisy_loopir.Ir.body with
    | Daisy_loopir.Ir.Nloop l :: _ -> l
    | _ -> assert false
  in
  Test.make ~name:"dependence: band vectors of gemm nest"
    (Staged.stage (fun () ->
         let band, body = Daisy_dependence.Legality.perfect_band nest in
         ignore (Daisy_dependence.Legality.band_dep_vectors ~outer:[] band body)))

let test_normalize =
  Test.make ~name:"normalize: full pipeline on gemm"
    (Staged.stage (fun () ->
         ignore (Pipeline.normalize ~sizes:Pb.gemm.Pb.sim_sizes program)))

let test_simulate =
  Test.make ~name:"machine: simulate gemm (sampled)"
    (Staged.stage (fun () ->
         ignore
           (Cost.evaluate Config.default program ~sizes:Pb.gemm.Pb.sim_sizes
              ~sample_outer:8 ())))

let test_interp =
  Test.make ~name:"interp: execute gemm (tiny)"
    (Staged.stage (fun () ->
         ignore
           (Daisy_interp.Interp.run_fresh program ~sizes:Pb.gemm.Pb.test_sizes
              ())))

let test_interp_compiled =
  Test.make ~name:"interp: execute gemm compiled (tiny)"
    (Staged.stage (fun () ->
         ignore
           (Daisy_interp.Interp.run_compiled_fresh program
              ~sizes:Pb.gemm.Pb.test_sizes ())))

let benchmarks =
  [ test_parse; test_lift; test_dependence; test_normalize; test_simulate;
    test_interp; test_interp_compiled ]

(* ------------------------------------------------------------------ *)
(* Tree vs compiled interpreter: wall-clock + BENCH_interp.json          *)

module Interp = Daisy_interp.Interp

(** The interpreter comparison sweeps every PolyBench kernel. "tiny" is
    each kernel's interpreter test size; "default" is that size scaled 4x
    linearly — large enough that execution dominates engine setup, small
    enough that the tree oracle finishes promptly. *)
let interp_kernels = Pb.all

let interp_bench_sizes (b : Pb.benchmark) =
  [ ("tiny", b.Pb.test_sizes);
    ("default", List.map (fun (k, v) -> (k, v * 4)) b.Pb.test_sizes) ]

(** Median-of-[reps] wall-clock of [f] (fresh state per repetition). *)
let median_time reps f =
  let times =
    List.init reps (fun _ ->
        let t0 = Unix.gettimeofday () in
        f ();
        Unix.gettimeofday () -. t0)
  in
  List.nth (List.sort compare times) (reps / 2)

type interp_row = {
  kernel : string;
  size_label : string;
  sizes : (string * int) list;
  tree_s : float;
  closure_s : float;
  bytecode_s : float;
}

(** Machine-readable perf-trajectory record: one JSON object per
    (kernel, size) with the wall-clock of all three semantic engines.
    Accumulated across PRs by CI (see docs/performance.md). *)
let write_interp_json ~path (rows : interp_row list) =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n  \"bench\": \"interp\",\n  \"schema\": 2,\n  \"results\": [\n";
  List.iteri
    (fun i r ->
      let sizes =
        String.concat ", "
          (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %d" k v) r.sizes)
      in
      out
        "    {\"kernel\": \"%s\", \"size\": \"%s\", \"sizes\": {%s}, \
         \"tree_s\": %.6f, \"closure_s\": %.6f, \"bytecode_s\": %.6f, \
         \"speedup_closure\": %.2f, \"speedup_bytecode\": %.2f, \
         \"closure_over_bytecode\": %.2f}%s\n"
        r.kernel r.size_label sizes r.tree_s r.closure_s r.bytecode_s
        (r.tree_s /. r.closure_s)
        (r.tree_s /. r.bytecode_s)
        (r.closure_s /. r.bytecode_s)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  out "  ]\n}\n";
  close_out oc

let geomean xs =
  exp
    (List.fold_left (fun a x -> a +. log x) 0.0 xs
    /. float_of_int (max 1 (List.length xs)))

(** [interp_bench ~smoke ()] — engine wall-clock (compile + execute, on a
    state prepared once per engine so allocation and initialization are
    excluded) of the tree-walking oracle vs the closure-compiled engine
    vs the flat-bytecode VM, plus a bitwise-identity check of their final
    states, written to BENCH_interp.json. The headline number is the
    geomean bytecode-over-closure ratio at the default (4x) sizes — the
    acceptance bar is >= 3x (docs/performance.md, "Bytecode engine").
    [~smoke:true] restricts to tiny sizes with one repetition (the CI
    smoke configuration). *)
let interp_bench ?(smoke = false) () =
  let reps = if smoke then 1 else 3 in
  let rows =
    List.concat_map
      (fun (b : Pb.benchmark) ->
        let p = Pb.program b in
        let sizes_list =
          if smoke then [ List.hd (interp_bench_sizes b) ]
          else interp_bench_sizes b
        in
        List.map
          (fun (size_label, sizes) ->
            let engine_time run =
              let st = Interp.init p ~sizes () in
              median_time reps (fun () -> run p st)
            in
            let tree_s = engine_time (fun p st -> Interp.run p st) in
            let closure_s = engine_time (fun p st -> Interp.run_compiled p st) in
            let bytecode_s = engine_time (fun p st -> Interp.run_bytecode p st) in
            { kernel = b.Pb.name; size_label; sizes; tree_s; closure_s;
              bytecode_s })
          sizes_list)
      interp_kernels
  in
  Format.printf "@.Interpreter engines: tree oracle vs closure vs bytecode@.";
  Format.printf "  %-12s %-8s %12s %12s %12s %9s %9s@." "kernel" "size"
    "tree (s)" "closure (s)" "bytecode (s)" "vs tree" "vs clos";
  List.iter
    (fun r ->
      Format.printf "  %-12s %-8s %12.6f %12.6f %12.6f %8.1fx %8.2fx@."
        r.kernel r.size_label r.tree_s r.closure_s r.bytecode_s
        (r.tree_s /. r.bytecode_s)
        (r.closure_s /. r.bytecode_s))
    rows;
  let headline =
    let selected =
      if smoke then rows
      else List.filter (fun r -> r.size_label = "default") rows
    in
    geomean (List.map (fun r -> r.closure_s /. r.bytecode_s) selected)
  in
  Format.printf
    "  geomean bytecode speedup over closure (%s sizes): %.2fx (bar: >= 3x \
     at default sizes)@."
    (if smoke then "tiny" else "default")
    headline;
  (* the states must be bitwise identical, not just fast *)
  let identical =
    List.for_all
      (fun (b : Pb.benchmark) ->
        let p = Pb.program b in
        let s1 = Interp.run_fresh p ~sizes:b.Pb.test_sizes () in
        let s2 = Interp.run_compiled_fresh p ~sizes:b.Pb.test_sizes () in
        let s3 = Interp.run_bytecode_fresh p ~sizes:b.Pb.test_sizes () in
        Interp.max_rel_diff p s1 s2 = 0.0 && Interp.max_rel_diff p s1 s3 = 0.0)
      interp_kernels
  in
  Format.printf "  closure == bytecode == tree final states: %b@." identical;
  write_interp_json ~path:"BENCH_interp.json" rows;
  Format.printf "  [wrote BENCH_interp.json]@."

let interp_bench_full () = interp_bench ()
let interp_bench_smoke () = interp_bench ~smoke:true ()

(* ------------------------------------------------------------------ *)
(* Trace engines: tree walker vs compiled vs sampled (BENCH_trace.json)  *)

module Trace = Daisy_machine.Trace
module Tc = Daisy_machine.Trace_compile
module Tb = Daisy_machine.Trace_bc

(** Per-candidate comparison set: the kernels whose cost-model walks
    dominate scheduler search time, at the same sizes and outer-sample
    budget the schedulers use. *)
let trace_cases ~smoke =
  let pb names =
    List.map
      (fun name ->
        let b = Pb.find name in
        (b.Pb.name, Pb.program b, b.Pb.sim_sizes))
      names
  in
  if smoke then pb [ "gemm"; "atax" ]
  else
    pb
      [ "gemm"; "2mm"; "gemver"; "atax"; "correlation"; "covariance";
        "jacobi-2d"; "heat-3d"; "seidel-2d" ]
    @ [ (let p, s = Daisy_benchmarks.Cloudsc.erosion_original ~iters:8 in
         ("cloudsc-erosion", p, s)) ]

let trace_sample_outer = 12

type trace_row = {
  tkernel : string;
  tsizes : (string * int) list;
  tree_s : float;
  tcompiled_s : float;
  tbytecode_s : float;  (** unfused bytecode walk (the schema-2 baseline) *)
  tfused_s : float;  (** fused addressing + batched stream replay *)
  tmemo_s : float;  (** fused walk against a warm simulation memo *)
  approx_s : float;
  lat_p50_s : float;  (** per-candidate fused-evaluation latency quantiles *)
  lat_p95_s : float;
  lat_p99_s : float;
  exact_identical : bool;
  approx_rel_err : float;
}

type e2e_row = {
  engine_name : string;
  seed_s : float;
  memo_hits : int;
  memo_misses : int;
}

(** Perf-trajectory record for the cost-model fast path: per-kernel
    wall-clock of the engines plus the exactness/accuracy checks, and
    end-to-end scheduling-database seeding per engine. Schema 3 adds the
    fused/memo columns, per-candidate latency percentiles and the
    simulation-memo hit counters; [bytecode_s] keeps the schema-2 meaning
    (unfused walk) so trajectories stay comparable across schemas.
    Accumulated across PRs by CI (see docs/performance.md). *)
let write_trace_json ~path (rows : trace_row list) (e2e : e2e_row list) =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n  \"bench\": \"trace\",\n  \"schema\": 3,\n  \"results\": [\n";
  List.iteri
    (fun i r ->
      let sizes =
        String.concat ", "
          (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %d" k v) r.tsizes)
      in
      out
        "    {\"kernel\": \"%s\", \"sizes\": {%s}, \"tree_s\": %.6f, \
         \"compiled_s\": %.6f, \"bytecode_s\": %.6f, \"fused_s\": %.6f, \
         \"memo_hit_s\": %.6f, \"approx_s\": %.6f, \
         \"speedup_compiled\": %.2f, \"speedup_bytecode\": %.2f, \
         \"speedup_fused\": %.2f, \"speedup_approx\": %.2f, \
         \"lat_p50_s\": %.6f, \"lat_p95_s\": %.6f, \"lat_p99_s\": %.6f, \
         \"exact_identical\": %b, \"approx_rel_err\": %.4f}%s\n"
        r.tkernel sizes r.tree_s r.tcompiled_s r.tbytecode_s r.tfused_s
        r.tmemo_s r.approx_s
        (r.tree_s /. r.tcompiled_s)
        (r.tree_s /. r.tbytecode_s)
        (r.tbytecode_s /. r.tfused_s)
        (r.tree_s /. r.approx_s)
        r.lat_p50_s r.lat_p95_s r.lat_p99_s r.exact_identical r.approx_rel_err
        (if i = List.length rows - 1 then "" else ","))
    rows;
  out "  ],\n  \"end_to_end\": [\n";
  List.iteri
    (fun i e ->
      out
        "    {\"engine\": \"%s\", \"seed_s\": %.6f, \"memo_hits\": %d, \
         \"memo_misses\": %d}%s\n"
        e.engine_name e.seed_s e.memo_hits e.memo_misses
        (if i = List.length e2e - 1 then "" else ","))
    e2e;
  out "  ]\n}\n";
  close_out oc

(** [percentile sorted q] — nearest-rank quantile of an ascending array. *)
let percentile (sorted : float array) (q : float) : float =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let idx = int_of_float (Float.round (q *. float_of_int (n - 1))) in
    sorted.(max 0 (min (n - 1) idx))

let trace_cycles engine p ~sizes =
  (Cost.evaluate Config.default p ~sizes ~threads:1
     ~sample_outer:trace_sample_outer ~engine ())
    .Cost.total_cycles

(** End-to-end: seed the scheduling database (Evolve.search inside) with
    each engine. The work is identical modulo the engine, so the ratio is
    the real-world speedup a scheduler run sees. *)
let trace_seed_wallclock ~smoke (engine : Cost.engine) =
  let module S = Daisy_scheduler in
  let kernels = if smoke then [ Pb.gemm ] else [ Pb.gemm; Pb.atax; Pb.jacobi_2d ] in
  let hits = ref 0 and misses = ref 0 in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun (b : Pb.benchmark) ->
      let ctx =
        S.Common.make_ctx ~threads:12 ~sample_outer:trace_sample_outer ~engine
          ~sizes:b.Pb.sim_sizes ()
      in
      let db = S.Database.create () in
      S.Seed.seed_database ~epochs:1 ~population:6 ~iterations:2 ctx ~db
        [ (b.Pb.name, Pb.program b) ];
      match S.Common.sim_memo_stats ctx with
      | Some (h, m) ->
          hits := !hits + h;
          misses := !misses + m
      | None -> ())
    kernels;
  (Unix.gettimeofday () -. t0, !hits, !misses)

(** [trace_bench ~smoke ()] — wall-clock of the tree trace walker vs the
    closure-compiled engine vs the flat-bytecode engine (both
    bit-identical to the tree) and the sampled engine (approximate),
    written to BENCH_trace.json. [~smoke:true] restricts to two kernels
    with one repetition (the CI smoke configuration). *)
let trace_bench ?(smoke = false) () =
  let reps = if smoke then 1 else 3 in
  let rows =
    List.map
      (fun (name, p, sizes) ->
        let tree_s =
          median_time reps (fun () ->
              ignore
                (Trace.run Config.default p ~sizes
                   ~sample_outer:trace_sample_outer ()))
        in
        let tcompiled_s =
          median_time reps (fun () ->
              ignore
                (Tc.run Config.default p ~sizes
                   ~sample_outer:trace_sample_outer ()))
        in
        let tbytecode_s =
          median_time reps (fun () ->
              ignore
                (Tb.run Config.default p ~sizes
                   ~sample_outer:trace_sample_outer ~batch:false ()))
        in
        (* fused path: collect every repetition so the per-candidate
           latency percentiles see the full distribution, not the median *)
        let lat_samples = if smoke then 5 else 15 in
        let lats =
          Array.init lat_samples (fun _ ->
              let t0 = Unix.gettimeofday () in
              ignore
                (Tb.run Config.default p ~sizes
                   ~sample_outer:trace_sample_outer ~batch:true ());
              Unix.gettimeofday () -. t0)
        in
        Array.sort compare lats;
        let tfused_s = percentile lats 0.5 in
        let tmemo_s =
          let memo = Tb.memo_create Config.default in
          ignore
            (Tb.run Config.default p ~sizes ~sample_outer:trace_sample_outer
               ~batch:true ~memo ());
          median_time reps (fun () ->
              ignore
                (Tb.run Config.default p ~sizes
                   ~sample_outer:trace_sample_outer ~batch:true ~memo ()))
        in
        let approx_s =
          median_time reps (fun () ->
              ignore
                (Tc.run Config.default p ~sizes
                   ~sample_outer:trace_sample_outer ~approx:Tc.default_approx
                   ()))
        in
        let tree_counters =
          Trace.run Config.default p ~sizes ~sample_outer:trace_sample_outer ()
        in
        let exact_identical =
          let memo = Tb.memo_create Config.default in
          List.for_all2 Tc.counters_equal tree_counters
            (Tc.run Config.default p ~sizes ~sample_outer:trace_sample_outer
               ())
          && List.for_all2 Tc.counters_equal tree_counters
               (Tb.run Config.default p ~sizes
                  ~sample_outer:trace_sample_outer ~batch:false ())
          && List.for_all2 Tc.counters_equal tree_counters
               (Tb.run Config.default p ~sizes
                  ~sample_outer:trace_sample_outer ~batch:true ())
          && List.for_all2 Tc.counters_equal tree_counters
               (Tb.run Config.default p ~sizes
                  ~sample_outer:trace_sample_outer ~batch:true ~memo ())
          && List.for_all2 Tc.counters_equal tree_counters
               (* memo hit pass *)
               (Tb.run Config.default p ~sizes
                  ~sample_outer:trace_sample_outer ~batch:true ~memo ())
        in
        let c_exact = trace_cycles Cost.Compiled p ~sizes in
        let c_approx = trace_cycles (Cost.Approx Tc.default_approx) p ~sizes in
        let approx_rel_err = Float.abs (c_approx -. c_exact) /. c_exact in
        { tkernel = name; tsizes = sizes; tree_s; tcompiled_s; tbytecode_s;
          tfused_s; tmemo_s; approx_s;
          lat_p50_s = percentile lats 0.5;
          lat_p95_s = percentile lats 0.95;
          lat_p99_s = percentile lats 0.99;
          exact_identical; approx_rel_err })
      (trace_cases ~smoke)
  in
  Format.printf "@.Trace engines: tree walker vs compiled vs bytecode \
                 (unfused/fused/memo) vs sampled@.";
  Format.printf "  %-16s %10s %12s %12s %10s %10s %8s %7s %6s@." "kernel"
    "tree (s)" "compiled (s)" "bytecode (s)" "fused (s)" "memo (s)"
    "fused-x" "exact" "err";
  List.iter
    (fun r ->
      Format.printf
        "  %-16s %10.5f %12.5f %12.5f %10.5f %10.5f %7.2fx %7b %5.1f%%@."
        r.tkernel r.tree_s r.tcompiled_s r.tbytecode_s r.tfused_s r.tmemo_s
        (r.tbytecode_s /. r.tfused_s)
        r.exact_identical
        (100.0 *. r.approx_rel_err);
      Format.printf "  %-16s latency p50 %.5f s  p95 %.5f s  p99 %.5f s@." ""
        r.lat_p50_s r.lat_p95_s r.lat_p99_s)
    rows;
  let geomean xs = exp (List.fold_left (fun a x -> a +. log x) 0.0 xs
                        /. float_of_int (List.length xs)) in
  Format.printf
    "  geomean speedup vs tree: compiled %.1fx, bytecode %.1fx, fused \
     %.1fx, approx %.1fx@."
    (geomean (List.map (fun r -> r.tree_s /. r.tcompiled_s) rows))
    (geomean (List.map (fun r -> r.tree_s /. r.tbytecode_s) rows))
    (geomean (List.map (fun r -> r.tree_s /. r.tfused_s) rows))
    (geomean (List.map (fun r -> r.tree_s /. r.approx_s) rows));
  (* regression guard against the schema-2 baseline: the fused engine must
     beat the unfused bytecode walk by >= 2x geomean, and every kernel
     must stay bit-identical to the tree oracle. CI greps "guard: ok". *)
  let fused_geo = geomean (List.map (fun r -> r.tbytecode_s /. r.tfused_s) rows) in
  let all_exact = List.for_all (fun r -> r.exact_identical) rows in
  Format.printf
    "  fused-over-unfused geomean: %.2fx (bar: >= 2x), exact: %b -> guard: \
     %s@."
    fused_geo all_exact
    (if fused_geo >= 2.0 && all_exact then "ok" else "FAIL");
  let e2e =
    List.map
      (fun (engine_name, engine) ->
        let seed_s, memo_hits, memo_misses =
          trace_seed_wallclock ~smoke engine
        in
        { engine_name; seed_s; memo_hits; memo_misses })
      [ ("tree", Cost.Tree); ("compiled", Cost.Compiled);
        ("bytecode", Cost.Bytecode);
        ("approx", Cost.Approx Tc.default_approx) ]
  in
  Format.printf "@.End-to-end database seeding (Evolve.search inside):@.";
  List.iter
    (fun e ->
      let lookups = e.memo_hits + e.memo_misses in
      if lookups > 0 then
        Format.printf "  %-10s %8.3f s  (sim memo: %d hits / %d lookups, \
                       %.0f%%)@."
          e.engine_name e.seed_s e.memo_hits lookups
          (100.0 *. float_of_int e.memo_hits /. float_of_int lookups)
      else Format.printf "  %-10s %8.3f s@." e.engine_name e.seed_s)
    e2e;
  write_trace_json ~path:"BENCH_trace.json" rows e2e;
  Format.printf "  [wrote BENCH_trace.json]@."

let trace_bench_full () = trace_bench ()
let trace_bench_smoke () = trace_bench ~smoke:true ()

(* ------------------------------------------------------------------ *)
(* Parallel database seeding: wall-clock with 1 vs 4 worker domains     *)

let seed_kernels =
  [ Pb.gemm; Pb.two_mm; Pb.syrk; Pb.gemver; Pb.atax; Pb.bicg; Pb.mvt;
    Pb.jacobi_2d ]

let seed_wallclock ~jobs =
  let module S = Daisy_scheduler in
  let module Pool = Daisy_support.Pool in
  let t0 = Unix.gettimeofday () in
  Pool.with_pool ~jobs (fun pool ->
      Pool.map ?pool
        (fun (b : Pb.benchmark) ->
          let shard = S.Database.create () in
          let ctx =
            S.Common.make_ctx ~threads:12 ~sample_outer:12
              ~sizes:b.Pb.sim_sizes ()
          in
          S.Seed.seed_database ~epochs:3 ~population:8 ~iterations:3 ?pool ctx
            ~db:shard
            [ (b.Pb.name, Pb.program b) ];
          shard)
        seed_kernels
      |> List.map S.Database.entries)
  |> fun entries ->
  (Unix.gettimeofday () -. t0, List.concat entries)

let seed_speedup () =
  Format.printf "@.Database seeding wall-clock (%d kernels, 3 epochs)@."
    (List.length seed_kernels);
  let t1, e1 = seed_wallclock ~jobs:1 in
  let t4, e4 = seed_wallclock ~jobs:4 in
  Format.printf "  --jobs 1: %8.3f s@." t1;
  Format.printf "  --jobs 4: %8.3f s   (speedup %.2fx on %d cores)@." t4
    (t1 /. t4)
    (Domain.recommended_domain_count ());
  let identical =
    List.length e1 = List.length e4
    && List.for_all2
         (fun (a : Daisy_scheduler.Database.entry) b ->
           String.equal a.Daisy_scheduler.Database.source
             b.Daisy_scheduler.Database.source
           && Daisy_transforms.Recipe.equal a.Daisy_scheduler.Database.recipe
                b.Daisy_scheduler.Database.recipe)
         e1 e4
  in
  Format.printf "  parallel == sequential entries: %b@." identical

(* ------------------------------------------------------------------ *)
(* ANN index: query latency vs database size (BENCH_ann.json)           *)

module Ann = Daisy_embedding.Ann
module Embedding = Daisy_embedding.Embedding
module Rng = Daisy_support.Rng

(** Synthetic embedding databases shaped like the real thing: each
    coordinate of a real embedding is a log-compressed count, and a big
    recipe database is a union of kernel families, not uniform noise —
    so vectors are drawn as jittered copies of a few hundred cluster
    centres on the log-compressed grid. Deterministic per size. *)
let synth_embeddings n : float array array =
  let rng = Rng.of_string (Printf.sprintf "bench-ann-%d" n) in
  let log_compress x = if x > 1.0 then 1.0 +. log x else x in
  let centres =
    Array.init (min 512 (max 8 (n / 16))) (fun _ ->
        Array.init Embedding.dim (fun _ ->
            log_compress (float_of_int (Rng.int rng 4096))))
  in
  Array.init n (fun _ ->
      let c = centres.(Rng.int rng (Array.length centres)) in
      Array.map
        (fun v ->
          if Rng.int rng 4 = 0 then v +. (0.25 *. Rng.float rng) else v)
        c)

let synth_queries rng (vecs : float array array) : float array list =
  List.init 20 (fun _ ->
      let v = vecs.(Rng.int rng (Array.length vecs)) in
      Array.map
        (fun x -> if Rng.int rng 8 = 0 then x +. (0.1 *. Rng.float rng) else x)
        v)

type ann_row = {
  an : int;
  scan_s : float;  (** per-query seconds, linear scan *)
  kd_build_s : float;
  kd_s : float;
  lsh_build_s : float;
  lsh_s : float;
  agree : bool;  (** exact top-k agreement on every query *)
}

(** Perf-trajectory record for the ANN index: per-query latency of the
    linear scan vs both index structures across database sizes, plus the
    exactness check. Accumulated across PRs by CI (see
    docs/performance.md). *)
let write_ann_json ~path (rows : ann_row list) =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n  \"bench\": \"ann\",\n  \"schema\": 1,\n  \"results\": [\n";
  List.iteri
    (fun i r ->
      out
        "    {\"n\": %d, \"scan_s\": %.9f, \"kd_build_s\": %.6f, \
         \"kd_query_s\": %.9f, \"lsh_build_s\": %.6f, \"lsh_query_s\": \
         %.9f, \"kd_speedup\": %.2f, \"lsh_speedup\": %.2f, \"agree\": \
         %b}%s\n"
        r.an r.scan_s r.kd_build_s r.kd_s r.lsh_build_s r.lsh_s
        (r.scan_s /. r.kd_s) (r.scan_s /. r.lsh_s) r.agree
        (if i = List.length rows - 1 then "" else ","))
    rows;
  out "  ]\n}\n";
  close_out oc

(** [ann_bench ~smoke ()] — top-5 query latency of the linear scan vs the
    k-d tree and LSH-bucket indexes over synthetic embedding databases of
    10^2..10^6 entries (10^5 in the smoke configuration), with an exact
    top-k agreement check on every query, written to BENCH_ann.json. The
    acceptance bar (docs/performance.md): at 10^5 entries the indexed
    query is >= 10x faster than the scan. *)
let ann_bench ?(smoke = false) () =
  let k = 5 in
  let reps = if smoke then 1 else 3 in
  let sizes =
    [ 100; 1_000; 10_000; 100_000 ] @ (if smoke then [] else [ 1_000_000 ])
  in
  let rows =
    List.map
      (fun n ->
        let vecs = synth_embeddings n in
        let queries = synth_queries (Rng.of_string "bench-ann-q") vecs in
        let nq = float_of_int (List.length queries) in
        let entries = Array.to_list (Array.mapi (fun i v -> (i, v)) vecs) in
        let scan q =
          Embedding.nearest_by ~embed:snd k entries q
          |> List.map (fun (d, (i, _)) -> (d, i))
        in
        let scan_s =
          median_time reps (fun () -> List.iter (fun q -> ignore (scan q)) queries)
          /. nq
        in
        let t0 = Unix.gettimeofday () in
        let kd =
          Ann.build ~algo:Ann.Kd ~fingerprint:"bench" ~dim:Embedding.dim vecs
        in
        let kd_build_s = Unix.gettimeofday () -. t0 in
        let t0 = Unix.gettimeofday () in
        let lsh =
          Ann.build ~algo:Ann.Lsh ~fingerprint:"bench" ~dim:Embedding.dim vecs
        in
        let lsh_build_s = Unix.gettimeofday () -. t0 in
        let kd_s =
          median_time reps (fun () ->
              List.iter (fun q -> ignore (Ann.query kd ~k q)) queries)
          /. nq
        in
        let lsh_s =
          median_time reps (fun () ->
              List.iter (fun q -> ignore (Ann.query lsh ~k q)) queries)
          /. nq
        in
        let agree =
          List.for_all
            (fun q ->
              let expect = scan q in
              Ann.query kd ~k q = expect && Ann.query lsh ~k q = expect)
            queries
        in
        { an = n; scan_s; kd_build_s; kd_s; lsh_build_s; lsh_s; agree })
      sizes
  in
  Format.printf "@.ANN index: top-%d query latency vs database size@." k;
  Format.printf "  %10s %12s %12s %8s %12s %8s %6s@." "entries" "scan (s)"
    "kd (s)" "vs scan" "lsh (s)" "vs scan" "exact";
  List.iter
    (fun r ->
      Format.printf "  %10d %12.3e %12.3e %7.1fx %12.3e %7.1fx %6b@." r.an
        r.scan_s r.kd_s (r.scan_s /. r.kd_s) r.lsh_s (r.scan_s /. r.lsh_s)
        r.agree)
    rows;
  (match List.find_opt (fun r -> r.an = 100_000) rows with
  | Some r ->
      Format.printf
        "  acceptance: at 1e5 entries kd is %.1fx the scan (bar: >= 10x), \
         agreement %b@."
        (r.scan_s /. r.kd_s) r.agree
  | None -> ());
  write_ann_json ~path:"BENCH_ann.json" rows;
  Format.printf "  [wrote BENCH_ann.json]@."

let ann_bench_full () = ann_bench ()
let ann_bench_smoke () = ann_bench ~smoke:true ()

(* ------------------------------------------------------------------ *)
(* Sharded warm store vs monolithic database (BENCH_shard.json)        *)

module Shardstore = Daisy_scheduler.Shardstore
module Database = Daisy_scheduler.Database

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let synth_entries_of vecs : Database.entry list =
  Array.to_list
    (Array.mapi
       (fun i v ->
         {
           Database.source = Printf.sprintf "synth:%d" i;
           embedding = v;
           recipe = [];
           canon_hash = i;
           cost_ms = float_of_int (i land 0xff);
         })
       vecs)

type shard_row = {
  zn : int;
  create_s : float;
  shards : int;
  mono_q_s : float;  (** per-query seconds, monolithic scan *)
  shard_q_s : float;  (** per-query seconds, sharded (per-shard ANN) *)
  append_s : float;  (** per-entry durable (fsynced) WAL append *)
  compact_s : float;  (** folding the batch: affected shards only *)
  rewritten : int;  (** shards (and sidecars) rewritten by that fold *)
  full_reindex_s : float;  (** one ANN build over the whole database *)
  zagree : bool;  (** sharded top-k == monolithic scan, every query *)
}

let write_shard_json ~path (rows : shard_row list) =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n  \"bench\": \"shard\",\n  \"schema\": 1,\n  \"results\": [\n";
  List.iteri
    (fun i r ->
      out
        "    {\"n\": %d, \"create_s\": %.6f, \"shards\": %d, \
         \"mono_query_s\": %.9f, \"shard_query_s\": %.9f, \"append_s\": \
         %.9f, \"compact_s\": %.6f, \"rewritten\": %d, \
         \"incremental_reindex_s\": %.6f, \"full_reindex_s\": %.6f, \
         \"reindex_speedup\": %.2f, \"agree\": %b}%s\n"
        r.zn r.create_s r.shards r.mono_q_s r.shard_q_s r.append_s
        r.compact_s r.rewritten r.compact_s r.full_reindex_s
        (r.full_reindex_s /. r.compact_s)
        r.zagree
        (if i = List.length rows - 1 then "" else ","))
    rows;
  out "  ]\n}\n";
  close_out oc

(** [shard_bench ~smoke ()] — the sharded warm store against the
    monolithic database across 10^3..10^6 entries (10^5 in the smoke
    configuration): exact top-k parity, per-query latency, durable
    append cost, and the incremental-rebuild headline — folding an
    appended batch rewrites (and re-indexes) only the affected shards,
    against a full re-index of the whole database. Acceptance
    (docs/performance.md): at 10^5 entries the incremental fold is
    >= 5x faster than the full re-index. Written to BENCH_shard.json. *)
let shard_bench ?(smoke = false) () =
  let k = 5 in
  let reps = if smoke then 1 else 3 in
  let sizes =
    [ 1_000; 10_000; 100_000 ] @ (if smoke then [] else [ 1_000_000 ])
  in
  let rows =
    List.map
      (fun n ->
        let vecs = synth_embeddings n in
        let entries = synth_entries_of vecs in
        let mono = Database.of_entries entries in
        let queries = synth_queries (Rng.of_string "bench-shard-q") vecs in
        let nq = float_of_int (List.length queries) in
        let dir = Filename.temp_file "bench-shard" ".d" in
        Sys.remove dir;
        Fun.protect
          ~finally:(fun () -> rm_rf dir)
          (fun () ->
            let t0 = Unix.gettimeofday () in
            let st = Shardstore.create dir mono in
            let create_s = Unix.gettimeofday () -. t0 in
            let shards = (Shardstore.stats st).Shardstore.st_shards in
            let mono_q q =
              List.map
                (fun (d, (e : Database.entry)) -> (d, e.Database.source))
                (Database.query_embedding mono ~k q)
            in
            let shard_q q =
              List.map
                (fun (d, (e : Database.entry)) -> (d, e.Database.source))
                (Shardstore.query_embedding st ~k q)
            in
            let zagree = List.for_all (fun q -> mono_q q = shard_q q) queries in
            let mono_q_s =
              median_time reps (fun () ->
                  List.iter (fun q -> ignore (mono_q q)) queries)
              /. nq
            in
            let shard_q_s =
              median_time reps (fun () ->
                  List.iter (fun q -> ignore (shard_q q)) queries)
              /. nq
            in
            (* a seeding batch lands: durable append, then incremental
               fold (only the affected shards re-index) *)
            let rng = Rng.of_string (Printf.sprintf "bench-shard-app-%d" n) in
            let batch =
              List.init 16 (fun i ->
                  let base = vecs.(Rng.int rng n) in
                  {
                    Database.source = Printf.sprintf "appended:%d" i;
                    embedding =
                      Array.map (fun v -> v +. (0.01 *. Rng.float rng)) base;
                    recipe = [];
                    canon_hash = n + i;
                    cost_ms = 1.0;
                  })
            in
            let t0 = Unix.gettimeofday () in
            Shardstore.append st batch;
            let append_s =
              (Unix.gettimeofday () -. t0)
              /. float_of_int (List.length batch)
            in
            let t0 = Unix.gettimeofday () in
            let rewritten = Shardstore.compact st in
            let compact_s = Unix.gettimeofday () -. t0 in
            let t0 = Unix.gettimeofday () in
            ignore
              (Database.rebuild_index mono (Filename.concat dir "full.ann"));
            let full_reindex_s = Unix.gettimeofday () -. t0 in
            {
              zn = n;
              create_s;
              shards;
              mono_q_s;
              shard_q_s;
              append_s;
              compact_s;
              rewritten;
              full_reindex_s;
              zagree;
            }))
      sizes
  in
  Format.printf "@.Sharded warm store vs monolithic database (top-%d)@." k;
  Format.printf "  %9s %7s %12s %12s %12s %10s %5s %10s %8s %6s@." "entries"
    "shards" "scan (s)" "sharded (s)" "append (s)" "fold (s)" "rw"
    "reidx (s)" "vs fold" "exact";
  List.iter
    (fun r ->
      Format.printf
        "  %9d %7d %12.3e %12.3e %12.3e %10.3e %5d %10.3e %7.1fx %6b@." r.zn
        r.shards r.mono_q_s r.shard_q_s r.append_s r.compact_s r.rewritten
        r.full_reindex_s
        (r.full_reindex_s /. r.compact_s)
        r.zagree)
    rows;
  (match List.find_opt (fun r -> r.zn = 100_000) rows with
  | Some r ->
      Format.printf
        "  acceptance: at 1e5 entries the incremental fold is %.1fx the \
         full re-index (bar: >= 5x), agreement %b@."
        (r.full_reindex_s /. r.compact_s)
        r.zagree
  | None -> ());
  write_shard_json ~path:"BENCH_shard.json" rows;
  Format.printf "  [wrote BENCH_shard.json]@."

let shard_bench_full () = shard_bench ()
let shard_bench_smoke () = shard_bench ~smoke:true ()

let run () =
  seed_speedup ();
  Format.printf "@.Toolchain micro-benchmarks (bechamel)@.";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let results =
        Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false
                       ~predictors:[| Measure.run |])
          Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] ->
              Format.printf "  %-45s %10.1f ns/run@." name est
          | _ -> Format.printf "  %-45s (no estimate)@." name)
        results)
    benchmarks
