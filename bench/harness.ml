(** Shared infrastructure for the experiment reproductions: contexts,
    database seeding, schedulers-by-name, and table printing. *)

module Ir = Daisy_loopir.Ir
module S = Daisy_scheduler
module Pb = Daisy_benchmarks.Polybench
module Variants = Daisy_benchmarks.Variants
module Cost = Daisy_machine.Cost

module Pool = Daisy_support.Pool
module Checkpoint = Daisy_support.Checkpoint

let threads = 12

let sample = ref 8
(** Outer-iteration sample budget for the trace walk (set by
    [--sample-outer] in {!Main}). *)

let engine = ref Cost.Bytecode
(** Trace engine used by every experiment context (set by
    [--trace-engine] in {!Main}): [tree], [compiled], [bytecode]
    (bit-identical, default) or [approx] (sampled, see
    docs/performance.md). *)

let jobs = ref 1
(** Worker domains for database seeding (set by [--jobs] in {!Main});
    results are bit-identical at any job count. *)

let checkpoint : string option ref = ref None
(** Journal path for crash-safe database seeding (set by [--checkpoint]
    in {!Main}): completed per-benchmark shards are checkpointed and a
    rerun with the same path and configuration resumes from them. *)

let ctx_for (sizes : (string * int) list) : S.Common.ctx =
  S.Common.make_ctx ~threads ~sample_outer:!sample ~engine:!engine ~sizes ()

(* ------------------------------------------------------------------ *)
(* A/B variants *)

let variant_a (b : Pb.benchmark) = Pb.program b

let variant_b (b : Pb.benchmark) =
  Variants.generate ~seed:("bvariant-" ^ b.Pb.name) (Pb.program b)

(* ------------------------------------------------------------------ *)
(* Database: seeded once from all normalized A variants (paper §4) *)

let shared_db : S.Database.t option ref = ref None

(* Shard records in the harness checkpoint: each benchmark's entries as
   flat fixed-size line chunks ({!S.Database.entry_to_lines},
   {!S.Database.entry_lines} lines each); the round-trip is exact, so a
   resumed harness merges the same shards bit-for-bit. *)

let shard_to_lines (shard : S.Database.t) : string list =
  List.concat_map S.Database.entry_to_lines (S.Database.entries shard)

let shard_of_lines (lines : string list) : S.Database.t option =
  let chunk = S.Database.entry_lines in
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | lines when List.length lines >= chunk -> (
        let body = Daisy_support.Util.take chunk lines in
        match S.Database.entry_of_lines body with
        | Ok e -> go (e :: acc) (Daisy_support.Util.drop chunk lines)
        | Error _ -> None)
    | _ -> None
  in
  Option.map S.Database.of_entries (go [] lines)

let open_harness_journal path : Checkpoint.journal =
  Checkpoint.install_signal_handlers ();
  let fingerprint =
    Checkpoint.fingerprint
      [
        ("kind", "bench-harness");
        ("benchmarks", String.concat "," (List.map (fun b -> b.Pb.name) Pb.all));
        ("threads", string_of_int threads);
        ("sample", string_of_int !sample);
        ("engine", Cost.string_of_engine !engine);
        ("epochs", "2");
        ("population", "6");
        ("iterations", "2");
      ]
  in
  (* auto-resume: an existing file with a matching fingerprint continues
     the previous run; a mismatch is a one-line Diag error *)
  let j =
    Checkpoint.open_journal ~path ~kind:"bench-harness" ~fingerprint
      ~resume:(Sys.file_exists path) ()
  in
  List.iter
    (fun w -> Format.eprintf "  [checkpoint warning: %s]@." w)
    (Checkpoint.warnings j);
  j

let database () : S.Database.t =
  match !shared_db with
  | Some db -> db
  | None ->
      let db = S.Database.create () in
      let journal = Option.map open_harness_journal !checkpoint in
      Format.printf "  [seeding the scheduling database from A variants (%d jobs)...]@."
        (max 1 !jobs);
      (* each benchmark seeds its own shard (its ctx carries its problem
         sizes); merging the shards in benchmark order reproduces the
         sequential database bit-for-bit *)
      Pool.with_pool ~jobs:!jobs (fun pool ->
          Pool.map ?pool
            (fun (b : Pb.benchmark) ->
              Checkpoint.check_interrupt ();
              let key = "shard/" ^ b.Pb.name in
              let cached =
                Option.bind journal (fun j ->
                    Option.bind (Checkpoint.find j key) shard_of_lines)
              in
              match cached with
              | Some shard -> shard (* completed before the crash *)
              | None ->
                  let shard = S.Database.create () in
                  let ctx = ctx_for b.Pb.sim_sizes in
                  S.Seed.seed_database ~epochs:2 ~population:6 ~iterations:2
                    ?pool ctx ~db:shard
                    [ (b.Pb.name, variant_a b) ];
                  Option.iter
                    (fun j -> Checkpoint.set j key (shard_to_lines shard))
                    journal;
                  shard)
            Pb.all
          |> List.iter (fun shard -> S.Database.merge ~into:db shard));
      (* the database is complete: the checkpoint is consumed *)
      Option.iter Checkpoint.delete journal;
      Format.printf "  [database ready: %d entries]@." (S.Database.size db);
      shared_db := Some db;
      db

(* ------------------------------------------------------------------ *)
(* Schedulers by name *)

type sched_result = Time of float | X  (** X = scheduler not applicable *)

let run_scheduler (name : string) (ctx : S.Common.ctx) (p : Ir.program) :
    sched_result =
  match name with
  | "clang" -> Time (S.Common.runtime_ms ctx (S.Baselines.clang_like p))
  | "icc" -> Time (S.Common.runtime_ms ctx (S.Baselines.icc_like p))
  | "polly" -> Time (S.Common.runtime_ms ctx (S.Baselines.polly_like p))
  | "tiramisu" -> (
      match S.Tiramisu.schedule ctx p with
      | S.Tiramisu.Scheduled p' -> Time (S.Common.runtime_ms ctx p')
      | S.Tiramisu.Unsupported _ -> X)
  | "daisy" ->
      let r = S.Daisy.schedule ctx ~db:(database ()) p in
      Time (S.Common.runtime_ms ctx r.S.Daisy.program)
  | "daisy-nonorm" ->
      let r =
        S.Daisy.schedule
          ~options:{ S.Daisy.normalize = false; transfer = true }
          ctx ~db:(database ()) p
      in
      Time (S.Common.runtime_ms ctx r.S.Daisy.program)
  | "daisy-notransfer" ->
      let r =
        S.Daisy.schedule
          ~options:{ S.Daisy.normalize = true; transfer = false }
          ctx ~db:(database ()) p
      in
      Time (S.Common.runtime_ms ctx r.S.Daisy.program)
  | _ -> invalid_arg ("unknown scheduler " ^ name)

(* ------------------------------------------------------------------ *)
(* Pretty tables *)

let hline width = String.make width '-'

let print_table ~(title : string) ~(header : string list)
    (rows : string list list) : unit =
  let ncol = List.length header in
  let widths = Array.make ncol 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
        row)
    (header :: rows);
  let pad i s = Printf.sprintf "%-*s" widths.(i) s in
  let total = Array.fold_left ( + ) 0 widths + (3 * (ncol - 1)) in
  Format.printf "@.%s@.%s@." title (hline total);
  Format.printf "%s@." (String.concat " | " (List.mapi pad header));
  Format.printf "%s@." (hline total);
  List.iter
    (fun row -> Format.printf "%s@." (String.concat " | " (List.mapi pad row)))
    rows;
  Format.printf "%s@." (hline total)

let fms = Printf.sprintf "%.3f"
let fx = Printf.sprintf "%.2f"

let cell = function Time t -> fms t | X -> "X"

let rel base = function
  | Time t -> fx (t /. base)
  | X -> "X"

let geomean_of xs = Daisy_support.Util.geomean xs
